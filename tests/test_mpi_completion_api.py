"""Tests for MPI_Test / Testall / Waitany / Waitsome semantics."""

import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator


def _setup(scheme="Proposed"):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[scheme])
    dt = Vector(16, 2, 5, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    return sim, rt, dt, lay, hi


def test_test_advances_progress_and_reports():
    """For the fusion scheme, repeated MPI_Test is itself enough to
    flush the scheduler (the §IV-C sync point) and complete a send."""
    sim, rt, dt, lay, hi = _setup()
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=1)
    rbuf = r1.device.alloc(hi)
    log = {}

    def sender():
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=0)
        log["immediately_done"] = yield from r0.test(req)
        while not (yield from r0.test(req)):
            yield sim.timeout(1e-6)
        log["finished_at"] = sim.now

    def receiver():
        req = r1.irecv(rbuf, dt, 1, source=0, tag=0)
        yield from r1.waitall([req])

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    assert log["immediately_done"] is False
    assert log["finished_at"] > 0
    assert (rbuf.data[lay.gather_index()] == 1).all()


def test_testall_set_semantics():
    sim, rt, dt, lay, hi = _setup("GPU-Sync")
    r0, r1 = rt.rank(0), rt.rank(1)
    sbufs = [r0.device.alloc(hi, fill=i + 1) for i in range(3)]
    rbufs = [r1.device.alloc(hi) for _ in range(3)]

    def sender():
        reqs = []
        for i, b in enumerate(sbufs):
            req = yield from r0.isend(b, dt, 1, dest=1, tag=i)
            reqs.append(req)
        while not (yield from r0.testall(reqs)):
            yield sim.timeout(1e-6)

    def receiver():
        reqs = [r1.irecv(b, dt, 1, source=0, tag=i) for i, b in enumerate(rbufs)]
        while not (yield from r1.testall(reqs)):
            yield sim.timeout(1e-6)

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    for i, rb in enumerate(rbufs):
        assert (rb.data[lay.gather_index()] == i + 1).all()


def test_waitany_returns_first_completion_index():
    sim, rt, dt, lay, hi = _setup("GPU-Sync")
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=9)
    rbufs = [r1.device.alloc(hi) for _ in range(2)]
    got = {}

    def sender():
        # Only tag 1 is ever sent; tag 0 stays pending.
        yield sim.timeout(5e-6)
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=1)
        yield from r0.waitall([req])

    def receiver():
        never = r1.irecv(rbufs[0], dt, 1, source=0, tag=0)
        comes = r1.irecv(rbufs[1], dt, 1, source=0, tag=1)
        got["index"] = yield from r1.waitany([never, comes])
        got["never_done"] = never.done
        # Drain: cancel semantics are out of scope; complete the pair so
        # the simulation ends cleanly.
        req = yield from r1.isend(sbuf_r1, dt, 1, dest=0, tag=99)
        yield from r1.waitall([req])

    sbuf_r1 = r1.device.alloc(hi)

    def drain():
        req = r0.irecv(r0.device.alloc(hi), dt, 1, source=1, tag=99)
        yield from r0.waitall([req])

    p0, p1, p2 = sim.process(sender()), sim.process(receiver()), sim.process(drain())
    sim.run(sim.all_of([p0, p1, p2]))
    assert got["index"] == 1
    assert got["never_done"] is False


def test_waitsome_returns_all_completed():
    sim, rt, dt, lay, hi = _setup("GPU-Sync")
    r0, r1 = rt.rank(0), rt.rank(1)
    sbufs = [r0.device.alloc(hi, fill=5) for _ in range(2)]
    rbufs = [r1.device.alloc(hi) for _ in range(2)]
    got = {}

    def sender():
        reqs = []
        for i, b in enumerate(sbufs):
            req = yield from r0.isend(b, dt, 1, dest=1, tag=i)
            reqs.append(req)
        yield from r0.waitall(reqs)

    def receiver():
        reqs = [r1.irecv(b, dt, 1, source=0, tag=i) for i, b in enumerate(rbufs)]
        # Wait long enough that both have landed, then waitsome.
        yield sim.timeout(2e-3)
        got["done"] = yield from r1.waitsome(reqs)

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    assert got["done"] == [0, 1]


def test_waitany_requires_requests():
    sim, rt, *_ = _setup("GPU-Sync")

    def proc():
        yield from rt.rank(0).waitany([])

    p = sim.process(proc())
    with pytest.raises(ValueError):
        sim.run(p)
