"""Unit tests for the fusion scheduler and fused-kernel launch."""

import numpy as np
import pytest

from repro.core import FusionPolicy, FusionScheduler, ModelBasedPolicy, launch_fused_kernel
from repro.core.request_list import CircularRequestList
from repro.datatypes import DataLayout
from repro.gpu import TESLA_V100
from repro.net import Cluster, LASSEN
from repro.sim import Category, Simulator, Trace


@pytest.fixture()
def env():
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1)
    site = cluster.site(0)
    return sim, site


def _op(site, nbytes=8192, blocks=32, seed=0):
    dev = site.device
    step = max(2, 2 * (nbytes // blocks))
    lay = DataLayout(
        np.arange(blocks, dtype=np.int64) * step,
        np.full(blocks, nbytes // blocks, dtype=np.int64),
    )
    src = dev.alloc(int(lay.offsets[-1] + lay.lengths[-1]) + 8)
    src.data[:] = np.random.default_rng(seed).integers(0, 256, src.nbytes)
    return dev.pack_op(src, lay, dev.alloc(lay.size)), src, lay


def _drive(sim, gen):
    """Run a scheduler generator inside a process, return its value."""
    result = {}

    def proc():
        result["value"] = yield from gen

    p = sim.process(proc())
    sim.run(p)
    return result["value"]


# -- policy ----------------------------------------------------------------------


def test_policy_threshold_bytes(env):
    _sim, site = env
    policy = FusionPolicy(threshold_bytes=16 * 1024, min_batch_requests=2)
    small = [_op(site, nbytes=4096)[0] for _ in range(2)]
    assert not policy.should_launch(small)
    big = [_op(site, nbytes=12 * 1024)[0] for _ in range(2)]
    assert policy.should_launch(big)


def test_policy_min_batch(env):
    _sim, site = env
    policy = FusionPolicy(threshold_bytes=1, min_batch_requests=2)
    assert not policy.should_launch([_op(site)[0]])


def test_policy_max_batch(env):
    _sim, site = env
    policy = FusionPolicy(threshold_bytes=1 << 30, max_batch_requests=4)
    ops = [_op(site, nbytes=64, blocks=1)[0] for _ in range(4)]
    assert policy.should_launch(ops)


def test_model_based_policy(env):
    _sim, site = env
    policy = ModelBasedPolicy(arch=TESLA_V100, launch_cost_multiple=1.0,
                              threshold_bytes=1 << 30)
    tiny = [_op(site, nbytes=256, blocks=2)[0] for _ in range(2)]
    assert not policy.should_launch(tiny)
    # A megabyte of sparse work out-runs one launch overhead easily.
    big = [_op(site, nbytes=1 << 20, blocks=4096)[0] for _ in range(4)]
    assert policy.should_launch(big)


def test_model_based_policy_requires_arch(env):
    _sim, site = env
    with pytest.raises(ValueError):
        ModelBasedPolicy().should_launch([_op(site)[0]] * 2)


# -- fused kernel launch -------------------------------------------------------------


def test_launch_fused_kernel_applies_and_signals(env):
    sim, site = env
    rl = CircularRequestList(sim, capacity=8)
    ops = []
    for i in range(4):
        op, src, lay = _op(site, seed=i)
        ops.append((op, src, lay))
        rl.enqueue(op)
    reqs = rl.pending()
    rl.mark_busy(reqs)
    plan = launch_fused_kernel(sim, site.device.default_stream, site.device.arch, reqs)
    sim.run()
    assert all(r.complete for r in reqs)
    for (op, src, lay), req in zip(ops, reqs):
        assert req.completed_at <= plan.total_duration + 1e-12
    # Byte-exactness of every fused request.
    for op, src, lay in ops:
        pass  # applied via op closures; verified through dst below


def test_launch_fused_kernel_byte_exact(env):
    sim, site = env
    dev = site.device
    lay = DataLayout([0, 64], [16, 16])
    srcs, dsts, reqs = [], [], []
    rl = CircularRequestList(sim, capacity=8)
    for i in range(3):
        src = dev.alloc(96, fill=i + 1)
        dst = dev.alloc(32)
        rl.enqueue(dev.pack_op(src, lay, dst))
        srcs.append(src)
        dsts.append(dst)
    pending = rl.pending()
    rl.mark_busy(pending)
    launch_fused_kernel(sim, dev.default_stream, dev.arch, pending)
    sim.run()
    for i, dst in enumerate(dsts):
        assert (dst.data == i + 1).all()


def test_launch_fused_empty_rejected(env):
    sim, site = env
    with pytest.raises(ValueError):
        launch_fused_kernel(sim, site.device.default_stream, site.device.arch, [])


def test_fused_kernel_occupies_stream(env):
    sim, site = env
    rl = CircularRequestList(sim, capacity=8)
    for _ in range(4):
        rl.enqueue(_op(site)[0])
    reqs = rl.pending()
    rl.mark_busy(reqs)
    plan = launch_fused_kernel(sim, site.device.default_stream, site.device.arch, reqs)
    assert site.device.default_stream.tail == pytest.approx(plan.total_duration)


# -- scheduler -------------------------------------------------------------------------


def test_scheduler_enqueue_returns_request(env):
    sim, site = env
    sched = FusionScheduler(site, Trace(), FusionPolicy(threshold_bytes=1 << 30))
    req = _drive(sim, sched.enqueue(_op(site)[0]))
    assert req is not None and req.uid == 0
    assert sched.pending_count == 1
    assert sched.stats.enqueued == 1


def test_scheduler_enqueue_charges_sched_bucket(env):
    sim, site = env
    trace = Trace()
    sched = FusionScheduler(site, trace, FusionPolicy(threshold_bytes=1 << 30))
    _drive(sim, sched.enqueue(_op(site)[0]))
    assert trace.total(Category.SCHED) == pytest.approx(sched.enqueue_overhead)


def test_scheduler_threshold_triggers_launch(env):
    sim, site = env
    sched = FusionScheduler(
        site, Trace(), FusionPolicy(threshold_bytes=12 * 1024, min_batch_requests=2)
    )
    _drive(sim, sched.enqueue(_op(site, nbytes=8 * 1024)[0]))
    assert sched.stats.launches == 0
    _drive(sim, sched.enqueue(_op(site, nbytes=8 * 1024)[0]))
    assert sched.stats.launches == 1
    assert sched.stats.threshold_launches == 1
    assert sched.stats.batch_sizes == [2]
    assert sched.pending_count == 0


def test_scheduler_flush_launches_pending(env):
    sim, site = env
    sched = FusionScheduler(site, Trace(), FusionPolicy(threshold_bytes=1 << 30))
    _drive(sim, sched.enqueue(_op(site)[0]))
    _drive(sim, sched.flush())
    assert sched.stats.flush_launches == 1
    assert sched.pending_count == 0


def test_scheduler_flush_empty_noop(env):
    sim, site = env
    sched = FusionScheduler(site, Trace(), FusionPolicy())
    _drive(sim, sched.flush())
    assert sched.stats.launches == 0


def test_scheduler_launch_charges_single_launch_overhead(env):
    sim, site = env
    trace = Trace()
    sched = FusionScheduler(site, trace, FusionPolicy(threshold_bytes=1 << 30))
    for _ in range(6):
        _drive(sim, sched.enqueue(_op(site)[0]))
    _drive(sim, sched.flush())
    assert trace.total(Category.LAUNCH) == pytest.approx(
        site.device.arch.kernel_launch_overhead
    )
    assert sched.stats.mean_batch == 6


def test_scheduler_query_by_uid(env):
    sim, site = env
    sched = FusionScheduler(site, Trace(), FusionPolicy(threshold_bytes=1 << 30))
    req = _drive(sim, sched.enqueue(_op(site)[0]))
    assert not sched.query(req.uid)
    _drive(sim, sched.flush())
    sim.run()
    assert sched.query(req.uid)
    # After reaping, queries for old UIDs still answer True.
    sched.request_list.reap()
    assert sched.query(req.uid)


def test_scheduler_fallback_when_full(env):
    sim, site = env
    sched = FusionScheduler(
        site, Trace(), FusionPolicy(threshold_bytes=1 << 30), capacity=2
    )
    assert _drive(sim, sched.enqueue(_op(site)[0])) is not None
    assert _drive(sim, sched.enqueue(_op(site)[0])) is not None
    assert _drive(sim, sched.enqueue(_op(site)[0])) is None
    assert sched.stats.fallbacks == 1
