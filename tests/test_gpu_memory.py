"""Unit tests for simulated device memory."""

import numpy as np
import pytest

from repro.gpu import DeviceMemory, GPUBuffer, OutOfMemoryError, host_alloc


def test_alloc_tracks_usage():
    mem = DeviceMemory(1024)
    buf = mem.alloc(256)
    assert mem.allocated == 256
    assert mem.available == 768
    assert buf.nbytes == 256
    assert buf.on_device


def test_alloc_zeroed_by_default():
    mem = DeviceMemory(1024)
    assert not mem.alloc(64).data.any()


def test_alloc_with_fill():
    mem = DeviceMemory(1024)
    buf = mem.alloc(16, fill=0xAB)
    assert (buf.data == 0xAB).all()


def test_oom_raised():
    mem = DeviceMemory(100)
    mem.alloc(80)
    with pytest.raises(OutOfMemoryError):
        mem.alloc(21)


def test_free_returns_capacity():
    mem = DeviceMemory(100)
    buf = mem.alloc(80)
    buf.free()
    assert mem.allocated == 0
    mem.alloc(100)  # fits again


def test_double_free_harmless():
    mem = DeviceMemory(100)
    buf = mem.alloc(10)
    buf.free()
    buf.free()
    assert mem.allocated == 0


def test_peak_tracking():
    mem = DeviceMemory(100)
    a = mem.alloc(60)
    a.free()
    mem.alloc(30)
    assert mem.peak == 60
    assert mem.allocation_count == 2


def test_typed_view_shares_bytes():
    buf = GPUBuffer(32)
    view = buf.view(np.float64)
    view[0] = 3.25
    assert buf.data[:8].any()


def test_host_alloc():
    buf = host_alloc(64)
    assert not buf.on_device
    assert buf.space == "host"


def test_invalid_sizes():
    with pytest.raises(ValueError):
        DeviceMemory(0)
    with pytest.raises(ValueError):
        GPUBuffer(-1)


def test_buffer_ids_unique():
    a, b = GPUBuffer(1), GPUBuffer(1)
    assert a.buffer_id != b.buffer_id


# -- BufferPool -----------------------------------------------------------------


def test_pool_bucket_rounding():
    from repro.gpu import BufferPool

    pool = BufferPool(DeviceMemory(1 << 20))
    buf = pool.acquire(100)
    assert buf.nbytes == 128
    assert pool.misses == 1


def test_pool_reuse_hits():
    from repro.gpu import BufferPool

    pool = BufferPool(DeviceMemory(1 << 20))
    a = pool.acquire(1000)
    pool.release(a)
    b = pool.acquire(900)  # same 1024 bucket
    assert b is a
    assert pool.hits == 1 and pool.misses == 1
    assert pool.hit_rate == pytest.approx(0.5)


def test_pool_reused_buffer_zeroed():
    from repro.gpu import BufferPool

    pool = BufferPool(DeviceMemory(1 << 20))
    a = pool.acquire(64)
    a.data[:] = 9
    pool.release(a)
    b = pool.acquire(64)
    assert not b.data.any()


def test_pool_dry_mode_skips_zeroing_and_marks_buffers():
    from repro.gpu import BufferPool

    pool = BufferPool(DeviceMemory(1 << 20), functional=False)
    a = pool.acquire(64)
    assert a.functional is False


def test_pool_cap_frees_extras():
    from repro.gpu import BufferPool

    mem = DeviceMemory(1 << 20)
    pool = BufferPool(mem, max_cached_per_bucket=1)
    a, b = pool.acquire(64), pool.acquire(64)
    pool.release(a)
    allocated = mem.allocated
    pool.release(b)  # bucket full: freed outright
    assert mem.allocated == allocated - 64


def test_pool_trim():
    from repro.gpu import BufferPool

    mem = DeviceMemory(1 << 20)
    pool = BufferPool(mem)
    pool.release(pool.acquire(64))
    pool.release(pool.acquire(256))
    assert pool.cached_bytes == 64 + 256
    assert pool.trim() == 2
    assert pool.cached_bytes == 0
    assert mem.allocated == 0


def test_pool_rejects_foreign_buffer():
    from repro.gpu import BufferPool

    pool = BufferPool(DeviceMemory(1 << 20))
    with pytest.raises(ValueError):
        pool.release(GPUBuffer(100))  # not a power-of-two bucket
    with pytest.raises(ValueError):
        pool.acquire(0)


def test_pool_host_mode():
    from repro.gpu import BufferPool

    pool = BufferPool(None)
    buf = pool.acquire(64)
    assert not buf.on_device
