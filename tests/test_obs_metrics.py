"""repro.obs.metrics — registry, labels, snapshot/diff, Prometheus text."""

import json

import pytest

from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import Counter, Gauge, Histogram


# -- primitives -------------------------------------------------------------


def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_peak():
    g = Gauge()
    g.set(3)
    g.inc(2)
    g.dec(4)
    assert g.value == 1
    assert g.peak == 5


def test_histogram_buckets_and_moments():
    h = Histogram((1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    # per-bucket (non-cumulative): <=1, <=2, <=4, +Inf
    assert h.bucket_counts == [1, 1, 1, 1]
    assert h.count == 4
    assert h.sum == pytest.approx(105.0)
    assert h.mean == pytest.approx(105.0 / 4)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(())


# -- registry and labels ----------------------------------------------------


def test_registry_declare_or_fetch_and_kind_clash():
    reg = MetricsRegistry()
    fam = reg.counter("requests_total", "help text")
    assert reg.counter("requests_total") is fam
    with pytest.raises(ValueError):
        reg.gauge("requests_total")


def test_labeled_children_are_distinct_series():
    reg = MetricsRegistry()
    fam = reg.counter("transfers_total", labelnames=("link",))
    fam.labels(link="nvlink").inc(3)
    fam.labels(link="ib").inc(4)
    assert fam.labels(link="nvlink").value == 3
    assert fam.labels(link="ib").value == 4
    with pytest.raises(ValueError):
        fam.labels(wrong="x")


# -- snapshot / diff --------------------------------------------------------


def _populated():
    reg = MetricsRegistry()
    reg.counter("ops_total", labelnames=("kind",)).labels(kind="pack").inc(5)
    reg.counter("ops_total", labelnames=("kind",)).labels(kind="unpack").inc(2)
    reg.gauge("occupancy").labels().set(7)
    h = reg.histogram("latency_seconds", buckets=(1e-6, 1e-3))
    h.labels().observe(2e-6)
    h.labels().observe(0.5)
    return reg


def test_snapshot_value_and_total():
    snap = _populated().snapshot()
    assert snap.value("ops_total", kind="pack") == 5
    assert snap.total("ops_total") == 7
    assert snap.value("occupancy") == {"value": 7, "peak": 7}
    # histograms contribute their observation count to total()
    assert snap.total("latency_seconds") == 2
    assert snap.total("never_registered") == 0.0


def test_snapshot_diff_subtracts_counters_keeps_gauges():
    reg = _populated()
    older = reg.snapshot()
    reg.counter("ops_total", labelnames=("kind",)).labels(kind="pack").inc(10)
    reg.gauge("occupancy").labels().set(3)
    reg.histogram("latency_seconds").labels().observe(1e-7)
    newer = reg.snapshot()
    delta = newer.diff(older)
    assert delta.value("ops_total", kind="pack") == 10
    assert delta.value("ops_total", kind="unpack") == 0
    # gauges report the current value, not a difference
    assert delta.value("occupancy")["value"] == 3
    assert delta.total("latency_seconds") == 1


def test_snapshot_round_trips_through_json():
    snap = _populated().snapshot()
    clone = MetricsSnapshot.from_dict(json.loads(json.dumps(snap.as_dict())))
    assert clone.value("ops_total", kind="pack") == 5
    assert clone.total("latency_seconds") == 2
    assert clone.to_prometheus_text() == snap.to_prometheus_text()


# -- Prometheus exposition --------------------------------------------------


def test_prometheus_text_families_and_series():
    text = _populated().snapshot().to_prometheus_text()
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{kind="pack"} 5' in text
    assert "# TYPE occupancy gauge" in text
    assert "# TYPE latency_seconds histogram" in text
    # cumulative buckets end with the +Inf catch-all
    assert 'latency_seconds_bucket{le="+Inf"} 2' in text
    assert "latency_seconds_count 2" in text


def test_prometheus_label_value_escaping():
    reg = MetricsRegistry()
    fam = reg.counter("weird_total", labelnames=("path",))
    fam.labels(path='a\\b"c\nd').inc()
    text = reg.snapshot().to_prometheus_text()
    assert 'weird_total{path="a\\\\b\\"c\\nd"} 1' in text


def test_prometheus_implicit_inf_bucket():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1.0, 2.0)).labels().observe(0.5)
    text = reg.snapshot().to_prometheus_text()
    # exactly one implicit +Inf catch-all per series, cumulative form
    assert text.count('le="+Inf"') == 1
    assert 'h_bucket{le="+Inf"} 1' in text
