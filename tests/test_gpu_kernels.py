"""Unit tests for the kernel cost model and op factories."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, DataLayout, Indexed, Vector
from repro.gpu import (
    ARCHITECTURES,
    GPUDevice,
    OpKind,
    TESLA_K80,
    TESLA_V100,
    kernel_compute_time,
)
from repro.sim import Simulator


def test_cost_monotone_in_bytes():
    t1 = kernel_compute_time(TESLA_V100, 1024, 8, 128)
    t2 = kernel_compute_time(TESLA_V100, 1 << 20, 8, 128)
    assert t2 > t1


def test_cost_small_blocks_less_efficient():
    """Same bytes in tiny blocks cost more (strided-access penalty)."""
    dense = kernel_compute_time(TESLA_V100, 1 << 16, 64, 1024)
    sparse = kernel_compute_time(TESLA_V100, 1 << 16, 4096, 16)
    assert sparse > dense


def test_cost_few_blocks_cannot_saturate():
    """One resident block moves data far slower than a full grid."""
    one = kernel_compute_time(TESLA_V100, 1 << 20, 1, 1 << 20)
    many = kernel_compute_time(TESLA_V100, 1 << 20, 256, 4096)
    assert one > many


def test_grid_cap_slows_kernel():
    full = kernel_compute_time(TESLA_V100, 1 << 20, 256, 4096)
    capped = kernel_compute_time(TESLA_V100, 1 << 20, 256, 4096, grid_blocks=4)
    assert capped > full


def test_zero_bytes_costs_fixed_only():
    assert kernel_compute_time(TESLA_V100, 0, 0, 0) == TESLA_V100.kernel_fixed_cost
    assert kernel_compute_time(TESLA_V100, 0, 0, 0, include_fixed=False) == 0.0


def test_launch_overhead_dominates_typical_pack():
    """The Fig. 1 fact: on *modern* architectures (Pascal onward) the
    launch overhead outweighs the pack kernel itself; on Kepler the
    kernels were still slow enough to dominate."""
    for arch in ARCHITECTURES.values():
        # specfem-like: thousands of tiny blocks, tens of KB.
        t = kernel_compute_time(arch, 64_000, 4000, 16)
        if arch.year >= 2016:
            assert arch.kernel_launch_overhead > 0.5 * t
        else:
            assert t > arch.kernel_launch_overhead


def test_strided_efficiency_bounds():
    assert TESLA_V100.strided_efficiency(1) == pytest.approx(1 / 128)
    assert TESLA_V100.strided_efficiency(128) == 1.0
    assert TESLA_V100.strided_efficiency(4096) == 1.0
    assert TESLA_V100.strided_efficiency(0) == 1.0


def test_arch_overrides():
    fast = TESLA_V100.with_overrides(kernel_launch_overhead=0.0)
    assert fast.kernel_launch_overhead == 0.0
    assert TESLA_V100.kernel_launch_overhead > 0.0  # original untouched


def test_newer_arch_faster_kernels_similar_launch():
    """GPUs got faster; launch overhead did not shrink proportionally."""
    k80 = kernel_compute_time(TESLA_K80, 64_000, 4000, 16)
    v100 = kernel_compute_time(TESLA_V100, 64_000, 4000, 16)
    assert v100 < k80
    assert TESLA_V100.kernel_launch_overhead > 0.5 * TESLA_K80.kernel_launch_overhead


# -- functional op factories -------------------------------------------------------


def _device():
    return GPUDevice(Simulator(), TESLA_V100)


def test_pack_op_moves_bytes():
    dev = _device()
    t = Vector(4, 2, 5, DOUBLE).commit()
    lay = t.flatten()
    src = dev.alloc(lay.span + 8)
    src.data[:] = np.random.default_rng(0).integers(0, 256, src.nbytes)
    dst = dev.alloc(lay.size)
    op = dev.pack_op(src, lay, dst)
    assert op.kind == OpKind.PACK
    assert op.nbytes == lay.size
    op.apply()
    assert np.array_equal(dst.data[: lay.size], src.data[lay.gather_index()])


def test_unpack_op_moves_bytes():
    dev = _device()
    lay = DataLayout([0, 16], [8, 8])
    packed = dev.alloc(16, fill=7)
    dst = dev.alloc(32)
    dev.unpack_op(packed, lay, dst).apply()
    assert (dst.data[lay.gather_index()] == 7).all()
    assert not dst.data[8:16].any()


def test_pack_op_offsets():
    dev = _device()
    lay = DataLayout([0], [4])
    src = dev.alloc(32)
    src.data[:] = np.arange(32)
    dst = dev.alloc(16)
    dev.pack_op(src, lay, dst, source_offset=10, packed_offset=4).apply()
    assert list(dst.data[4:8]) == [10, 11, 12, 13]


def test_direct_ipc_op():
    dev = _device()
    src_lay = DataLayout([0, 16], [4, 4])
    dst_lay = DataLayout([8, 100], [4, 4])
    src = dev.alloc(32)
    src.data[:4] = 1
    src.data[16:20] = 2
    dst = dev.alloc(128)
    op = dev.direct_ipc_op(src, src_lay, dst, dst_lay, peer_bandwidth=50e9)
    assert op.kind == OpKind.DIRECT_IPC
    op.apply()
    assert (dst.data[8:12] == 1).all()
    assert (dst.data[100:104] == 2).all()


def test_direct_ipc_size_mismatch_rejected():
    dev = _device()
    with pytest.raises(ValueError):
        dev.direct_ipc_op(
            dev.alloc(32), DataLayout([0], [8]),
            dev.alloc(32), DataLayout([0], [4]),
            peer_bandwidth=50e9,
        )


def test_dry_device_moves_no_bytes():
    dev = GPUDevice(Simulator(), TESLA_V100, functional=False)
    lay = DataLayout([0], [8])
    src = dev.alloc(8, fill=5)
    dst = dev.alloc(8)
    op = dev.pack_op(src, lay, dst)
    assert op.duration > 0  # priced normally
    op.apply()
    assert not dst.data.any()  # but no bytes moved


def test_sparse_kernel_costs_match_workload_scale():
    """Sanity-pin the cost model: a specfem-scale pack kernel on V100
    lands in the paper's few-microsecond range (Fig. 1)."""
    disp = np.arange(4000) * 6
    t = Indexed(np.full(4000, 2), disp, DOUBLE).commit()
    lay = t.flatten()
    cost = kernel_compute_time(TESLA_V100, lay.size, lay.num_blocks, lay.mean_block)
    assert 1e-6 < cost < 15e-6
