"""Unit + property tests for the circular request list (§IV-A1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CircularRequestList, RequestStatus
from repro.gpu import GPUDevice, TESLA_V100
from repro.datatypes import DataLayout
from repro.sim import Simulator


def _op(dev, nbytes=1024):
    lay = DataLayout([0], [nbytes])
    return dev.pack_op(dev.alloc(nbytes), lay, dev.alloc(nbytes))


@pytest.fixture()
def env():
    sim = Simulator()
    return sim, GPUDevice(sim, TESLA_V100)


def test_enqueue_assigns_increasing_uids(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=8)
    uids = [rl.enqueue(_op(dev)).uid for _ in range(5)]
    assert uids == sorted(uids)
    assert len(set(uids)) == 5


def test_enqueue_full_returns_none(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=2)
    assert rl.enqueue(_op(dev)) is not None
    assert rl.enqueue(_op(dev)) is not None
    assert rl.is_full
    assert rl.enqueue(_op(dev)) is None
    assert rl.rejections == 1


def test_pending_fifo_order(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=8)
    reqs = [rl.enqueue(_op(dev)) for _ in range(4)]
    assert [r.uid for r in rl.pending()] == [r.uid for r in reqs]
    assert rl.pending_bytes() == sum(r.op.nbytes for r in reqs)


def test_status_lifecycle(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    req = rl.enqueue(_op(dev))
    assert req.request_status is RequestStatus.PENDING
    assert req.response_status is RequestStatus.IDLE
    rl.mark_busy([req])
    assert req.request_status is RequestStatus.BUSY
    assert not req.complete
    req.gpu_signal_complete()
    assert req.complete
    assert req.response_status is RequestStatus.COMPLETED


def test_mark_busy_rejects_non_pending(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    req = rl.enqueue(_op(dev))
    rl.mark_busy([req])
    with pytest.raises(ValueError):
        rl.mark_busy([req])


def test_gpu_signal_fires_done_event(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    req = rl.enqueue(_op(dev))
    req.gpu_signal_complete()
    sim.run()
    assert req.done_event.processed


def test_reap_recycles_head_entries(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=3)
    reqs = [rl.enqueue(_op(dev)) for _ in range(3)]
    assert rl.enqueue(_op(dev)) is None
    rl.mark_busy(reqs)
    reqs[0].gpu_signal_complete()
    assert rl.reap() == 1
    assert rl.occupancy == 2
    assert rl.enqueue(_op(dev)) is not None  # slot freed


def test_reap_stops_at_incomplete(env):
    """Ring discipline: a later completion cannot be reaped past an
    earlier incomplete entry."""
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    reqs = [rl.enqueue(_op(dev)) for _ in range(3)]
    rl.mark_busy(reqs)
    reqs[1].gpu_signal_complete()
    reqs[2].gpu_signal_complete()
    assert rl.reap() == 0
    reqs[0].gpu_signal_complete()
    assert rl.reap() == 3


def test_lookup_by_uid(env):
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    req = rl.enqueue(_op(dev))
    assert rl.lookup(req.uid) is req
    assert rl.lookup(9999) is None


def test_capacity_validation(env):
    sim, _dev = env
    with pytest.raises(ValueError):
        CircularRequestList(sim, capacity=0)


def test_wraparound_reuse(env):
    """Fill, drain, and refill across the wrap boundary."""
    sim, dev = env
    rl = CircularRequestList(sim, capacity=4)
    for _round in range(5):
        reqs = [rl.enqueue(_op(dev)) for _ in range(4)]
        assert all(r is not None for r in reqs)
        rl.mark_busy(reqs)
        for r in reqs:
            r.gpu_signal_complete()
        assert rl.reap() == 4
        assert rl.occupancy == 0
    assert rl.peak_occupancy == 4


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["enq", "complete", "reap"]), max_size=60),
       st.integers(2, 8))
def test_ring_invariants_under_random_operations(script, capacity):
    """Property: UIDs unique, occupancy bounded, reaps only completed,
    no status regression, fallback exactly when full."""
    sim = Simulator()
    dev = GPUDevice(sim, TESLA_V100)
    rl = CircularRequestList(sim, capacity=capacity)
    live = []
    seen_uids = set()
    for action in script:
        if action == "enq":
            was_full = rl.is_full
            req = rl.enqueue(_op(dev))
            assert (req is None) == was_full
            if req is not None:
                assert req.uid not in seen_uids
                seen_uids.add(req.uid)
                live.append(req)
        elif action == "complete" and live:
            req = live.pop(0)
            if req.request_status is RequestStatus.PENDING:
                rl.mark_busy([req])
            req.gpu_signal_complete()
        elif action == "reap":
            rl.reap()
        assert 0 <= rl.occupancy <= capacity
        assert rl.peak_occupancy <= capacity
