"""repro.obs.artifact — BENCH_*.json schema, round trip, validation."""

import json

import pytest

from repro.bench import run_bulk_exchange
from repro.net import SYSTEMS
from repro.obs import (
    SCHEMA,
    SCHEMA_VERSION,
    artifact_path,
    entries_from_grid,
    experiment_artifact,
    load_bench_artifact,
    result_entry,
    write_bench_artifact,
)
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

RUN = {"iterations": 2, "warmup": 1, "data_plane": False}


def _result(scheme="GPU-Sync", dim=100, nbuffers=2):
    return run_bulk_exchange(
        SYSTEMS["Lassen"],
        SCHEME_REGISTRY[scheme],
        WORKLOADS["specfem3D_cm"](dim),
        nbuffers=nbuffers,
        **RUN,
    )


def test_result_entry_captures_the_measurement():
    result = _result()
    entry = result_entry(result, run=RUN)
    assert entry["key"] == "GPU-Sync/dim=100/nbuf=2"
    assert entry["scheme"] == "GPU-Sync"
    assert entry["mean_latency"] == pytest.approx(result.mean_latency)
    assert len(entry["latencies"]) == RUN["iterations"]
    assert {"pack", "launch", "sched", "sync", "comm"} <= set(entry["breakdown"])
    assert entry["run"] == RUN
    assert "scheduler" not in entry  # non-fusion run


def test_artifact_document_and_file_round_trip(tmp_path):
    grid = {"GPU-Sync": {2: _result(nbuffers=2)}}
    doc = experiment_artifact(
        "unit_fig",
        entries_from_grid(grid, column="nbuf", run=RUN),
        meta={"seed": 42},
    )
    assert doc["schema"] == SCHEMA and doc["version"] == SCHEMA_VERSION
    path = artifact_path(str(tmp_path), "unit_fig")
    assert path.endswith("BENCH_unit_fig.json")
    write_bench_artifact(path, doc)
    loaded = load_bench_artifact(path)
    assert loaded["experiment"] == "unit_fig"
    assert loaded["entries"][0]["key"] == "GPU-Sync/nbuf=2"
    assert loaded["meta"] == {"seed": 42}


def test_artifact_rejects_duplicate_keys():
    entry = {"key": "same"}
    with pytest.raises(ValueError, match="duplicate"):
        experiment_artifact("x", [entry, dict(entry)])


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"schema": "something/else", "version": 1}))
    with pytest.raises(ValueError, match="not a bench artifact"):
        load_bench_artifact(str(path))
    path.write_text(json.dumps({"schema": SCHEMA, "version": SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="version"):
        load_bench_artifact(str(path))


def test_write_rejects_non_artifact(tmp_path):
    with pytest.raises(ValueError):
        write_bench_artifact(str(tmp_path / "x.json"), {"schema": "wrong"})
