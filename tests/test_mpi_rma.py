"""Tests for one-sided RMA (windows, Put/Get, fence)."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, DataLayout, Vector
from repro.mpi import Runtime, create_windows
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator


def _setup(scheme="Proposed", nodes=2, ranks_per_node=1, win_bytes=4096, **kw):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=nodes, ranks_per_node=ranks_per_node)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[scheme], **kw)
    buffers = {r: rt.rank(r).device.alloc(win_bytes) for r in range(rt.size)}
    wins = create_windows(rt, buffers)
    return sim, rt, buffers, wins


def _run(sim, *programs):
    procs = [sim.process(p) for p in programs]
    sim.run(sim.all_of(procs))


DT = Vector(16, 2, 4, DOUBLE)


def test_put_noncontiguous_roundtrip():
    sim, rt, bufs, wins = _setup()
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    src = rt.rank(0).device.alloc(4096)
    src.data[:] = np.random.default_rng(2).integers(0, 256, 4096)

    def origin():
        yield from wins[0].put(src, dt, 1, target_rank=1)
        yield from wins[0].fence()

    def target():
        yield from wins[1].fence()

    _run(sim, origin(), target())
    idx = lay.gather_index()
    assert np.array_equal(bufs[1].data[idx], src.data[idx])


def test_put_with_distinct_target_type():
    """Gather a strided origin into a contiguous window region."""
    sim, rt, bufs, wins = _setup()
    dt = Vector(8, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    dense = DataLayout.contiguous(lay.size)
    src = rt.rank(0).device.alloc(4096, fill=7)

    def origin():
        yield from wins[0].put(src, dt, 1, 1, target_type=dense, target_offset=64)
        yield from wins[0].fence()

    def target():
        yield from wins[1].fence()

    _run(sim, origin(), target())
    assert (bufs[1].data[64 : 64 + lay.size] == 7).all()
    assert not bufs[1].data[:64].any()


def test_get_noncontiguous():
    sim, rt, bufs, wins = _setup()
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    bufs[1].data[:] = np.random.default_rng(5).integers(0, 256, bufs[1].nbytes)
    dst = rt.rank(0).device.alloc(4096)

    def origin():
        yield from wins[0].get(dst, dt, 1, target_rank=1)
        yield from wins[0].fence()

    def target():
        yield from wins[1].fence()

    _run(sim, origin(), target())
    idx = lay.gather_index()
    assert np.array_equal(dst.data[idx], bufs[1].data[idx])


def test_direct_ipc_window_zero_copy():
    """Intra-node windows with DirectIPC: the put fuses as a single
    load-store request — no staging, no wire."""
    sim, rt, bufs, wins = _setup(nodes=1, ranks_per_node=2, enable_direct_ipc=True)
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    src = rt.rank(0).device.alloc(4096, fill=9)

    def origin():
        yield from wins[0].put(src, dt, 1, target_rank=1)
        yield from wins[0].fence()

    def target():
        yield from wins[1].fence()

    _run(sim, origin(), target())
    idx = lay.gather_index()
    assert (bufs[1].data[idx] == 9).all()
    from repro.gpu import OpKind

    fused_kinds = [
        part.op.kind
        for plan in rt.rank(0).scheme.scheduler.plans
        for part in plan.requests
    ]
    assert OpKind.DIRECT_IPC in fused_kinds


def test_many_puts_one_epoch_fused():
    sim, rt, bufs, wins = _setup(win_bytes=1 << 16)
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    srcs = [rt.rank(0).device.alloc(1024, fill=i + 1) for i in range(4)]

    def origin():
        for i, s in enumerate(srcs):
            yield from wins[0].put(
                s, dt, 1, 1,
                target_type=DataLayout.contiguous(lay.size),
                target_offset=i * 1024,
            )
        yield from wins[0].fence()

    def target():
        yield from wins[1].fence()

    _run(sim, origin(), target())
    for i in range(4):
        assert (bufs[1].data[i * 1024 : i * 1024 + lay.size] == i + 1).all()
    assert wins[0].group.puts == 4
    # The four packs batched through the fusion scheduler.
    assert rt.rank(0).scheme.scheduler.stats.enqueued >= 4


def test_fence_epoch_recycles():
    sim, rt, bufs, wins = _setup()
    dt = Vector(4, 1, 2, DOUBLE).commit()
    src = rt.rank(0).device.alloc(256, fill=3)

    def origin():
        for _ in range(3):
            yield from wins[0].put(src, dt, 1, 1)
            yield from wins[0].fence()

    def target():
        for _ in range(3):
            yield from wins[1].fence()

    _run(sim, origin(), target())
    assert wins[0].group.epoch == 3
    assert not wins[0].group.epoch_ops


def test_rma_validation():
    sim, rt, bufs, wins = _setup()
    dt = Vector(4, 1, 2, DOUBLE).commit()
    src = rt.rank(0).device.alloc(256)

    def self_put():
        yield from wins[0].put(src, dt, 1, target_rank=0)

    p = sim.process(self_put())
    with pytest.raises(ValueError, match="self"):
        sim.run(p)

    def bad_target():
        yield from wins[0].put(src, dt, 1, target_rank=5)

    p2 = sim.process(bad_target())
    with pytest.raises(ValueError, match="outside window group"):
        sim.run(p2)

    def mismatched():
        yield from wins[0].put(
            src, dt, 1, 1, target_type=DataLayout.contiguous(8)
        )

    p3 = sim.process(mismatched())
    with pytest.raises(ValueError, match="disagree"):
        sim.run(p3)

    with pytest.raises(ValueError, match="every rank"):
        create_windows(rt, {0: bufs[0]})
