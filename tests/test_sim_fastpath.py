"""Fast-path/generic-path equivalence of the simulation hot paths.

The PR-4 contract: with ``REPRO_SIM_FASTPATH`` toggled, every component
must produce *byte-identical virtual time* — the closed-form fast paths
(link transmit, stream completion) may only change host wall time.
These tests prove the engine-semantics half in-process (same-timestamp
FIFO, Interrupt delivery, AllOf/AnyOf) and spot-check the end-to-end
half on a real exchange; CI sweeps every figure both ways and
byte-compares the artifacts.
"""

import pytest

from repro.bench import run_bulk_exchange
from repro.gpu.device import GPUDevice
from repro.net import SYSTEMS
from repro.net.link import Link, LinkSpec
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Interrupt, Simulator
from repro.sim.engine import fastpath_enabled, set_fastpath
from repro.workloads import WORKLOADS


@pytest.fixture(params=[True, False], ids=["fast", "generic"])
def fastpath(request):
    """Run the decorated test under both fast-path settings."""
    previous = set_fastpath(request.param)
    yield request.param
    set_fastpath(previous)


def _with_fastpath(enabled, fn):
    previous = set_fastpath(enabled)
    try:
        return fn()
    finally:
        set_fastpath(previous)


# -- engine semantics under either setting ---------------------------------


def test_same_timestamp_fifo_order(fastpath):
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(8):
        sim.process(proc(tag))
    sim.run()
    assert order == list(range(8))


def test_interrupt_delivery(fastpath):
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupt as exc:
            seen.append((sim.now, exc.cause))

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("wake")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert seen == [(2.0, "wake")]


def test_allof_anyof_composition(fastpath):
    sim = Simulator()
    results = {}

    def proc():
        t1, t2, t3 = sim.timeout(1.0, "a"), sim.timeout(2.0, "b"), sim.timeout(3.0, "c")
        first = yield sim.any_of([t1, t2, t3])
        results["any_at"] = sim.now
        results["any_values"] = sorted(first.values())
        rest = yield sim.all_of([t2, t3])
        results["all_at"] = sim.now
        results["all_values"] = sorted(rest.values())

    sim.process(proc())
    sim.run()
    assert results == {
        "any_at": 1.0,
        "any_values": ["a"],
        "all_at": 3.0,
        "all_values": ["b", "c"],
    }


def test_toggle_returns_previous_value():
    original = fastpath_enabled()
    try:
        assert set_fastpath(False) == original
        assert fastpath_enabled() is False
        assert set_fastpath(True) is False
        assert fastpath_enabled() is True
    finally:
        set_fastpath(original)


# -- component equivalence: identical virtual timelines --------------------


def _transmit_trace():
    sim = Simulator()
    link = Link(sim, LinkSpec("test", bandwidth=10e9, latency=1e-6))
    times = []

    def proc():
        for nbytes in (1_000, 1_000_000, 64):
            spent = yield from link.transmit(nbytes)
            times.append((sim.now, spent))

    sim.process(proc())
    sim.run()
    return times, link.bytes_carried, link.transfer_count, sim.events_processed


def test_link_transmit_identical_fast_vs_generic():
    fast = _with_fastpath(True, _transmit_trace)
    generic = _with_fastpath(False, _transmit_trace)
    # Everything identical, including the event count: the no-fault
    # fast path emits the same request/timeout sequence by construction.
    assert fast == generic


def _stream_trace():
    sim = Simulator()
    device = GPUDevice(sim)
    completions = []

    def proc():
        for duration in (1e-5, 2e-5, 0.0):
            done = device.default_stream.enqueue_callable(
                duration, value=duration
            )
            value = yield done
            completions.append((sim.now, value))

    sim.process(proc())
    sim.run()
    return completions, device.default_stream.busy_time


def test_stream_completion_identical_fast_vs_generic():
    fast = _with_fastpath(True, _stream_trace)
    generic = _with_fastpath(False, _stream_trace)
    assert fast == generic


def test_stream_apply_runs_at_completion(fastpath):
    sim = Simulator()
    device = GPUDevice(sim)
    applied = []

    def proc():
        done = device.default_stream.enqueue_callable(
            1e-5, apply=lambda: applied.append(sim.now), value="v"
        )
        value = yield done
        assert value == "v"

    sim.process(proc())
    sim.run()
    assert applied == [1e-5]


# -- end-to-end: a real exchange, every scheme, both settings --------------


@pytest.mark.parametrize("scheme", ["Proposed", "GPU-Sync", "GPU-Async"])
def test_bulk_exchange_equivalence(scheme):
    def run():
        result = run_bulk_exchange(
            SYSTEMS["Lassen"],
            SCHEME_REGISTRY[scheme],
            WORKLOADS["specfem3D_cm"](500),
            nbuffers=4,
            iterations=2,
            warmup=1,
        )
        return (
            result.latencies,
            result.mean_latency,
            {str(k): v for k, v in result.breakdown.items()},
        )

    fast = _with_fastpath(True, run)
    generic = _with_fastpath(False, run)
    assert fast == generic
