"""Tests for the benchmark harness (runner + reports)."""

import pytest

from repro.bench import (
    ExperimentResult,
    format_breakdown_table,
    format_latency_table,
    format_speedup_table,
    run_bulk_exchange,
    speedup_matrix,
)
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Category
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def results():
    spec = WORKLOADS["NAS_MG"](32)
    out = {}
    for name in ("GPU-Sync", "Proposed"):
        out[name] = run_bulk_exchange(
            LASSEN, SCHEME_REGISTRY[name], spec, nbuffers=4, iterations=3, warmup=1
        )
    return out


def test_result_latencies_recorded(results):
    r = results["GPU-Sync"]
    assert len(r.latencies) == 3
    assert r.mean_latency > 0
    assert r.min_latency <= r.mean_latency
    assert r.scheme == "GPU-Sync"
    assert r.workload == "NAS_MG"
    assert r.system == "Lassen"
    assert r.message_bytes == 32 * 32 * 8


def test_iterations_are_deterministic(results):
    """The simulation is noise-free: steady-state iterations agree."""
    for r in results.values():
        assert max(r.latencies) - min(r.latencies) < 1e-9


def test_breakdown_sums_to_latency(results):
    for r in results.values():
        total = sum(r.breakdown.values())
        assert total == pytest.approx(r.mean_latency, rel=0.05)


def test_proposed_beats_sync(results):
    assert results["Proposed"].speedup_over(results["GPU-Sync"]) > 1.5


def test_proposed_lower_launch_and_sync(results):
    sync_bd = results["GPU-Sync"].breakdown
    prop_bd = results["Proposed"].breakdown
    assert prop_bd[Category.LAUNCH] < sync_bd[Category.LAUNCH]
    assert prop_bd[Category.SYNC] < sync_bd[Category.SYNC]


def test_scheduler_stats_captured(results):
    stats = results["Proposed"].scheduler_stats
    assert stats is not None
    assert stats.enqueued > 0


def test_data_plane_off_matches_timing():
    spec = WORKLOADS["NAS_MG"](32)
    wet = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=2, iterations=2, warmup=1
    )
    dry = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=2, iterations=2, warmup=1,
        data_plane=False,
    )
    assert dry.mean_latency == pytest.approx(wet.mean_latency, rel=1e-9)


def test_runner_validation():
    spec = WORKLOADS["NAS_MG"](16)
    with pytest.raises(ValueError):
        run_bulk_exchange(
            LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, iterations=0
        )


def test_verification_detects_dropped_bytes(monkeypatch):
    """verify=True really checks: sabotage the unpack data plane and the
    harness must raise its corruption error."""
    import repro.bench.runner as runner_mod
    from repro.net.topology import Cluster as RealCluster

    class SabotagedCluster(RealCluster):
        def __init__(self, sim, system, nodes=2, ranks_per_node=1, functional=True):
            # Devices silently drop all byte movement while the harness
            # believes the data plane is live.
            super().__init__(sim, system, nodes, ranks_per_node, functional=False)

    monkeypatch.setattr(runner_mod, "Cluster", SabotagedCluster)
    spec = WORKLOADS["NAS_MG"](16)
    with pytest.raises(AssertionError, match="corruption"):
        run_bulk_exchange(
            LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec,
            nbuffers=2, iterations=1, warmup=0,
        )


# -- report formatting -------------------------------------------------------------


def _fake(scheme, latency):
    r = ExperimentResult(
        scheme=scheme, workload="w", system="s", nbuffers=4, dim=32
    )
    r.latencies = [latency]
    r.breakdown = {c: 0.0 for c in Category}
    r.breakdown[Category.PACK] = latency / 2
    r.breakdown[Category.COMM] = latency / 2
    return r


def test_format_latency_table():
    grid = {
        "A": {32: _fake("A", 1e-4), 64: _fake("A", 2e-4)},
        "B": {32: _fake("B", 2e-4)},
    }
    text = format_latency_table(grid, title="t", baseline="B")
    assert "100.00us" in text
    assert "speedup over B" in text
    assert "--" in text  # missing cell for B/64


def test_format_breakdown_table():
    text = format_breakdown_table([_fake("A", 1e-4)], title="bd")
    assert "pack" in text and "comm" in text
    assert "50.00us" in text


def test_speedup_matrix_and_table():
    grid = {
        "ref": {32: _fake("ref", 4e-4)},
        "fast": {32: _fake("fast", 1e-4)},
    }
    m = speedup_matrix(grid, "ref")
    assert m["fast"][32] == pytest.approx(4.0)
    assert m["ref"][32] == pytest.approx(1.0)
    text = format_speedup_table(grid, "ref", title="sp")
    assert "4.00x" in text
