"""Property-based tests of the matching engine against a reference.

Random interleavings of posted receives and arriving envelopes (with
wildcards) must match exactly like a straightforward oracle that
replays the same sequence with naive list scans — and must preserve
MPI's ordering rules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import DataLayout
from repro.gpu import GPUBuffer
from repro.mpi import ANY_SOURCE, ANY_TAG, MatchingEngine, MessageRecord
from repro.mpi.request import RecvRequest
from repro.sim import Simulator

NBYTES = 16

# An action is ("post", source, tag) or ("arrive", source, tag); tags and
# sources are drawn tiny so collisions (and wildcard hits) are common.
ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["post", "arrive"]),
        st.integers(0, 2),
        st.integers(0, 2),
    ),
    min_size=1,
    max_size=40,
)
WILDCARDS = st.lists(st.booleans(), min_size=40, max_size=40)


class Oracle:
    """Reference matcher: naive lists, first-match-in-order."""

    def __init__(self):
        self.posted = []  # (id, source, tag)
        self.unexpected = []  # (id, source, tag)
        self.pairs = []  # (recv_id, msg_id)
        self._next = iter(range(10_000))

    @staticmethod
    def _ok(rsrc, rtag, msrc, mtag):
        return (rsrc in (ANY_SOURCE, msrc)) and (rtag in (ANY_TAG, mtag))

    def post(self, source, tag):
        rid = next(self._next)
        for i, (mid, msrc, mtag) in enumerate(self.unexpected):
            if self._ok(source, tag, msrc, mtag):
                del self.unexpected[i]
                self.pairs.append((rid, mid))
                return rid
        self.posted.append((rid, source, tag))
        return rid

    def arrive(self, mid, source, tag):
        for i, (rid, rsrc, rtag) in enumerate(self.posted):
            if self._ok(rsrc, rtag, source, tag):
                del self.posted[i]
                self.pairs.append((rid, mid))
                return
        self.unexpected.append((mid, source, tag))


@settings(max_examples=120, deadline=None)
@given(ACTIONS, WILDCARDS, WILDCARDS)
def test_matching_agrees_with_oracle(actions, src_wild, tag_wild):
    sim = Simulator()
    engine = MatchingEngine(0)
    oracle = Oracle()
    req_ids = {}
    msg_seq = iter(range(10_000))
    real_pairs = []

    for k, (kind, source, tag) in enumerate(actions):
        if kind == "post":
            use_src = ANY_SOURCE if src_wild[k] else source
            use_tag = ANY_TAG if tag_wild[k] else tag
            rreq = RecvRequest(
                sim, 0, use_src, use_tag,
                DataLayout.contiguous(NBYTES), GPUBuffer(NBYTES),
            )
            rid = oracle.post(use_src, use_tag)
            req_ids[id(rreq)] = rid
            result = engine.post_receive(rreq)
            if result is not None:
                real_pairs.append(
                    (req_ids[id(result.request)], result.record.seq)
                )
        else:
            mid = next(msg_seq)
            record = MessageRecord(
                seq=mid, source=source, dest=0, tag=tag,
                nbytes=NBYTES, protocol="eager", sim=sim,
            )
            oracle.arrive(mid, source, tag)
            result = engine.deliver_envelope(record)
            if result is not None:
                real_pairs.append(
                    (req_ids[id(result.request)], result.record.seq)
                )

    assert real_pairs == oracle.pairs
    assert engine.posted_count == len(oracle.posted)
    assert engine.unexpected_count == len(oracle.unexpected)
