"""Unit tests for the derived-datatype constructors."""

import numpy as np
import pytest

from repro.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    Contiguous,
    DatatypeError,
    HIndexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    Vector,
)


# -- primitives ----------------------------------------------------------------


def test_primitive_sizes():
    assert BYTE.size == 1 and BYTE.extent == 1
    assert INT.size == 4
    assert FLOAT.size == 4
    assert DOUBLE.size == 8


def test_primitive_flatten_contiguous():
    lay = DOUBLE.flatten()
    assert lay.is_contiguous and lay.size == 8


def test_primitive_equality_via_signature():
    assert DOUBLE == DOUBLE
    assert DOUBLE != FLOAT


# -- contiguous -------------------------------------------------------------------


def test_contiguous_merges_to_one_block():
    t = Contiguous(10, DOUBLE).commit()
    assert t.size == 80 and t.extent == 80
    lay = t.flatten()
    assert lay.num_blocks == 1 and lay.size == 80


def test_contiguous_of_vector():
    inner = Vector(2, 1, 4, DOUBLE)
    t = Contiguous(3, inner).commit()
    assert t.size == 3 * inner.size


def test_contiguous_negative_count_rejected():
    with pytest.raises(DatatypeError):
        Contiguous(-1, DOUBLE)


# -- vector / hvector ------------------------------------------------------------------


def test_vector_layout():
    # 3 blocks of 2 doubles, stride 5 doubles.
    t = Vector(3, 2, 5, DOUBLE).commit()
    lay = t.flatten()
    assert t.size == 48
    assert list(lay.offsets) == [0, 40, 80]
    assert list(lay.lengths) == [16, 16, 16]
    assert t.extent == 96  # (2*5 + 2) * 8


def test_vector_blocklength_equals_stride_coalesces():
    t = Vector(4, 3, 3, FLOAT).commit()
    lay = t.flatten()
    assert lay.num_blocks == 1
    assert lay.size == 48


def test_hvector_byte_stride():
    t = Hvector(3, 1, 100, DOUBLE).commit()
    lay = t.flatten()
    assert list(lay.offsets) == [0, 100, 200]
    assert t.extent == 208


def test_vector_matches_equivalent_hvector():
    v = Vector(4, 2, 6, DOUBLE).commit()
    h = Hvector(4, 2, 48, DOUBLE).commit()
    assert v.flatten() == h.flatten()


def test_vector_zero_count():
    t = Vector(0, 2, 5, DOUBLE).commit()
    assert t.size == 0
    assert t.flatten().num_blocks == 0


# -- indexed family ----------------------------------------------------------------------


def test_indexed_layout():
    t = Indexed([2, 1], [0, 5], DOUBLE).commit()
    lay = t.flatten()
    assert t.size == 24
    assert list(lay.offsets) == [0, 40]
    assert list(lay.lengths) == [16, 8]


def test_indexed_unsorted_displacements_sorted_in_layout():
    t = Indexed([1, 1], [7, 0], INT).commit()
    lay = t.flatten()
    assert list(lay.offsets) == [0, 28]


def test_indexed_zero_length_blocks_skipped():
    t = Indexed([1, 0, 1], [0, 3, 6], INT).commit()
    assert t.flatten().num_blocks == 2


def test_indexed_validation():
    with pytest.raises(DatatypeError):
        Indexed([1, 2], [0], INT)
    with pytest.raises(DatatypeError):
        Indexed([-1], [0], INT)


def test_hindexed_byte_displacements():
    t = HIndexed([2, 2], [0, 100], FLOAT).commit()
    lay = t.flatten()
    assert list(lay.offsets) == [0, 100]
    assert list(lay.lengths) == [8, 8]


def test_indexed_block_shared_length():
    t = IndexedBlock(3, [0, 10, 20], FLOAT).commit()
    lay = t.flatten()
    assert t.size == 36
    assert list(lay.lengths) == [12, 12, 12]


def test_indexed_on_noncontiguous_base():
    base = Vector(2, 1, 3, INT)  # two ints, 3-int stride
    t = Indexed([1, 1], [0, 10], base).commit()
    lay = t.flatten()
    # Each instance contributes two 4-byte blocks.
    assert lay.num_blocks == 4
    assert t.size == 16


# -- struct ------------------------------------------------------------------------------


def test_struct_mixed_members():
    t = Struct([2, 1], [0, 64], [INT, DOUBLE]).commit()
    lay = t.flatten()
    assert t.size == 16
    assert list(lay.offsets) == [0, 64]
    assert list(lay.lengths) == [8, 8]


def test_struct_on_indexed_is_sparse():
    """The specfem3D_cm shape: struct of indexed components."""
    comp = Indexed([1, 1, 1], [0, 1, 2], FLOAT)
    t = Struct([1, 1], [0, 1024], [comp, comp]).commit()
    lay = t.flatten()
    # Each indexed component coalesces (adjacent displacements) to one
    # block; two struct members at different displacements -> 2 blocks.
    assert lay.num_blocks == 2
    assert t.size == 24


def test_struct_validation():
    with pytest.raises(DatatypeError):
        Struct([1], [0, 8], [INT, INT])
    with pytest.raises(DatatypeError):
        Struct([-1], [0], [INT])


# -- subarray -------------------------------------------------------------------------------


def test_subarray_2d_column():
    # 4x4 doubles, taking the last column: 4 blocks of 8 bytes.
    t = Subarray((4, 4), (4, 1), (0, 3), DOUBLE).commit()
    lay = t.flatten()
    assert t.size == 32
    assert lay.num_blocks == 4
    assert list(lay.offsets) == [24, 56, 88, 120]
    assert t.extent == 16 * 8  # whole array, per MPI


def test_subarray_2d_row_contiguous():
    t = Subarray((4, 4), (1, 4), (2, 0), DOUBLE).commit()
    lay = t.flatten()
    assert lay.num_blocks == 1
    assert list(lay.offsets) == [64]


def test_subarray_full_box_is_contiguous():
    t = Subarray((2, 3), (2, 3), (0, 0), DOUBLE).commit()
    assert t.flatten().is_contiguous


def test_subarray_f_order_swaps_contiguity():
    # In F order the FIRST dimension is contiguous.
    c = Subarray((4, 4), (4, 1), (0, 1), DOUBLE, order="C").commit()
    f = Subarray((4, 4), (1, 4), (1, 0), DOUBLE, order="F").commit()
    assert c.flatten() == f.flatten()


def test_subarray_3d_matches_numpy():
    shape, sub, start = (5, 6, 7), (2, 3, 4), (1, 2, 3)
    t = Subarray(shape, sub, start, BYTE).commit()
    arr = np.arange(np.prod(shape), dtype=np.int64).reshape(shape)
    expected = arr[
        start[0] : start[0] + sub[0],
        start[1] : start[1] + sub[1],
        start[2] : start[2] + sub[2],
    ].ravel()
    got = t.flatten().gather_index()
    assert np.array_equal(np.sort(got), np.sort(expected))


def test_subarray_validation():
    with pytest.raises(DatatypeError):
        Subarray((4,), (5,), (0,), DOUBLE)  # sub larger than size
    with pytest.raises(DatatypeError):
        Subarray((4,), (2,), (3,), DOUBLE)  # start+sub out of range
    with pytest.raises(DatatypeError):
        Subarray((4,), (2,), (0,), DOUBLE, order="X")
    with pytest.raises(DatatypeError):
        Subarray((), (), (), DOUBLE)


def test_subarray_zero_subsize():
    t = Subarray((4, 4), (0, 4), (0, 0), DOUBLE).commit()
    assert t.size == 0
    assert t.flatten().num_blocks == 0


# -- resized -----------------------------------------------------------------------------------


def test_resized_changes_replication_stride():
    base = Contiguous(2, DOUBLE)  # 16 bytes, extent 16
    padded = Resized(base, 0, 32).commit()
    lay = padded.flatten().replicate(3)
    assert list(lay.offsets) == [0, 32, 64]
    assert padded.extent == 32


def test_resized_keeps_typemap():
    base = Vector(2, 1, 3, INT)
    r = Resized(base, 0, 64).commit()
    assert np.array_equal(r.flatten().offsets, base.flatten().offsets)


def test_resized_validation():
    with pytest.raises(DatatypeError):
        Resized(INT, 0, -4)


# -- nesting / commit ----------------------------------------------------------------------------


def test_deeply_nested_type():
    t = Vector(2, 1, 4, Contiguous(3, Vector(2, 1, 2, FLOAT)))
    t.commit()
    lay = t.flatten()
    assert lay.size == t.size == 2 * 3 * 2 * 4


def test_commit_idempotent():
    t = Vector(2, 2, 4, DOUBLE)
    assert not t.committed
    t.commit().commit()
    assert t.committed


def test_signatures_distinguish_structure():
    assert Vector(2, 2, 4, DOUBLE).signature() != Vector(2, 2, 5, DOUBLE).signature()
    assert Vector(2, 2, 4, DOUBLE) == Vector(2, 2, 4, DOUBLE)
    assert Indexed([1], [0], INT).signature() != HIndexed([1], [0], INT).signature()


def test_layout_count_replication():
    t = Vector(2, 1, 2, DOUBLE).commit()
    assert t.layout(3).size == 3 * t.size
    with pytest.raises(DatatypeError):
        t.layout(-1)
