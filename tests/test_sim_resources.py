"""Unit tests for Resource / Store / Channel."""

import pytest

from repro.sim import Channel, Resource, SimulationError, Simulator, Store


# -- Resource -----------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2 = res.request(), res.request()
    sim.run()
    assert r1.processed and r2.processed
    assert res.in_use == 2


def test_resource_queues_beyond_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    sim.run()
    assert first.processed and not second.triggered
    assert res.queue_length == 1
    res.release()
    sim.run()
    assert second.processed


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(name, hold):
        yield res.request()
        order.append(("got", name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.0))
    sim.process(worker("c", 1.0))
    sim.run()
    assert [o[1] for o in order] == ["a", "b", "c"]
    assert [o[2] for o in order] == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.0)]


def test_resource_release_idle_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


# -- Store ---------------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    sim.run()
    assert got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer():
        item = yield store.get()
        results.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert results == [("late", pytest.approx(3.0))]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = [store.get() for _ in range(5)]
    sim.run()
    assert [g.value for g in got] == [0, 1, 2, 3, 4]


def test_store_bounded_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    sim.run()
    assert first.processed and not second.triggered
    got = store.get()
    sim.run()
    assert got.value == "a"
    assert second.processed
    assert store.items == ("b",)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("v")
    assert store.try_get() == "v"
    assert store.try_get() is None


def test_store_capacity_validation():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


# -- Channel ----------------------------------------------------------------------


def test_channel_duplex_roundtrip():
    sim = Simulator()
    chan = Channel(sim, name="c")
    a, b = chan.endpoint_a(), chan.endpoint_b()
    log = []

    def ping():
        a.send("ping")
        reply = yield a.recv()
        log.append(reply)

    def pong():
        msg = yield b.recv()
        log.append(msg)
        b.send("pong")

    sim.process(ping())
    sim.process(pong())
    sim.run()
    assert log == ["ping", "pong"]
