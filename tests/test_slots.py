"""Regression guard: the hot per-event/per-request classes stay slotted.

PR 4 removed ``__dict__`` from every object the sweep hot path
allocates; an innocent refactor that drops ``__slots__`` (or adds an
unslotted subclass attribute) silently reverts the memory and
allocation wins.  Instantiating each class and asserting it has no
``__dict__`` catches that — a slotted class whose ancestors are all
slotted produces instances without one.
"""

import pytest

from repro.core.request_list import CircularRequestList, FusionRequest
from repro.datatypes.layout import DataLayout
from repro.gpu.kernels import OpKind
from repro.gpu.memory import GPUBuffer
from repro.gpu.stream import CudaEvent, ExecutionEngine, Stream
from repro.net.link import Link, LinkSpec
from repro.sim.engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.resources import Channel, ChannelEnd, Resource, Store


def _instances():
    sim = Simulator()
    layout = DataLayout([0], [64])
    buf = GPUBuffer(64)
    op = type("Op", (), {})  # stand-in KernelOp payload for the ring
    op.nbytes = 64
    op.kind = OpKind.PACK
    channel = Channel(sim, name="c")
    ring = CircularRequestList(sim, capacity=4)
    request = ring.enqueue(op)

    def gen():
        yield sim.timeout(1.0)

    return [
        sim.event(),
        sim.timeout(1.0),
        sim.process(gen()),
        AllOf(sim, []),
        AnyOf(sim, []),
        Resource(sim),
        Store(sim),
        channel,
        channel.endpoint_a(),
        Link(sim, LinkSpec("l", bandwidth=1e9, latency=1e-6)),
        ExecutionEngine(),
        Stream(sim),
        CudaEvent(sim),
        buf,
        layout,
        ring,
        request,
    ]


@pytest.mark.parametrize(
    "obj", _instances(), ids=lambda o: type(o).__name__
)
def test_hot_class_has_no_dict(obj):
    assert not hasattr(obj, "__dict__"), (
        f"{type(obj).__name__} grew a __dict__ — __slots__ was dropped "
        "somewhere in its hierarchy (see docs/performance.md)"
    )


def test_slotted_classes_reject_adhoc_attributes():
    sim = Simulator()
    with pytest.raises(AttributeError):
        sim.timeout(1.0).no_such_attribute = 1
    with pytest.raises(AttributeError):
        Resource(sim).no_such_attribute = 1


EXPECTED_SLOTTED = [
    Event, Timeout, Process, AllOf, AnyOf,
    Resource, Store, Channel, ChannelEnd,
    Link, ExecutionEngine, Stream, CudaEvent,
    GPUBuffer, DataLayout, CircularRequestList, FusionRequest,
]


@pytest.mark.parametrize("cls", EXPECTED_SLOTTED, ids=lambda c: c.__name__)
def test_class_declares_slots(cls):
    assert "__slots__" in cls.__dict__, f"{cls.__name__} lost its __slots__"
