"""Property-based tests (hypothesis) for the simulation kernel.

DESIGN.md §6 invariants: events fire in non-decreasing time, FIFO for
ties, full determinism given identical process code, and resource/store
conservation under arbitrary interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).callbacks.append(lambda _ev, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=20))
def test_same_time_fifo_by_creation_order(count_groups):
    sim = Simulator()
    order = []
    expected = []
    for group, n in enumerate(count_groups):
        for i in range(n):
            label = (group, i)
            expected.append(label)
            sim.timeout(1.0).callbacks.append(lambda _ev, lab=label: order.append(lab))
    sim.run()
    assert order == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.001, 5.0), st.integers(1, 5)),
        min_size=1,
        max_size=12,
    ),
    st.integers(1, 4),
)
def test_resource_conserves_capacity(jobs, capacity):
    """At no instant do more than `capacity` holders exist; every
    requester is eventually served; service order is FIFO."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = {"n": 0, "peak": 0}
    served = []

    def worker(wid, hold):
        yield res.request()
        active["n"] += 1
        active["peak"] = max(active["peak"], active["n"])
        served.append(wid)
        assert active["n"] <= capacity
        yield sim.timeout(hold)
        active["n"] -= 1
        res.release()

    for wid, (hold, _w) in enumerate(jobs):
        sim.process(worker(wid, hold))
    sim.run()
    assert sorted(served) == list(range(len(jobs)))
    assert active["n"] == 0
    assert active["peak"] <= capacity
    # Grants follow request order (single-process-per-request FIFO).
    assert served == sorted(served)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=40))
def test_store_conserves_items(script):
    """Everything put is eventually got, in order, nothing duplicated."""
    sim = Simulator()
    store = Store(sim)
    puts = []
    gots = []
    counter = {"next": 0}
    n_puts = script.count("put")
    n_gets = min(script.count("get"), n_puts)

    def getter():
        item = yield store.get()
        gots.append(item)

    gets_launched = 0
    for action in script:
        if action == "put":
            item = counter["next"]
            counter["next"] += 1
            puts.append(item)
            store.put(item)
        elif gets_launched < n_gets:
            gets_launched += 1
            sim.process(getter())
    # Launch any remaining getters so every available item is consumed.
    while gets_launched < n_gets:
        gets_launched += 1
        sim.process(getter())
    sim.run()
    assert gots == puts[:n_gets]
    assert len(store) == n_puts - n_gets


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0.01, 10.0), min_size=2, max_size=10),
    st.integers(1, 3),
)
def test_full_determinism(delays, capacity):
    """Two runs of an arbitrary process soup produce identical logs."""

    def world():
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        log = []

        def worker(wid, delay):
            yield sim.timeout(delay)
            yield res.request()
            log.append((wid, round(sim.now, 12)))
            yield sim.timeout(delay / 2)
            res.release()

        for wid, d in enumerate(delays):
            sim.process(worker(wid, d))
        sim.run()
        return log

    assert world() == world()
