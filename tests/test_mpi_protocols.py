"""Protocol-level unit tests: eager / RPUT / RGET timing semantics."""


from repro.datatypes import DOUBLE, Vector
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator, us


def _setup(scheme="GPU-Sync", rendezvous="rput", eager_threshold=None):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    rt = Runtime(
        sim, cluster, SCHEME_REGISTRY[scheme],
        rendezvous_protocol=rendezvous, eager_threshold=eager_threshold,
    )
    return sim, rt


BIG = Vector(4096, 1, 3, DOUBLE)  # 32 KB -> rendezvous
SMALL = Vector(64, 1, 3, DOUBLE)  # 512 B -> eager


def _one_way(sim, rt, dt, send_delay=0.0, recv_delay=0.0):
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=7)
    rbuf = r1.device.alloc(hi)
    times = {}

    def sender():
        if send_delay:
            yield sim.timeout(send_delay)
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=0)
        times["sreq"] = req
        yield from r0.waitall([req])
        times["send_done"] = sim.now

    def receiver():
        if recv_delay:
            yield sim.timeout(recv_delay)
        req = r1.irecv(rbuf, dt, 1, source=0, tag=0)
        times["rreq"] = req
        yield from r1.waitall([req])
        times["recv_done"] = sim.now

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    assert (rbuf.data[lay.gather_index()] == 7).all()
    return times


def test_rput_cts_waits_for_match():
    """RPUT: with a late receiver, the payload cannot hit the wire
    before the receiver matches and CTSes — the sender stays pending
    for (at least) the receiver's delay."""
    sim, rt = _setup()
    delay = us(500)
    times = _one_way(sim, rt, Vector(4096, 1, 3, DOUBLE).commit(), recv_delay=delay)
    assert times["send_done"] >= delay


def test_eager_sender_completes_without_receiver():
    """Eager: the sender finishes as soon as the payload leaves,
    even if the receive is posted much later (unexpected queue)."""
    sim, rt = _setup()
    delay = us(500)
    times = _one_way(sim, rt, Vector(64, 1, 3, DOUBLE).commit(), recv_delay=delay)
    assert times["send_done"] < delay


def test_rget_sender_completes_on_fin():
    """RGET: the sender cannot retire before the receiver's pull
    completes (FIN round trip after the RDMA-READ)."""
    sim, rt = _setup(rendezvous="rget")
    dt = Vector(4096, 1, 3, DOUBLE).commit()
    times = _one_way(sim, rt, dt)
    assert times["sreq"].protocol == "rget"
    # Sender and receiver complete within a control latency of each
    # other (both gated on the same pull).
    assert abs(times["send_done"] - times["recv_done"]) < us(200)


def test_rput_overlaps_handshake_with_packing():
    """The §IV-B1 overlap: for equal conditions, RPUT's first-byte
    time is no later than RGET's, because the RTS/CTS handshake runs
    while the pack kernel executes."""
    lat = {}
    for proto in ("rput", "rget"):
        sim, rt = _setup(scheme="Proposed", rendezvous=proto)
        times = _one_way(sim, rt, Vector(8192, 1, 3, DOUBLE).commit())
        lat[proto] = times["recv_done"]
    assert lat["rput"] <= lat["rget"] + 1e-12


def test_eager_threshold_boundary():
    """Messages exactly at the threshold go eager; one byte over goes
    rendezvous."""
    sim, rt = _setup()
    at = rt.eager_threshold
    dt_at = Vector(at // 8, 1, 2, DOUBLE).commit()  # exactly threshold bytes
    times = _one_way(sim, rt, dt_at)
    assert times["sreq"].protocol == "eager"

    sim2, rt2 = _setup()
    dt_over = Vector(at // 8 + 1, 1, 2, DOUBLE).commit()
    times2 = _one_way(sim2, rt2, dt_over)
    assert times2["sreq"].protocol == "rput"


def test_send_staging_returned_to_pool():
    sim, rt = _setup()
    pool = rt.rank(0).staging_pool
    _one_way(sim, rt, Vector(4096, 1, 3, DOUBLE).commit())
    # The send staging buffer went back to the pool, not leaked.
    assert pool.cached_bytes >= BIG.size
    assert pool.misses == 1


def test_recv_staging_returned_to_pool():
    sim, rt = _setup()
    pool = rt.rank(1).staging_pool
    _one_way(sim, rt, Vector(4096, 1, 3, DOUBLE).commit())
    assert pool.cached_bytes >= BIG.size


def test_staging_pool_reused_across_messages():
    """The second message of the same size is a pool hit — no new
    allocation (the per-message cudaMalloc real runtimes avoid)."""
    sim, rt = _setup()
    dt = Vector(4096, 1, 3, DOUBLE).commit()
    _one_way(sim, rt, dt)
    pool0 = rt.rank(0).staging_pool
    allocs_before = rt.rank(0).device.memory.allocation_count
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=3)
    rbuf = r1.device.alloc(hi)

    def sender():
        yield from r0.send(sbuf, dt, 1, dest=1, tag=77)

    def receiver():
        yield from r1.recv(rbuf, dt, 1, source=0, tag=77)

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    assert pool0.hits >= 1
    # Only the two user buffers were newly allocated.
    assert rt.rank(0).device.memory.allocation_count == allocs_before + 1


def test_wire_serialization_under_bulk():
    """Multiple rendezvous payloads share one link: total time is at
    least the serialized wire time of all payloads."""
    sim, rt = _setup()
    dt = Vector(65536, 1, 2, DOUBLE).commit()  # 512 KB each
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    n = 4
    sbufs = [r0.device.alloc(hi) for _ in range(n)]
    rbufs = [r1.device.alloc(hi) for _ in range(n)]

    def sender():
        reqs = []
        for i, b in enumerate(sbufs):
            req = yield from r0.isend(b, dt, 1, dest=1, tag=i)
            reqs.append(req)
        yield from r0.waitall(reqs)

    def receiver():
        reqs = [r1.irecv(b, dt, 1, source=0, tag=i) for i, b in enumerate(rbufs)]
        yield from r1.waitall(reqs)

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    wire_floor = n * lay.size / LASSEN.internode.bandwidth
    assert sim.now >= wire_floor
