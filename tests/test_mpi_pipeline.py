"""Tests for the host-staged pipeline rendezvous protocol."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import PIPELINE, RPUT, Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator

BIG = Vector(64 * 1024, 1, 2, DOUBLE)  # 512 KB payload


def _one_way(system=LASSEN, dt=None, **rt_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, system, nodes=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"], **rt_kwargs)
    dt = dt if dt is not None else Vector(64 * 1024, 1, 2, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi)
    sbuf.data[:] = np.random.default_rng(0).integers(0, 256, hi)
    rbuf = r1.device.alloc(hi)
    out = {}

    def sender():
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=0)
        out["protocol"] = req.protocol
        yield from r0.waitall([req])

    def receiver():
        req = r1.irecv(rbuf, dt, 1, source=0, tag=0)
        yield from r1.waitall([req])

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    idx = lay.gather_index()
    assert np.array_equal(rbuf.data[idx], sbuf.data[idx])
    return sim.now, out["protocol"]


def test_pipeline_selected_above_threshold():
    _t, proto = _one_way(host_staging_threshold=128 * 1024)
    assert proto == PIPELINE


def test_pipeline_not_selected_below_threshold():
    _t, proto = _one_way(host_staging_threshold=1 << 20)
    assert proto == RPUT


def test_pipeline_disabled_by_default():
    _t, proto = _one_way()
    assert proto == RPUT


def test_pipeline_delivers_bytes_exactly():
    _one_way(host_staging_threshold=1)  # assertion inside helper


def test_chunking_overlaps_stages():
    """Pipelined chunks beat one monolithic staged transfer."""
    t_mono, _ = _one_way(
        host_staging_threshold=1, pipeline_chunk_bytes=1 << 30
    )
    t_piped, _ = _one_way(
        host_staging_threshold=1, pipeline_chunk_bytes=128 * 1024
    )
    assert t_piped < t_mono


def test_tiny_chunks_pay_latency():
    """Far too many chunks cost more than a sensible chunk size."""
    t_sane, _ = _one_way(host_staging_threshold=1, pipeline_chunk_bytes=128 * 1024)
    t_tiny, _ = _one_way(host_staging_threshold=1, pipeline_chunk_bytes=4 * 1024)
    assert t_tiny > t_sane


def test_pipeline_slower_than_gpudirect_on_lassen():
    """On NVLink-attached Lassen, GPUDirect RPUT beats host staging —
    which is exactly why the pipeline is opt-in."""
    t_rput, _ = _one_way()
    t_pipe, _ = _one_way(host_staging_threshold=1)
    assert t_rput < t_pipe


def test_pipeline_chunk_validation():
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    with pytest.raises(ValueError):
        Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"], pipeline_chunk_bytes=0)
