"""Unit tests for links, topology, systems, and transfers."""

import pytest

from repro.net import (
    ABCI,
    LASSEN,
    SYSTEMS,
    Cluster,
    Link,
    LinkSpec,
    rdma_read,
    rdma_write,
    staged_host_copy,
)
from repro.sim import Simulator, us

GB = 1e9


# -- LinkSpec / Link ------------------------------------------------------------


def test_transfer_time_formula():
    spec = LinkSpec("test", bandwidth=10 * GB, latency=us(2))
    assert spec.transfer_time(0) == pytest.approx(us(2))
    assert spec.transfer_time(10_000_000) == pytest.approx(us(2) + 1e-3)
    with pytest.raises(ValueError):
        spec.transfer_time(-1)


def test_link_serializes_same_direction():
    sim = Simulator()
    link = Link(sim, LinkSpec("l", bandwidth=1 * GB, latency=0.0))
    times = []

    def xfer():
        t = yield from link.transmit(1_000_000, "fwd")  # 1 ms each
        times.append((sim.now, t))

    sim.process(xfer())
    sim.process(xfer())
    sim.run()
    assert times[0][0] == pytest.approx(1e-3)
    assert times[1][0] == pytest.approx(2e-3)
    assert times[1][1] == pytest.approx(2e-3)  # includes queueing
    assert link.bytes_carried == 2_000_000
    assert link.transfer_count == 2


def test_link_duplex_directions_independent():
    sim = Simulator()
    link = Link(sim, LinkSpec("l", bandwidth=1 * GB, latency=0.0))
    done = []

    def xfer(direction):
        yield from link.transmit(1_000_000, direction)
        done.append(sim.now)

    sim.process(xfer("fwd"))
    sim.process(xfer("rev"))
    sim.run()
    assert done == [pytest.approx(1e-3), pytest.approx(1e-3)]


# -- systems (Table II) ------------------------------------------------------------


def test_table2_lassen_numbers():
    assert LASSEN.cpu_gpu.bandwidth == pytest.approx(75 * GB)
    assert LASSEN.gpu_gpu.bandwidth == pytest.approx(75 * GB)
    assert LASSEN.gpus_per_node == 4
    assert LASSEN.gpu_arch.name == "Tesla V100"
    assert LASSEN.has_gdrcopy


def test_table2_abci_numbers():
    assert ABCI.cpu_gpu.bandwidth == pytest.approx(32 * GB)
    assert ABCI.gpu_gpu.bandwidth == pytest.approx(50 * GB)
    assert ABCI.gpus_per_node == 4
    # ABCI's PCIe attachment inflates driver costs vs Lassen.
    assert (
        ABCI.gpu_arch.kernel_launch_overhead
        > LASSEN.gpu_arch.kernel_launch_overhead
    )


def test_systems_registry_and_describe():
    assert set(SYSTEMS) == {"Lassen", "ABCI"}
    assert "Lassen" in LASSEN.describe()


# -- cluster topology ----------------------------------------------------------------


def test_cluster_rank_placement():
    sim = Simulator()
    c = Cluster(sim, LASSEN, nodes=2, ranks_per_node=2)
    assert c.size == 4
    assert c.site(0).node == 0 and c.site(3).node == 1
    assert c.same_node(0, 1) and not c.same_node(1, 2)
    assert c.device(0) is not c.device(1)


def test_cluster_link_selection():
    sim = Simulator()
    c = Cluster(sim, LASSEN, nodes=2, ranks_per_node=2)
    intra, _ = c.data_link(0, 1)
    inter, _ = c.data_link(0, 2)
    assert intra.spec.bandwidth == LASSEN.gpu_gpu.bandwidth
    assert inter.spec.bandwidth == LASSEN.internode.bandwidth
    # Same node pair shares a fabric link object.
    again, _ = c.data_link(1, 3)
    assert again is inter


def test_cluster_self_link_rejected():
    c = Cluster(Simulator(), LASSEN)
    with pytest.raises(ValueError):
        c.data_link(0, 0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(Simulator(), LASSEN, nodes=0)
    with pytest.raises(ValueError):
        Cluster(Simulator(), LASSEN, ranks_per_node=5)  # only 4 GPUs


# -- transfers ----------------------------------------------------------------------------


def test_rdma_write_time():
    sim = Simulator()
    c = Cluster(sim, LASSEN, nodes=2)
    out = []

    def proc():
        t = yield from rdma_write(c, 0, 1, 1 << 20)
        out.append(t)

    sim.run(sim.process(proc()))
    expected = LASSEN.net_post_overhead + LASSEN.internode.transfer_time(1 << 20)
    assert out[0] == pytest.approx(expected)


def test_rdma_read_pays_request_latency():
    sim = Simulator()
    c = Cluster(sim, LASSEN, nodes=2)
    out = {}

    def reader():
        out["read"] = yield from rdma_read(c, 0, 1, 1 << 20)

    def writer():
        out["write"] = yield from rdma_write(c, 0, 1, 1 << 20)

    sim.run(sim.process(reader()))
    sim2 = Simulator()
    c2 = Cluster(sim2, LASSEN, nodes=2)

    def writer2():
        out["write"] = yield from rdma_write(c2, 0, 1, 1 << 20)

    sim2.run(sim2.process(writer2()))
    assert out["read"] > out["write"]


def test_staged_host_copy_uses_cpu_gpu_link():
    sim = Simulator()
    c = Cluster(sim, ABCI, nodes=1)
    out = []

    def proc():
        t = yield from staged_host_copy(c, 0, 32 << 20, to_host=True)
        out.append(t)

    sim.run(sim.process(proc()))
    assert out[0] == pytest.approx(ABCI.cpu_gpu.transfer_time(32 << 20))
