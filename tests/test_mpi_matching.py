"""Unit tests for MPI message matching."""

import pytest

from repro.datatypes import DataLayout
from repro.gpu import GPUBuffer
from repro.mpi import ANY_SOURCE, ANY_TAG, MatchingEngine, MessageRecord
from repro.mpi.request import RecvRequest
from repro.sim import Simulator


def _rreq(sim, source=0, tag=0, nbytes=64):
    return RecvRequest(
        sim, 1, source, tag, DataLayout.contiguous(nbytes), GPUBuffer(nbytes)
    )


def _record(sim, seq=0, source=0, tag=0, nbytes=64):
    return MessageRecord(
        seq=seq, source=source, dest=1, tag=tag, nbytes=nbytes,
        protocol="eager", sim=sim,
    )


def test_posted_receive_matches_envelope():
    sim = Simulator()
    eng = MatchingEngine(1)
    rreq = _rreq(sim)
    assert eng.post_receive(rreq) is None
    result = eng.deliver_envelope(_record(sim))
    assert result is not None and result.expected
    assert result.request is rreq
    assert eng.posted_count == 0


def test_unexpected_message_queued_then_matched():
    sim = Simulator()
    eng = MatchingEngine(1)
    rec = _record(sim)
    assert eng.deliver_envelope(rec) is None
    assert eng.unexpected_count == 1
    result = eng.post_receive(_rreq(sim))
    assert result is not None and not result.expected
    assert result.record is rec
    assert eng.unexpected_count == 0


def test_tag_mismatch_does_not_match():
    sim = Simulator()
    eng = MatchingEngine(1)
    eng.post_receive(_rreq(sim, tag=5))
    assert eng.deliver_envelope(_record(sim, tag=7)) is None
    assert eng.posted_count == 1 and eng.unexpected_count == 1


def test_source_mismatch_does_not_match():
    sim = Simulator()
    eng = MatchingEngine(1)
    eng.post_receive(_rreq(sim, source=3))
    assert eng.deliver_envelope(_record(sim, source=2)) is None


def test_wildcard_source_and_tag():
    sim = Simulator()
    eng = MatchingEngine(1)
    eng.post_receive(_rreq(sim, source=ANY_SOURCE, tag=ANY_TAG))
    assert eng.deliver_envelope(_record(sim, source=7, tag=42)) is not None


def test_fifo_matching_order():
    """Oldest posted receive wins (non-overtaking)."""
    sim = Simulator()
    eng = MatchingEngine(1)
    r1, r2 = _rreq(sim), _rreq(sim)
    eng.post_receive(r1)
    eng.post_receive(r2)
    assert eng.deliver_envelope(_record(sim, seq=0)).request is r1
    assert eng.deliver_envelope(_record(sim, seq=1)).request is r2


def test_fifo_unexpected_order():
    sim = Simulator()
    eng = MatchingEngine(1)
    a, b = _record(sim, seq=0), _record(sim, seq=1)
    eng.deliver_envelope(a)
    eng.deliver_envelope(b)
    assert eng.post_receive(_rreq(sim)).record is a
    assert eng.post_receive(_rreq(sim)).record is b


def test_truncation_rejected():
    sim = Simulator()
    eng = MatchingEngine(1)
    eng.post_receive(_rreq(sim, nbytes=32))
    with pytest.raises(ValueError, match="truncated"):
        eng.deliver_envelope(_record(sim, nbytes=64))


def test_unexpected_peak_tracked():
    sim = Simulator()
    eng = MatchingEngine(1)
    for i in range(5):
        eng.deliver_envelope(_record(sim, seq=i, tag=i))
    assert eng.unexpected_peak == 5


def test_match_log_records_history():
    sim = Simulator()
    eng = MatchingEngine(1)
    eng.post_receive(_rreq(sim))
    eng.deliver_envelope(_record(sim))
    assert len(eng.match_log) == 1
