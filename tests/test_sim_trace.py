"""Unit tests for the time-breakdown trace."""

import pytest

from repro.sim import Category, Span, Trace


def test_span_duration_and_validation():
    s = Span(Category.PACK, 1.0, 3.0)
    assert s.duration == pytest.approx(2.0)
    with pytest.raises(ValueError):
        Span(Category.PACK, 3.0, 1.0)


def test_charge_and_totals():
    t = Trace()
    t.charge(Category.PACK, 0.0, 1.0)
    t.charge(Category.COMM, 1.0, 4.0)
    t.charge(Category.PACK, 5.0, 6.0)
    assert t.total() == pytest.approx(5.0)
    assert t.total(Category.PACK) == pytest.approx(2.0)
    assert t.total(Category.COMM) == pytest.approx(3.0)
    assert t.total(Category.SYNC) == 0.0


def test_charge_duration_anchors_at_now():
    t = Trace()
    t.charge_duration(Category.LAUNCH, now=10.0, duration=2.0)
    assert t.spans[0].start == pytest.approx(8.0)
    assert t.spans[0].end == pytest.approx(10.0)


def test_breakdown_includes_all_categories():
    t = Trace()
    t.charge(Category.SCHED, 0.0, 1.0)
    bd = t.breakdown()
    assert set(bd) == set(Category)
    assert bd[Category.SCHED] == pytest.approx(1.0)
    assert bd[Category.PACK] == 0.0


def test_count_and_iter():
    t = Trace()
    t.charge(Category.SYNC, 0.0, 1.0, label="a")
    t.charge(Category.SYNC, 1.0, 2.0, label="b")
    t.charge(Category.PACK, 2.0, 3.0)
    assert t.count() == 3
    assert t.count(Category.SYNC) == 2
    assert [s.label for s in t.iter_category(Category.SYNC)] == ["a", "b"]


def test_disabled_trace_ignores_charges():
    t = Trace(enabled=False)
    t.charge(Category.PACK, 0.0, 1.0)
    assert t.count() == 0


def test_merge_and_clear():
    a, b = Trace(), Trace()
    a.charge(Category.PACK, 0.0, 1.0)
    b.charge(Category.COMM, 0.0, 2.0)
    a.merge([b])
    assert a.total() == pytest.approx(3.0)
    a.clear()
    assert a.count() == 0


def test_scaled():
    t = Trace()
    t.charge(Category.PACK, 0.0, 4.0)
    assert t.scaled(0.25)[Category.PACK] == pytest.approx(1.0)
