"""The wall-clock microbench suite and its regression comparator."""

import copy

import pytest

from repro.bench import wallclock
from repro.cli import main
from repro.obs.artifact import SCHEMA, load_bench_artifact


def _tiny_artifact():
    # Engine-only, minimal event counts: fast enough for unit tests.
    return wallclock.wallclock_artifact(scale=0.01, figures=())


def test_engine_benchmarks_report_throughput():
    suite = wallclock.bench_engine(scale=0.01)
    assert set(suite) == {"timeout_chain", "store_pingpong", "allof_fanin"}
    for name, m in suite.items():
        assert m["events"] > 0, name
        assert m["wall_seconds"] > 0, name
        assert m["events_per_second"] > 0, name


def test_timeout_chain_counts_all_events():
    m = wallclock.bench_timeout_chain(n=1_000)
    # n timeouts + the process bootstrap + process-completion events.
    assert m["events"] >= 1_000


def test_allocations_measured():
    m = wallclock.bench_allocations(n=1_000)
    assert m["events"] >= 1_000
    assert m["peak_bytes"] >= 0
    assert m["peak_bytes_per_event"] == pytest.approx(
        m["peak_bytes"] / m["events"]
    )


def test_artifact_schema_and_sections():
    artifact = _tiny_artifact()
    assert artifact["schema"] == SCHEMA
    assert artifact["experiment"] == wallclock.EXPERIMENT
    assert set(artifact["data"]) == {"engine", "figures", "allocations"}
    assert artifact["meta"]["fastpath"] in (True, False)


def test_compare_identical_artifacts_pass():
    artifact = _tiny_artifact()
    assert wallclock.compare_wallclock(artifact, artifact) == []


def test_compare_detects_throughput_regression():
    baseline = _tiny_artifact()
    slow = copy.deepcopy(baseline)
    for m in slow["data"]["engine"].values():
        m["events_per_second"] *= 0.5  # 2x slowdown >> 30% tolerance
    problems = wallclock.compare_wallclock(baseline, slow, tolerance=0.30)
    assert len(problems) == len(baseline["data"]["engine"])
    assert all("events/s" in p for p in problems)
    # The same drop is fine under a huge tolerance.
    assert wallclock.compare_wallclock(baseline, slow, tolerance=0.60) == []


def test_compare_detects_figure_wall_regression():
    baseline = _tiny_artifact()
    baseline["data"]["figures"] = {"fig09": {"wall_seconds": 1.0, "shards": 20.0}}
    slow = copy.deepcopy(baseline)
    slow["data"]["figures"]["fig09"]["wall_seconds"] = 2.0
    problems = wallclock.compare_wallclock(baseline, slow)
    assert len(problems) == 1 and "fig09" in problems[0]
    # Getting faster is never a failure.
    assert wallclock.compare_wallclock(slow, baseline) == []


def test_compare_skips_sections_missing_from_candidate():
    baseline = _tiny_artifact()
    baseline["data"]["figures"] = {"fig13": {"wall_seconds": 5.0, "shards": 40.0}}
    candidate = _tiny_artifact()  # no figure timings at all
    assert wallclock.compare_wallclock(baseline, candidate) == []


# -- CLI ----------------------------------------------------------------------


def test_cli_wallclock_writes_and_checks(tmp_path, capsys):
    out = tmp_path / "BENCH_wallclock.json"
    assert main([
        "wallclock", "--scale", "0.01", "--no-figures", "--out", str(out)
    ]) == 0
    artifact = load_bench_artifact(str(out))
    assert artifact["experiment"] == "wallclock"
    # Self-check against the artifact just written must pass.
    assert main([
        "wallclock", "--scale", "0.01", "--no-figures",
        "--baseline", str(out), "--check",
    ]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_wallclock_check_fails_on_regression(tmp_path, capsys):
    out = tmp_path / "BENCH_wallclock.json"
    assert main([
        "wallclock", "--scale", "0.01", "--no-figures", "--out", str(out)
    ]) == 0
    # Inflate the baseline to impossible throughput: the fresh run must
    # miss the floor and the gate must fail.
    artifact = load_bench_artifact(str(out))
    for m in artifact["data"]["engine"].values():
        m["events_per_second"] *= 1e6
    import json

    out.write_text(json.dumps(artifact))
    assert main([
        "wallclock", "--scale", "0.01", "--no-figures",
        "--baseline", str(out), "--check",
    ]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_profile_smoke(capsys):
    assert main([
        "profile", "--workload", "specfem3D_cm", "--dim", "200",
        "--nbuffers", "2", "--iterations", "1", "--top", "5",
    ]) == 0
    assert "function calls" in capsys.readouterr().out
