"""Unit tests for cooperative-group partitioning of fused kernels."""

import numpy as np
import pytest

from repro.datatypes import DataLayout
from repro.gpu import GPUDevice, TESLA_V100, kernel_compute_time, partition
from repro.sim import Simulator


def _ops(n, nbytes=4096, blocks=64):
    dev = GPUDevice(Simulator(), TESLA_V100)
    lay = DataLayout(
        np.arange(blocks, dtype=np.int64) * (2 * nbytes // blocks),
        np.full(blocks, nbytes // blocks, dtype=np.int64),
    )
    src = dev.alloc(lay.span + 64)
    return [dev.pack_op(src, lay, dev.alloc(lay.size)) for _ in range(n)]


def test_partition_empty_rejected():
    with pytest.raises(ValueError):
        partition(TESLA_V100, [])
    with pytest.raises(ValueError):
        partition(TESLA_V100, _ops(1), grid_blocks=0)


def test_partition_single_request():
    ops = _ops(1)
    plan = partition(TESLA_V100, ops)
    assert len(plan.requests) == 1
    assert plan.total_duration == plan.requests[0].completion_offset


def test_total_is_max_over_groups():
    plan = partition(TESLA_V100, _ops(8))
    assert plan.total_duration == pytest.approx(
        max(r.completion_offset for r in plan.requests)
    )


def test_shares_proportional_to_bytes():
    dev = GPUDevice(Simulator(), TESLA_V100)
    small_lay = DataLayout([0], [1024])
    big_lay = DataLayout([0], [64 * 1024])
    src = dev.alloc(128 * 1024)
    small = dev.pack_op(src, small_lay, dev.alloc(1024))
    big = dev.pack_op(src, big_lay, dev.alloc(64 * 1024))
    plan = partition(TESLA_V100, [small, big])
    shares = {id(r.op): r.block_share for r in plan.requests}
    assert shares[id(big)] > shares[id(small)]


def test_fused_time_beats_serial_execution():
    """The paper's core claim: one fused kernel over N small requests
    finishes far sooner than N back-to-back kernels plus N launches."""
    ops = _ops(16)
    plan = partition(TESLA_V100, ops)
    serial = sum(op.duration for op in ops) + 16 * TESLA_V100.kernel_launch_overhead
    fused = plan.total_duration + TESLA_V100.kernel_launch_overhead
    assert fused < serial / 2


def test_fused_time_close_to_single_kernel_for_small_batches():
    """§IV-A3: 'the fused kernel's execution time can be the same as
    the typical packing/unpacking kernel' when requests are small."""
    ops = _ops(4, nbytes=2048, blocks=16)
    plan = partition(TESLA_V100, ops)
    single = ops[0].duration
    assert plan.total_duration < 4 * single


def test_many_tiny_requests_fractional_shares():
    # 320 tiny requests over a 160-block grid: shares drop below 1.
    ops = _ops(320, nbytes=256, blocks=2)
    plan = partition(TESLA_V100, ops, grid_blocks=160)
    assert any(r.block_share < 1.0 for r in plan.requests)
    assert plan.grid_blocks == 160


def test_plan_total_bytes():
    ops = _ops(5, nbytes=4096)
    plan = partition(TESLA_V100, ops)
    assert plan.total_bytes == sum(op.nbytes for op in ops)


def test_grid_defaults_to_saturation():
    plan = partition(TESLA_V100, _ops(2))
    assert plan.grid_blocks == TESLA_V100.saturation_blocks


def test_per_request_offset_at_least_solo_time_under_share():
    ops = _ops(3)
    plan = partition(TESLA_V100, ops)
    for req in plan.requests:
        lower = kernel_compute_time(
            TESLA_V100,
            req.op.nbytes,
            req.op.num_blocks,
            req.op.mean_block,
        )
        # A share-capped request can never beat its uncapped solo time.
        assert req.completion_offset >= lower - 1e-12
