"""Tests for persistent requests (MPI_Send_init / Start / Startall)."""

import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import PersistentKind, Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator


def _setup(scheme="Proposed"):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[scheme])
    dt = Vector(32, 2, 5, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    return sim, rt, dt, lay, hi


def test_init_is_inactive():
    sim, rt, dt, lay, hi = _setup()
    r0 = rt.rank(0)
    buf = r0.device.alloc(hi)
    preq = r0.send_init(buf, dt, 1, dest=1, tag=0)
    assert preq.kind is PersistentKind.SEND
    assert preq.active is None and preq.done
    with pytest.raises(RuntimeError):
        _ = preq.completion


def test_persistent_halo_loop_reuses_pattern():
    """The canonical use: init once, start+wait every iteration, data
    correct each time even as the buffer contents change."""
    sim, rt, dt, lay, hi = _setup()
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi)
    rbuf = r1.device.alloc(hi)
    iters = 5
    idx = lay.gather_index()
    seen = []

    def sender():
        preq = r0.send_init(sbuf, dt, 1, dest=1, tag=0)
        for it in range(iters):
            sbuf.data[:] = (it + 1) % 251
            yield from r0.start(preq)
            yield from r0.waitall([preq])
        assert preq.starts == iters

    def receiver():
        preq = r1.recv_init(rbuf, dt, 1, source=0, tag=0)
        for it in range(iters):
            yield from r1.start(preq)
            yield from r1.waitall([preq])
            seen.append(rbuf.data[idx].copy())

    p0, p1 = sim.process(sender()), sim.process(receiver())
    sim.run(sim.all_of([p0, p1]))
    for it, got in enumerate(seen):
        assert (got == (it + 1) % 251).all()


def test_startall_orders_receives_before_sends():
    sim, rt, dt, lay, hi = _setup("GPU-Sync")
    r0, r1 = rt.rank(0), rt.rank(1)
    bufs = {r: (rt.rank(r).device.alloc(hi, fill=r + 1), rt.rank(r).device.alloc(hi))
            for r in (0, 1)}

    def prog(me, peer):
        rank = rt.rank(me)
        preqs = [
            rank.send_init(bufs[me][0], dt, 1, peer, tag=0),
            rank.recv_init(bufs[me][1], dt, 1, peer, tag=0),
        ]
        for _ in range(3):
            yield from rank.startall(preqs)
            yield from rank.waitall(preqs)

    p0, p1 = sim.process(prog(0, 1)), sim.process(prog(1, 0))
    sim.run(sim.all_of([p0, p1]))
    idx = lay.gather_index()
    assert (bufs[0][1].data[idx] == 2).all()
    assert (bufs[1][1].data[idx] == 1).all()


def test_double_start_rejected():
    sim, rt, dt, lay, hi = _setup("GPU-Sync")
    r0 = rt.rank(0)
    buf = r0.device.alloc(hi)
    preq = r0.send_init(buf, dt, 1, dest=1, tag=0)

    def prog():
        yield from r0.start(preq)
        yield from r0.start(preq)  # still active -> error

    p = sim.process(prog())
    with pytest.raises(RuntimeError, match="MPI_Start"):
        sim.run(p)


def test_persistent_fusion_batches_each_start():
    """Each startall re-enters the fusion scheduler as a fresh batch."""
    sim, rt, dt, lay, hi = _setup("Proposed")
    r0, r1 = rt.rank(0), rt.rank(1)
    n = 6
    sbufs = [r0.device.alloc(hi, fill=1) for _ in range(n)]
    rbufs = [r1.device.alloc(hi) for _ in range(n)]

    def prog_send():
        preqs = [r0.send_init(b, dt, 1, 1, tag=i) for i, b in enumerate(sbufs)]
        for _ in range(2):
            yield from r0.startall(preqs)
            yield from r0.waitall(preqs)

    def prog_recv():
        preqs = [r1.recv_init(b, dt, 1, 0, tag=i) for i, b in enumerate(rbufs)]
        for _ in range(2):
            yield from r1.startall(preqs)
            yield from r1.waitall(preqs)

    p0, p1 = sim.process(prog_send()), sim.process(prog_recv())
    sim.run(sim.all_of([p0, p1]))
    stats = r0.scheme.scheduler.stats
    assert stats.enqueued == 2 * n  # both rounds fused
    assert stats.launches < stats.enqueued
