"""Tests for the Cartesian topology and multi-rank halo exchange."""

import numpy as np
import pytest

from repro.mpi import CartComm, PROC_NULL, Runtime, neighbor_alltoall
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator


# -- coordinate arithmetic -------------------------------------------------------


def test_coords_roundtrip():
    cart = CartComm((2, 3, 4))
    assert cart.size == 24
    for rank in range(cart.size):
        assert cart.rank_of(cart.coords(rank)) == rank


def test_row_major_order():
    cart = CartComm((2, 3))
    assert cart.coords(0) == (0, 0)
    assert cart.coords(1) == (0, 1)
    assert cart.coords(3) == (1, 0)


def test_nonperiodic_edges_are_proc_null():
    cart = CartComm((2, 2))
    assert cart.rank_of((-1, 0)) == PROC_NULL
    assert cart.rank_of((0, 2)) == PROC_NULL
    src, dst = cart.shift(0, 0)
    assert src == PROC_NULL  # nothing above the top row
    assert dst == cart.rank_of((1, 0))


def test_periodic_wraparound():
    cart = CartComm((3,), periods=[True])
    src, dst = cart.shift(0, 0)
    assert src == 2 and dst == 1
    assert cart.neighbor(2, (1,)) == 0


def test_validation():
    with pytest.raises(ValueError):
        CartComm(())
    with pytest.raises(ValueError):
        CartComm((2, 0))
    with pytest.raises(ValueError):
        CartComm((2,), periods=[True, False])
    cart = CartComm((2, 2))
    with pytest.raises(ValueError):
        cart.coords(4)
    with pytest.raises(ValueError):
        cart.shift(0, 5)
    with pytest.raises(ValueError):
        cart.rank_of((0,))


def test_exchange_keys_are_symmetric():
    """My send key toward d equals the peer's recv key for the data
    arriving from me — checked structurally on an interior rank pair."""
    cart = CartComm((3, 3), periods=[True, True])
    _sched, mine = cart.neighbor_exchanges(4, (4, 4))  # center rank
    for peer, _s, _r, send_key, _recv_key in mine:
        _psched, theirs = cart.neighbor_exchanges(peer, (4, 4))
        # The peer has an entry receiving from me with recv_key == my send_key.
        recv_keys = {e[4] for e in theirs if e[0] == 4}
        assert send_key in recv_keys


# -- end-to-end multi-rank halo -----------------------------------------------------


def _global_field(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, shape).astype(np.uint8)


@pytest.mark.parametrize("periods", [False, True])
def test_2x2_halo_exchange_matches_global_field(periods):
    """Four ranks tile a 2-D field; after the exchange every rank's
    ghost cells equal the *global* field's neighboring cells."""
    cart = CartComm((2, 2), periods=[periods, periods])
    interior = (6, 6)
    n = 8  # local array side with ghost=1
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2, ranks_per_node=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["Proposed"])

    # Build a global 12x12 field and scatter interiors to ranks.
    G = _global_field((12, 12), seed=9)
    arrays = {}
    for r in range(4):
        ci, cj = cart.coords(r)
        buf = rt.rank(r).device.alloc(n * n * 8)
        view = buf.view(np.float64).reshape(n, n)
        view[1:-1, 1:-1] = G[ci * 6:(ci + 1) * 6, cj * 6:(cj + 1) * 6]
        arrays[r] = (buf, view)

    def prog(r):
        _sched, exchanges = cart.neighbor_exchanges(r, interior)
        yield from neighbor_alltoall(rt.rank(r), arrays[r][0], exchanges)

    procs = [sim.process(prog(r)) for r in range(4)]
    sim.run(sim.all_of(procs))

    for r in range(4):
        ci, cj = cart.coords(r)
        view = arrays[r][1]
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                if cart.neighbor(r, (di, dj)) == PROC_NULL:
                    continue
                # Ghost slab facing (di, dj) must equal the global
                # field's wrap-adjacent cells.
                def axes(c, d):
                    if d == 0:
                        return slice(1, n - 1), slice(c * 6, c * 6 + 6)
                    local = (n - 1) if d > 0 else 0
                    global_ = (c * 6 + (6 if d > 0 else -1)) % 12
                    return local, global_

                li, gi_idx = axes(ci, di)
                lj, gj_idx = axes(cj, dj)
                got = view[li, lj]
                want = G[gi_idx, gj_idx].astype(np.float64)
                assert np.array_equal(np.atleast_1d(got), np.atleast_1d(want)), (
                    r, (di, dj),
                )


def test_boundary_ranks_skip_missing_neighbors():
    cart = CartComm((2, 2))  # non-periodic: corners of the grid
    _sched, exchanges = cart.neighbor_exchanges(0, (4, 4))
    peers = {e[0] for e in exchanges}
    assert PROC_NULL not in peers
    # Rank 0 at (0,0) has exactly 3 neighbors: right, down, diag.
    assert len(exchanges) == 3


def test_2x2x2_three_dimensional_exchange_runs():
    cart = CartComm((2, 2, 2), periods=[True, True, True])
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2, ranks_per_node=4)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"])
    interior = (4, 4, 4)
    arrays = {}
    for r in range(8):
        sched, _ = cart.neighbor_exchanges(r, interior)
        buf = rt.rank(r).device.alloc(sched.array_bytes)
        buf.data[:] = np.random.default_rng(r).integers(0, 256, buf.nbytes)
        arrays[r] = buf

    def prog(r):
        _sched, exchanges = cart.neighbor_exchanges(r, interior)
        assert len(exchanges) == 26
        yield from neighbor_alltoall(rt.rank(r), arrays[r], exchanges)

    procs = [sim.process(prog(r)) for r in range(8)]
    sim.run(sim.all_of(procs))
