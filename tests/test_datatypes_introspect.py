"""Tests for datatype envelopes and tree rendering."""

import pytest

from repro.datatypes import (
    DOUBLE,
    FLOAT,
    Contiguous,
    HIndexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    Vector,
    describe,
    envelope,
)


def test_envelope_named():
    combiner, args = envelope(DOUBLE)
    assert combiner == "named"
    assert args == {"name": "double", "size": 8}


def test_envelope_every_combiner():
    cases = [
        (Contiguous(3, DOUBLE), "contiguous"),
        (Vector(2, 1, 3, DOUBLE), "vector"),
        (Hvector(2, 1, 24, DOUBLE), "hvector"),
        (Indexed([1, 2], [0, 5], FLOAT), "indexed"),
        (HIndexed([1], [0], FLOAT), "hindexed"),
        (IndexedBlock(2, [0, 8], FLOAT), "indexed_block"),
        (Struct([1], [0], [DOUBLE]), "struct"),
        (Subarray((4, 4), (2, 2), (1, 1), DOUBLE), "subarray"),
        (Resized(DOUBLE, 0, 16), "resized"),
    ]
    for dt, expected in cases:
        combiner, args = envelope(dt)
        assert combiner == expected, dt
        assert "base" in args or "types" in args or combiner == "named"


def test_envelope_contents_roundtrip_vector():
    v = Vector(3, 2, 5, DOUBLE)
    combiner, args = envelope(v)
    rebuilt = Vector(args["count"], args["blocklength"], args["stride"], args["base"])
    assert rebuilt == v


def test_envelope_rejects_unknown():
    with pytest.raises(TypeError):
        envelope(object())  # type: ignore[arg-type]


def test_describe_vector_tree():
    text = describe(Vector(3, 2, 5, DOUBLE))
    assert "vector(count=3, blocklength=2, stride=5)" in text
    assert "double" in text
    assert "flattened: 3 blocks" in text
    assert "size=48B" in text


def test_describe_nested_struct():
    inner = Indexed([1, 1], [0, 4], FLOAT)
    st = Struct([1, 2], [0, 64], [inner, DOUBLE])
    text = describe(st)
    assert "struct(" in text
    assert "indexed(" in text
    assert "float" in text and "double" in text
    # Tree connectors present for multiple children.
    assert "├─" in text and "└─" in text


def test_describe_long_lists_elided():
    dt = Indexed([1] * 50, list(range(0, 150, 3)), FLOAT)
    text = describe(dt)
    assert "x50]" in text


def test_describe_workload_types():
    from repro.workloads import WORKLOADS

    for name in ("specfem3D_cm", "MILC", "NAS_MG", "WRF"):
        text = describe(WORKLOADS[name](16 if name != "specfem3D_cm" else 100).datatype)
        assert "flattened:" in text
