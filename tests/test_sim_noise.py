"""Tests for the optional execution-noise model."""

import numpy as np
import pytest

from repro.bench import run_bulk_exchange
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import NoiseModel, Simulator, us
from repro.gpu import GPUDevice, TESLA_V100
from repro.workloads import WORKLOADS


def test_unit_mean_and_spread():
    noise = NoiseModel(seed=1, cv=0.1)
    samples = np.array([noise.factor() for _ in range(20000)])
    assert samples.mean() == pytest.approx(1.0, rel=0.01)
    assert samples.std() == pytest.approx(0.1, rel=0.1)
    assert (samples > 0).all()


def test_zero_cv_is_exact():
    noise = NoiseModel(seed=1, cv=0.0)
    assert noise.factor() == 1.0


def test_seed_reproducibility_per_channel():
    a = NoiseModel(seed=5, cv=0.2)
    b = NoiseModel(seed=5, cv=0.2)
    assert [a.factor("gpu") for _ in range(10)] == [b.factor("gpu") for _ in range(10)]
    # Channels are independent streams.
    c = NoiseModel(seed=5, cv=0.2)
    gpu = [c.factor("gpu") for _ in range(5)]
    d = NoiseModel(seed=5, cv=0.2)
    net = [d.factor("net") for _ in range(5)]
    assert gpu != net


def test_negative_cv_rejected():
    with pytest.raises(ValueError):
        NoiseModel(cv=-0.1)


def test_stream_durations_jitter():
    sim = Simulator()
    sim.noise = NoiseModel(seed=3, cv=0.2)
    dev = GPUDevice(sim, TESLA_V100)
    done = dev.default_stream.enqueue_callable(us(10))
    sim.run(done)
    assert sim.now != pytest.approx(us(10))  # jittered
    assert us(3) < sim.now < us(30)


def test_simulation_noise_free_by_default():
    sim = Simulator()
    dev = GPUDevice(sim, TESLA_V100)
    sim.run(dev.default_stream.enqueue_callable(us(10)))
    assert sim.now == pytest.approx(us(10))


def test_noisy_exchange_varies_but_averages_close():
    """With noise on, iterations differ (unlike the deterministic
    default) but the mean stays near the noise-free latency — the
    paper's 500-iteration averaging, demonstrated."""
    import repro.bench.runner as runner_mod
    from repro.mpi import Runtime as RealRuntime

    spec = WORKLOADS["NAS_MG"](64)
    clean = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=4,
        iterations=4, warmup=1, data_plane=False,
    )

    class NoisyRuntime(RealRuntime):
        def __init__(self, sim, *args, **kwargs):
            sim.noise = NoiseModel(seed=11, cv=0.05)
            super().__init__(sim, *args, **kwargs)

    orig = runner_mod.Runtime
    runner_mod.Runtime = NoisyRuntime
    try:
        noisy = run_bulk_exchange(
            LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=4,
            iterations=4, warmup=1, data_plane=False,
        )
    finally:
        runner_mod.Runtime = orig

    assert max(noisy.latencies) - min(noisy.latencies) > 1e-9  # varies
    assert noisy.mean_latency == pytest.approx(clean.mean_latency, rel=0.15)
