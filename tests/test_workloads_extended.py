"""Unit tests for the extended (future-work) workload generators."""

import numpy as np
import pytest

from repro.datatypes import pack_bytes, unpack_bytes
from repro.workloads import (
    WORKLOADS,
    fft2d_transpose,
    lammps_full,
    nas_lu_x,
    nas_lu_y,
    wrf_xz_plane,
)


def test_extended_workloads_registered():
    for name in ("WRF", "NAS_LU_x", "NAS_LU_y", "FFT2D", "LAMMPS_full"):
        assert name in WORKLOADS


def test_wrf_struct_of_subarrays():
    spec = wrf_xz_plane(16)
    lay = spec.datatype.flatten()
    assert spec.layout_class == "dense"
    # 16 z-planes x 4 fields, the 2-deep y-slab rows coalescing.
    assert lay.num_blocks == 16 * 4
    assert spec.message_bytes == 4 * 16 * 2 * 16 * 4


def test_wrf_fields_do_not_overlap():
    spec = wrf_xz_plane(8)
    idx = spec.datatype.flatten().gather_index()
    assert len(np.unique(idx)) == len(idx)


def test_nas_lu_x_sparse_points():
    spec = nas_lu_x(16)
    lay = spec.datatype.flatten()
    assert spec.layout_class == "sparse"
    assert lay.num_blocks == 16 * 16
    assert lay.mean_block == pytest.approx(20.0)


def test_nas_lu_y_dense_rows():
    spec = nas_lu_y(16)
    lay = spec.datatype.flatten()
    assert lay.num_blocks == 16
    assert lay.mean_block == pytest.approx(16 * 20.0)
    # x and y faces carry the same payload, differently shaped.
    assert spec.message_bytes == nas_lu_x(16).message_bytes


def test_fft2d_column_block():
    spec = fft2d_transpose(64)
    lay = spec.datatype.flatten()
    assert lay.num_blocks == 64
    assert lay.mean_block == pytest.approx((64 // 16) * 8)


def test_lammps_tuple_blocks():
    spec = lammps_full(100)
    lay = spec.datatype.flatten()
    assert lay.num_blocks == 100
    assert lay.mean_block == pytest.approx(56.0)
    assert spec.message_bytes == 100 * 56


def test_lammps_deterministic():
    assert lammps_full(50).datatype.flatten() == lammps_full(50).datatype.flatten()


@pytest.mark.parametrize(
    "name,dim",
    [("WRF", 8), ("NAS_LU_x", 8), ("NAS_LU_y", 8), ("FFT2D", 32), ("LAMMPS_full", 64)],
)
def test_extended_roundtrip(name, dim):
    """Every extended layout packs/unpacks byte-exactly."""
    spec = WORKLOADS[name](dim)
    lay = spec.datatype.flatten()
    rng = np.random.default_rng(3)
    src = rng.integers(0, 256, spec.buffer_bytes() + 8, dtype=np.uint8)
    packed = pack_bytes(src, lay)
    dst = np.zeros_like(src)
    unpack_bytes(packed, lay, dst)
    idx = lay.gather_index()
    assert np.array_equal(dst[idx], src[idx])


@pytest.mark.parametrize(
    "factory,bad_dim",
    [(wrf_xz_plane, 3), (nas_lu_x, 1), (nas_lu_y, 1), (fft2d_transpose, 1),
     (lammps_full, 0)],
)
def test_extended_validation(factory, bad_dim):
    with pytest.raises(ValueError):
        factory(bad_dim)
