"""Unit tests for the baseline packing schemes and the scheme contract."""

import numpy as np
import pytest

from repro.core import FusionPolicy, KernelFusionScheme
from repro.datatypes import DataLayout
from repro.net import Cluster, LASSEN
from repro.schemes import (
    CPUGPUHybridScheme,
    GPUAsyncScheme,
    GPUSyncScheme,
    MVAPICHAdaptiveScheme,
    NaiveCopyScheme,
    SCHEME_REGISTRY,
    make_scheme_factory,
)
from repro.sim import Category, Simulator, Trace, us


@pytest.fixture()
def env():
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1)
    return sim, cluster.site(0)


def _sparse_op(site, nbytes=16384, blocks=512, seed=0):
    dev = site.device
    step = 2 * (nbytes // blocks)
    lay = DataLayout(
        np.arange(blocks, dtype=np.int64) * step,
        np.full(blocks, nbytes // blocks, dtype=np.int64),
    )
    src = dev.alloc(int(lay.offsets[-1] + lay.lengths[-1]) + 8)
    src.data[:] = np.random.default_rng(seed).integers(0, 256, src.nbytes)
    dst = dev.alloc(lay.size)
    return dev.pack_op(src, lay, dst), src, dst, lay


def _dense_op(site, nbytes=8192):
    dev = site.device
    lay = DataLayout([0, nbytes], [nbytes // 2, nbytes // 2])
    src = dev.alloc(2 * nbytes, fill=4)
    dst = dev.alloc(lay.size)
    return dev.pack_op(src, lay, dst), src, dst, lay


def _submit(sim, scheme, op):
    out = {}

    def proc():
        handle = yield from scheme.submit(op)
        out["handle"] = handle
        yield from scheme.flush()
        yield from scheme.wait([handle])

    sim.run(sim.process(proc()))
    return out["handle"]


# -- GPU-Sync ---------------------------------------------------------------------


def test_gpu_sync_blocking_and_buckets(env):
    sim, site = env
    trace = Trace()
    scheme = GPUSyncScheme(site, trace)
    op, src, dst, lay = _sparse_op(site)
    handle = _submit(sim, scheme, op)
    assert handle.done
    arch = site.device.arch
    assert trace.total(Category.LAUNCH) == pytest.approx(arch.kernel_launch_overhead)
    assert trace.total(Category.SYNC) == pytest.approx(arch.stream_sync_overhead)
    assert trace.total(Category.PACK) == pytest.approx(op.duration)
    assert np.array_equal(dst.data[: lay.size], src.data[lay.gather_index()])


def test_gpu_sync_serializes_submissions(env):
    sim, site = env
    scheme = GPUSyncScheme(site, Trace())
    ops = [_sparse_op(site, seed=i)[0] for i in range(4)]

    def proc():
        for op in ops:
            yield from scheme.submit(op)

    sim.run(sim.process(proc()))
    arch = site.device.arch
    expected_min = 4 * (arch.kernel_launch_overhead + arch.stream_sync_overhead)
    assert sim.now >= expected_min


# -- GPU-Async --------------------------------------------------------------------------


def test_gpu_async_nonblocking_submit(env):
    sim, site = env
    scheme = GPUAsyncScheme(site, Trace())
    op, *_ = _sparse_op(site)
    out = {}

    def proc():
        handle = yield from scheme.submit(op)
        out["t_submit"] = sim.now
        out["done_at_submit"] = handle.done
        yield from scheme.wait([handle])
        out["handle"] = handle

    sim.run(sim.process(proc()))
    assert not out["done_at_submit"]  # returned before completion
    assert out["handle"].done
    arch = site.device.arch
    # Submit cost: chunked launches + records only.
    chunks = scheme.pipeline_chunks
    expected = chunks * (arch.kernel_launch_overhead + arch.event_record_overhead)
    assert out["t_submit"] == pytest.approx(expected)


def test_gpu_async_discovery_requires_progress(env):
    """Completion is invisible until a query sweep runs."""
    sim, site = env
    scheme = GPUAsyncScheme(site, Trace())
    op, *_ = _sparse_op(site)
    out = {}

    def proc():
        handle = yield from scheme.submit(op)
        yield sim.timeout(us(500))  # kernel long done, nobody queried
        out["visible_before_sweep"] = handle.done
        yield from scheme.progress_tick()
        yield sim.timeout(0)
        out["visible_after_sweep"] = handle.done

    sim.run(sim.process(proc()))
    assert not out["visible_before_sweep"]
    assert out["visible_after_sweep"]


def test_gpu_async_query_costs_scale_with_outstanding(env):
    sim, site = env
    trace = Trace()
    scheme = GPUAsyncScheme(site, trace)
    ops = [_sparse_op(site, seed=i)[0] for i in range(4)]

    def proc():
        handles = []
        for op in ops:
            h = yield from scheme.submit(op)
            handles.append(h)
        yield from scheme.progress_tick()

    sim.run(sim.process(proc()))
    arch = site.device.arch
    assert trace.total(Category.SYNC) == pytest.approx(4 * arch.event_query_overhead)


def test_gpu_async_pipeline_chunk_validation(env):
    _sim, site = env
    with pytest.raises(ValueError):
        GPUAsyncScheme(site, pipeline_chunks=0)


def test_gpu_async_moves_bytes(env):
    sim, site = env
    scheme = GPUAsyncScheme(site, Trace())
    op, src, dst, lay = _sparse_op(site)
    _submit(sim, scheme, op)
    assert np.array_equal(dst.data[: lay.size], src.data[lay.gather_index()])


# -- CPU-GPU-Hybrid ---------------------------------------------------------------------------


def test_hybrid_cpu_path_for_small_dense(env):
    sim, site = env
    trace = Trace()
    scheme = CPUGPUHybridScheme(site, trace)
    op, src, dst, lay = _dense_op(site, nbytes=8192)
    handle = _submit(sim, scheme, op)
    assert scheme.cpu_path_count == 1 and scheme.gpu_path_count == 0
    assert trace.total(Category.LAUNCH) == 0.0  # zero GPU driver involvement
    assert handle.done
    assert (dst.data == 4).all()


def test_hybrid_gpu_path_for_sparse(env):
    sim, site = env
    scheme = CPUGPUHybridScheme(site, Trace())
    op, *_ = _sparse_op(site, nbytes=16384, blocks=512)  # blocks > limit
    _submit(sim, scheme, op)
    assert scheme.gpu_path_count == 1 and scheme.cpu_path_count == 0


def test_hybrid_without_gdrcopy_always_gpu(env):
    sim, site = env
    scheme = CPUGPUHybridScheme(site, Trace(), gdrcopy_available=False)
    op, *_ = _dense_op(site)
    _submit(sim, scheme, op)
    assert scheme.gpu_path_count == 1


def test_hybrid_host_copy_time_formula(env):
    _sim, site = env
    scheme = CPUGPUHybridScheme(site, Trace())
    op, *_ = _dense_op(site, nbytes=8192)
    arch = site.device.arch
    expected = op.num_blocks * arch.host_block_cost + op.nbytes / arch.host_mapped_bandwidth
    assert scheme.host_copy_time(op) == pytest.approx(expected)


def test_mvapich_has_extra_software_overhead(env):
    sim, site = env
    t1, t2 = Trace(), Trace()
    plain = CPUGPUHybridScheme(site, t1)
    prod = MVAPICHAdaptiveScheme(site, t2)
    assert prod.software_overhead > plain.software_overhead
    assert prod.name == "MVAPICH2-GDR"


# -- Naive (production) ----------------------------------------------------------------------------


def test_naive_cost_scales_with_block_count(env):
    _sim, site = env
    scheme = NaiveCopyScheme(site, Trace())
    few, *_ = _dense_op(site)
    many, *_ = _sparse_op(site, blocks=512)
    assert scheme.copy_issue_time(many) > 100 * scheme.copy_issue_time(few)


def test_naive_moves_bytes_and_charges_launch(env):
    sim, site = env
    trace = Trace()
    scheme = NaiveCopyScheme(site, trace)
    op, src, dst, lay = _sparse_op(site, blocks=64)
    _submit(sim, scheme, op)
    arch = site.device.arch
    assert trace.total(Category.LAUNCH) == pytest.approx(64 * arch.memcpy_async_overhead)
    assert np.array_equal(dst.data[: lay.size], src.data[lay.gather_index()])


def test_naive_per_copy_factor(env):
    _sim, site = env
    spectrum = NaiveCopyScheme(site, per_copy_factor=1.0)
    openmpi = NaiveCopyScheme(site, per_copy_factor=0.85)
    op, *_ = _sparse_op(site)
    assert openmpi.copy_issue_time(op) < spectrum.copy_issue_time(op)


# -- Proposed (fusion) --------------------------------------------------------------------------------


def test_fusion_submit_is_cheap_and_deferred(env):
    sim, site = env
    trace = Trace()
    scheme = KernelFusionScheme(site, trace, policy=FusionPolicy(threshold_bytes=1 << 30))
    op, *_ = _sparse_op(site)
    out = {}

    def proc():
        handle = yield from scheme.submit(op)
        out["t"] = sim.now
        out["done"] = handle.done
        yield from scheme.wait([handle])

    sim.run(sim.process(proc()))
    assert not out["done"]
    assert out["t"] == pytest.approx(scheme.scheduler.enqueue_overhead)
    assert trace.total(Category.LAUNCH) == pytest.approx(
        site.device.arch.kernel_launch_overhead
    )


def test_fusion_fallback_on_full_list(env):
    sim, site = env
    scheme = KernelFusionScheme(
        site, Trace(), policy=FusionPolicy(threshold_bytes=1 << 30), capacity=1
    )
    ops = [_sparse_op(site, seed=i)[0] for i in range(2)]
    out = {}

    def proc():
        h1 = yield from scheme.submit(ops[0])
        h2 = yield from scheme.submit(ops[1])  # full -> fallback
        out["uids"] = (h1.uid, h2.uid)
        yield from scheme.flush()
        yield from scheme.wait([h1, h2])

    sim.run(sim.process(proc()))
    assert out["uids"][0] >= 0
    assert out["uids"][1] == -1  # negative UID fallback (§IV-A2)
    assert scheme.fallback_count == 1


def test_fusion_moves_bytes_for_all_requests(env):
    sim, site = env
    scheme = KernelFusionScheme(site, Trace())
    triples = [_sparse_op(site, seed=i) for i in range(6)]

    def proc():
        handles = []
        for op, *_ in triples:
            h = yield from scheme.submit(op)
            handles.append(h)
        yield from scheme.flush()
        yield from scheme.wait(handles)

    sim.run(sim.process(proc()))
    for op, src, dst, lay in triples:
        assert np.array_equal(dst.data[: lay.size], src.data[lay.gather_index()])


def test_fusion_scheduler_overhead_about_2us_per_message(env):
    """§V-B: 'scheduling overhead ... as low as 2 us per message'."""
    sim, site = env
    trace = Trace()
    scheme = KernelFusionScheme(site, trace)
    ops = [_sparse_op(site, seed=i)[0] for i in range(8)]

    def proc():
        handles = []
        for op in ops:
            h = yield from scheme.submit(op)
            handles.append(h)
        yield from scheme.flush()
        yield from scheme.wait(handles)

    sim.run(sim.process(proc()))
    per_message = trace.total(Category.SCHED) / 8
    assert us(0.5) < per_message < us(3.0)


# -- registry ------------------------------------------------------------------------------------------


def test_registry_contains_all_schemes():
    assert set(SCHEME_REGISTRY) == {
        "GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "MVAPICH2-GDR",
        "SpectrumMPI", "OpenMPI", "Proposed",
    }


def test_make_scheme_factory_with_overrides(env):
    _sim, site = env
    factory = make_scheme_factory("GPU-Async", num_streams=2)
    scheme = factory(site, Trace())
    assert len(scheme.streams) == 2


def test_make_scheme_factory_fusion_override_builds_fusion_scheme(env):
    """A fusion knob on 'Proposed' routes to KernelFusionScheme (the
    same rule the sweep engine's config blocks follow), instead of the
    old alias-override rejection."""
    from repro.core.framework import KernelFusionScheme

    _sim, site = env
    factory = make_scheme_factory("Proposed", capacity=4)
    scheme = factory(site, Trace())
    assert isinstance(scheme, KernelFusionScheme)
    assert scheme.scheduler.request_list.capacity == 4


def test_make_scheme_factory_rejects_alias_overrides():
    # Eager rejection, at factory-build time — not at first call.
    with pytest.raises(ValueError, match="aliased scheme 'SpectrumMPI'"):
        make_scheme_factory("SpectrumMPI", per_copy_factor=0.5)


def test_make_scheme_factory_rejects_unknown_option():
    with pytest.raises(ValueError, match="'num_streamz' for scheme 'GPU-Async'"):
        make_scheme_factory("GPU-Async", num_streamz=2)


def test_capabilities_table1_rows():
    """Table I: the proposed row is the only low-overhead + cached +
    high-overlap combination."""
    from repro.core.framework import KernelFusionScheme as KF

    assert KF.capabilities.layout_cache
    assert KF.capabilities.driver_overhead == "low"
    assert KF.capabilities.overlap == "high"
    assert GPUSyncScheme.capabilities.driver_overhead == "high"
    assert GPUAsyncScheme.capabilities.overlap == "high"
    assert CPUGPUHybridScheme.capabilities.requires_gdrcopy
