"""Tests for threshold auto-tuning (closed-form + empirical)."""

import pytest

from repro.core import autotune_threshold, recommend_threshold
from repro.gpu import TESLA_V100, TESLA_V100_PCIE
from repro.net import LASSEN
from repro.workloads import WORKLOADS

KiB = 1024


def test_recommend_threshold_reasonable_band():
    spec = WORKLOADS["specfem3D_cm"](2000)
    rec = recommend_threshold(TESLA_V100, spec.datatype.flatten())
    # §IV-C: the useful band is tens of KB to ~1 MB.
    assert 16 * KiB <= rec <= 2048 * KiB


def test_recommend_threshold_scales_with_launch_overhead():
    """A slower driver (PCIe attach) justifies pooling at least as much
    work per launch."""
    lay = WORKLOADS["specfem3D_cm"](2000).datatype.flatten()
    nvlink = recommend_threshold(TESLA_V100, lay)
    pcie = recommend_threshold(TESLA_V100_PCIE, lay)
    assert pcie >= nvlink


def test_recommend_threshold_sparse_needs_less_pooling():
    """Sparse layouts do more GPU work per byte (strided penalty +
    per-block cost), so fewer pooled bytes out-run the launch."""
    sparse = WORKLOADS["specfem3D_cm"](2000).datatype.flatten()
    dense = WORKLOADS["NAS_MG"](128).datatype.flatten()
    assert recommend_threshold(TESLA_V100, sparse) <= recommend_threshold(
        TESLA_V100, dense
    )


def test_recommend_threshold_multiple_matters():
    lay = WORKLOADS["MILC"](16).datatype.flatten()
    low = recommend_threshold(TESLA_V100, lay, launch_cost_multiple=1.0)
    high = recommend_threshold(TESLA_V100, lay, launch_cost_multiple=4.0)
    assert high >= low


def test_recommend_threshold_rejects_empty_layout():
    from repro.datatypes import DataLayout

    with pytest.raises(ValueError):
        recommend_threshold(TESLA_V100, DataLayout([], []))


def test_autotune_finds_interior_optimum():
    spec = WORKLOADS["specfem3D_cm"](1000)
    result = autotune_threshold(
        LASSEN, spec, candidates=(16 * KiB, 128 * KiB, 4096 * KiB), nbuffers=16
    )
    assert result.best_threshold == 128 * KiB
    assert result.best_latency == min(result.curve.values())
    assert len(result.curve) == 3
    assert "<-- best" in result.describe()


def test_autotune_validation():
    with pytest.raises(ValueError):
        autotune_threshold(LASSEN, WORKLOADS["MILC"](8), candidates=())


def test_model_recommendation_close_to_empirical():
    """The future-work claim: the model lands near the measured best."""
    spec = WORKLOADS["specfem3D_cm"](2000)
    rec = recommend_threshold(LASSEN.gpu_arch, spec.datatype.flatten())
    result = autotune_threshold(
        LASSEN, spec,
        candidates=(64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB),
    )
    # Within one sweep step (4x) of the empirical optimum.
    assert result.best_threshold / 4 <= rec <= result.best_threshold * 4
