"""Unit tests for the reference pack/unpack data plane."""

import numpy as np
import pytest

from repro.datatypes import (
    DOUBLE,
    DataLayout,
    Indexed,
    Vector,
    as_byte_view,
    pack_bytes,
    unpack_bytes,
)


def _buffer(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, n, dtype=np.uint8)


def test_pack_gathers_expected_bytes():
    lay = DataLayout([2, 10], [3, 2])
    src = np.arange(20, dtype=np.uint8)
    packed = pack_bytes(src, lay)
    assert list(packed) == [2, 3, 4, 10, 11]


def test_unpack_inverts_pack():
    lay = Vector(5, 3, 7, DOUBLE).flatten()
    src = _buffer(lay.span + 32)
    packed = pack_bytes(src, lay)
    dst = np.zeros_like(src)
    unpack_bytes(packed, lay, dst)
    idx = lay.gather_index()
    assert np.array_equal(dst[idx], src[idx])
    # Bytes outside the layout untouched (still zero).
    mask = np.ones(len(dst), dtype=bool)
    mask[idx] = False
    assert not dst[mask].any()


def test_pack_into_preallocated_buffer():
    lay = DataLayout([0, 8], [4, 4])
    src = np.arange(16, dtype=np.uint8)
    out = np.zeros(32, dtype=np.uint8)
    ret = pack_bytes(src, lay, out)
    assert ret is out
    assert list(out[:8]) == [0, 1, 2, 3, 8, 9, 10, 11]


def test_pack_base_offset():
    lay = DataLayout([0], [4])
    src = np.arange(16, dtype=np.uint8)
    assert list(pack_bytes(src, lay, base_offset=8)) == [8, 9, 10, 11]


def test_unpack_base_offset():
    lay = DataLayout([0], [4])
    dst = np.zeros(16, dtype=np.uint8)
    unpack_bytes(np.array([9, 9, 9, 9], dtype=np.uint8), lay, dst, base_offset=12)
    assert list(dst[12:]) == [9, 9, 9, 9]


def test_pack_bounds_checked():
    lay = DataLayout([0], [32])
    with pytest.raises(IndexError):
        pack_bytes(np.zeros(16, dtype=np.uint8), lay)
    with pytest.raises(IndexError):
        pack_bytes(np.zeros(64, dtype=np.uint8), lay, base_offset=40)


def test_pack_output_too_small():
    lay = DataLayout([0], [16])
    with pytest.raises(IndexError):
        pack_bytes(np.zeros(32, dtype=np.uint8), lay, np.zeros(8, dtype=np.uint8))


def test_unpack_short_packed_rejected():
    lay = DataLayout([0], [16])
    with pytest.raises(IndexError):
        unpack_bytes(np.zeros(8, dtype=np.uint8), lay, np.zeros(32, dtype=np.uint8))


def test_type_checks():
    lay = DataLayout([0], [4])
    with pytest.raises(TypeError):
        pack_bytes(np.zeros(8, dtype=np.float32), lay)
    with pytest.raises(TypeError):
        unpack_bytes(np.zeros(8, dtype=np.uint8), lay, np.zeros(8, dtype=np.int32))
    with pytest.raises(TypeError):
        pack_bytes(np.zeros(8, dtype=np.uint8), lay, np.zeros(8, dtype=np.int16))


def test_as_byte_view():
    arr = np.arange(4, dtype=np.float64)
    view = as_byte_view(arr)
    assert view.dtype == np.uint8 and len(view) == 32
    view[0] = 0xFF  # shared memory
    assert arr[0] != 0.0


def test_as_byte_view_requires_contiguous():
    arr = np.zeros((4, 4))[:, ::2]
    with pytest.raises(ValueError):
        as_byte_view(arr)


def test_indexed_roundtrip_typed_data():
    """Pack floats through an indexed type and read them back typed."""
    t = Indexed([2, 2, 2], [0, 10, 20], DOUBLE).commit()
    field = np.zeros(30, dtype=np.float64)
    field[[0, 1, 10, 11, 20, 21]] = [1.5, 2.5, 3.5, 4.5, 5.5, 6.5]
    lay = t.flatten()
    packed = pack_bytes(as_byte_view(field), lay)
    assert np.array_equal(
        packed.view(np.float64), [1.5, 2.5, 3.5, 4.5, 5.5, 6.5]
    )
    out = np.zeros_like(field)
    unpack_bytes(packed, lay, as_byte_view(out))
    assert np.array_equal(out, field)


# -- incremental Packer (MPI position semantics) ---------------------------------


def test_packer_appends_sequentially():
    from repro.datatypes import Packer, DataLayout

    staging = np.zeros(16, dtype=np.uint8)
    a = DataLayout([0], [4])
    b = DataLayout([2, 8], [2, 2])
    src = np.arange(16, dtype=np.uint8)
    p = Packer(staging)
    assert p.pack(src, a) == 4
    assert p.pack(src, b) == 8
    assert list(staging[:8]) == [0, 1, 2, 3, 2, 3, 8, 9]


def test_packer_unpack_roundtrip():
    from repro.datatypes import Packer, DataLayout

    a = DataLayout([0, 10], [4, 4])
    b = DataLayout([4], [8])
    src = _buffer(32, seed=5)
    staging = np.zeros(64, dtype=np.uint8)
    w = Packer(staging)
    w.pack(src, a)
    w.pack(src, b)
    total = w.position
    out = np.zeros_like(src)
    r = Packer(staging)
    r.unpack(a, out)
    r.unpack(b, out)
    assert r.position == total
    for lay in (a, b):
        idx = lay.gather_index()
        assert np.array_equal(out[idx], src[idx])


def test_packer_overflow_rejected():
    from repro.datatypes import Packer, DataLayout

    p = Packer(np.zeros(4, dtype=np.uint8))
    with pytest.raises(IndexError):
        p.pack(np.zeros(16, dtype=np.uint8), DataLayout([0], [8]))
    with pytest.raises(IndexError):
        p.unpack(DataLayout([0], [8]), np.zeros(16, dtype=np.uint8))


def test_packer_validation():
    from repro.datatypes import Packer

    with pytest.raises(TypeError):
        Packer(np.zeros(4, dtype=np.float32))
    with pytest.raises(ValueError):
        Packer(np.zeros(4, dtype=np.uint8), position=5)


def test_packer_resume_at_position():
    from repro.datatypes import Packer, DataLayout

    staging = np.zeros(16, dtype=np.uint8)
    src = np.arange(16, dtype=np.uint8)
    Packer(staging, position=8).pack(src, DataLayout([0], [4]))
    assert list(staging[8:12]) == [0, 1, 2, 3]
    assert not staging[:8].any()
