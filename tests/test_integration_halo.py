"""End-to-end integration: multi-neighbor halo exchanges.

Runs the paper's motivating application pattern — Fig. 3's 2-D halo
exchange and the Comb-style 3-D decomposition of §V-C — through the
full stack (datatypes → schemes → protocols → wire) and checks the
delivered ghost cells are byte-exact, for every scheme.

The topology is a symmetric pair: two ranks running identical
schedules, each neighbor direction mapped to the peer rank with the
opposite direction's tag, so ghost regions line up exactly.
"""

import numpy as np
import pytest

from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import halo_2d, halo_3d


def _dir_tag(direction):
    return hash(direction) % 100_000


def run_halo(schedule, scheme_name, system=LASSEN):
    sim = Simulator()
    cluster = Cluster(sim, system, nodes=2, ranks_per_node=1)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[scheme_name])
    arrays = {}
    for r in (0, 1):
        buf = rt.rank(r).device.alloc(schedule.array_bytes)
        rng = np.random.default_rng(100 + r)
        buf.data[:] = rng.integers(0, 256, buf.nbytes)
        arrays[r] = buf

    def program(me, peer):
        rank = rt.rank(me)
        reqs = []
        for n in schedule.neighbors:
            # Receive into my ghost shell from the peer's opposite side.
            reqs.append(
                rank.irecv(arrays[me], n.recv_type, 1, peer, tag=_dir_tag(n.direction))
            )
        for n in schedule.neighbors:
            opposite = tuple(-d for d in n.direction)
            sreq = yield from rank.isend(
                arrays[me], n.send_type, 1, peer, tag=_dir_tag(opposite)
            )
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    p0 = sim.process(program(0, 1))
    p1 = sim.process(program(1, 0))
    sim.run(sim.all_of([p0, p1]))

    # Verification: my ghost cells for direction d must equal the
    # peer's interior cells sent toward -d... i.e. toward me.
    snapshots = {r: arrays[r].data.copy() for r in (0, 1)}
    for me, peer in ((0, 1), (1, 0)):
        for n in schedule.neighbors:
            opposite = tuple(-d for d in n.direction)
            peer_send = next(
                x for x in schedule.neighbors if x.direction == opposite
            )
            got = snapshots[me][n.recv_type.flatten().gather_index()]
            want_idx = peer_send.send_type.flatten().gather_index()
            # The peer's send region bytes at exchange time: sends used
            # the original array contents (send regions are interior and
            # never overwritten by receives).
            want = snapshots[peer][want_idx]
            assert np.array_equal(got, want), (
                f"ghost mismatch {scheme_name} dir={n.direction} rank={me}"
            )
    return sim.now


@pytest.mark.parametrize("scheme", ["GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed"])
def test_halo_2d_all_schemes(scheme):
    run_halo(halo_2d((16, 16)), scheme)


@pytest.mark.parametrize("scheme", ["GPU-Sync", "Proposed"])
def test_halo_2d_with_corners(scheme):
    run_halo(halo_2d((12, 12), corners=True), scheme)


@pytest.mark.parametrize("scheme", ["GPU-Sync", "Proposed"])
def test_halo_3d_faces(scheme):
    run_halo(halo_3d((8, 8, 8), corners=False), scheme)


def test_halo_3d_full_26_neighbors_proposed():
    """The §V-C workload shape: 26 boundary exchanges, fused."""
    run_halo(halo_3d((8, 8, 8), corners=True), "Proposed")


def test_halo_3d_wide_ghost():
    run_halo(halo_3d((9, 9, 9), ghost=2, corners=False), "Proposed")


def test_proposed_faster_than_sync_on_halo():
    sched = halo_3d((16, 16, 16), corners=True)
    t_sync = run_halo(sched, "GPU-Sync")
    t_prop = run_halo(sched, "Proposed")
    assert t_prop < t_sync
