"""Tests for the canonical experiment-config plane (:mod:`repro.config`).

Pins the contracts DESIGN §7 promises: JSON round-trip, dotted-path
overrides with unknown-path rejection, construction-time validation,
and a canonical content hash that is stable across processes and
``PYTHONHASHSEED`` values.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.bench.sweep import ExperimentSpec
from repro.config import (
    ExperimentConfig,
    FaultsCfg,
    FusionCfg,
    HarnessCfg,
    NoiseCfg,
    ProtocolCfg,
    SchemeCfg,
    SystemCfg,
    WorkloadCfg,
)

KiB = 1024

#: sha256 of the documented default config under ``repro.config/v1``.
#: This pin fails loudly when the canonical form drifts — a deliberate
#: schema change must bump CONFIG_SCHEMA and update this value (which
#: also invalidates every sweep-cache entry, as it must).
GOLDEN_DEFAULT_HASH = (
    "81b7b92480dee7939a7dc88337718cce0e83abf16686a5c4db11872d644fd4c9"
)


# -- round-trip ---------------------------------------------------------------


def test_default_round_trips_through_json():
    cfg = ExperimentConfig.default()
    assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg
    # And through an actual JSON encode/decode, not just dicts.
    assert ExperimentConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg


def test_nondefault_round_trips_through_json():
    cfg = ExperimentConfig(
        system=SystemCfg(name="ABCI"),
        workload=WorkloadCfg(name="MILC", dim=32, nbuffers=8),
        scheme=SchemeCfg(
            name="Proposed-Tuned",
            label="Proposed-Tuned",
            fusion=FusionCfg(threshold_bytes=512 * KiB, capacity=128),
            options={"poll_interval": 2e-6},
        ),
        protocol=ProtocolCfg(rendezvous="rget", eager_threshold=8 * KiB),
        faults=FaultsCfg(preset="light", spec={"control_drop": 0.5}, seed=7),
        noise=NoiseCfg(cv=0.05, seed=3),
        harness=HarnessCfg(iterations=2, warmup=0, data_plane=False, seed=9),
    )
    assert ExperimentConfig.from_dict(json.loads(cfg.canonical_json())) == cfg


def test_from_dict_rejects_unknown_keys_by_dotted_path():
    data = ExperimentConfig.default().to_dict()
    data["workload"]["dimension"] = 2000
    with pytest.raises(ValueError, match="workload.dimension"):
        ExperimentConfig.from_dict(data)
    with pytest.raises(ValueError, match="unknown config key"):
        ExperimentConfig.from_dict({"sytem": {}})


def test_partial_from_dict_fills_defaults():
    cfg = ExperimentConfig.from_dict({"workload": {"dim": 2000}})
    assert cfg.workload.dim == 2000
    assert cfg.workload.name == "specfem3D_cm"
    assert cfg.system == SystemCfg()


# -- dotted-path overrides ----------------------------------------------------


def test_with_overrides_sets_nested_leaves():
    cfg = ExperimentConfig.default().with_overrides(
        {
            "workload.dim": 2000,
            "scheme.fusion.threshold_bytes": 512 * KiB,
            "protocol.rendezvous": "rget",
            "harness.iterations": 2,
        }
    )
    assert cfg.workload.dim == 2000
    assert cfg.scheme.fusion.threshold_bytes == 512 * KiB
    assert cfg.protocol.rendezvous == "rget"
    assert cfg.harness.iterations == 2
    # The original is untouched (frozen + copy-on-write).
    assert ExperimentConfig.default().workload.dim == 1000


def test_with_overrides_rejects_unknown_paths():
    cfg = ExperimentConfig.default()
    with pytest.raises(ValueError, match="unknown config path 'workload.dimension'"):
        cfg.with_overrides({"workload.dimension": 2000})
    with pytest.raises(ValueError, match="unknown config path"):
        cfg.with_overrides({"nope.dim": 1})
    with pytest.raises(ValueError, match="malformed override path"):
        cfg.with_overrides({"workload..dim": 1})


def test_with_overrides_rejects_replacing_a_section_with_a_scalar():
    with pytest.raises(ValueError, match="targets a config section"):
        ExperimentConfig.default().with_overrides({"workload": 5})


def test_with_overrides_allows_new_keys_in_freeform_mappings():
    cfg = ExperimentConfig.default().with_overrides(
        {"scheme.options.poll_interval": 2e-6}
    )
    assert cfg.scheme.options == {"poll_interval": 2e-6}
    cfg = ExperimentConfig.default().with_overrides(
        {"faults.spec": {"control_drop": 0.25}}
    )
    assert cfg.faults.spec == {"control_drop": 0.25}


def test_with_overrides_revalidates():
    with pytest.raises(ValueError, match="workload.nbuffers"):
        ExperimentConfig.default().with_overrides({"workload.nbuffers": 0})


# -- validation at construction ----------------------------------------------


@pytest.mark.parametrize(
    "build, match",
    [
        (lambda: WorkloadCfg(nbuffers=0), "workload.nbuffers"),
        (lambda: WorkloadCfg(dim=0), "workload.dim"),
        (lambda: SystemCfg(nodes=0), "system.nodes"),
        (lambda: ProtocolCfg(eager_threshold=-1), "protocol.eager_threshold"),
        (lambda: ProtocolCfg(rendezvous="push"), "unknown rendezvous protocol"),
        (lambda: ProtocolCfg(pipeline_chunk_bytes=0), "pipeline_chunk_bytes"),
        (lambda: HarnessCfg(iterations=0), "iterations"),
        (lambda: HarnessCfg(warmup=-1), "warmup"),
        (lambda: NoiseCfg(cv=-0.1), "noise.cv"),
        (lambda: FaultsCfg(preset="apocalypse"), "unknown fault preset"),
        (lambda: FaultsCfg(spec={"gremlins": 1}), "unknown fault spec field"),
        (lambda: FusionCfg(max_batch_requests=0), "max_batch_requests"),
        (lambda: SchemeCfg(name=""), "scheme.name"),
    ],
)
def test_validation_fails_at_construction(build, match):
    with pytest.raises(ValueError, match=match):
        build()


def test_resolve_rejects_unknown_registry_names():
    with pytest.raises(ValueError, match="unknown system 'Frontier'"):
        SystemCfg(name="Frontier").resolve()
    with pytest.raises(ValueError, match="unknown workload"):
        WorkloadCfg(name="LINPACK").resolve()


def test_protocol_from_kwargs_maps_legacy_names():
    cfg = ProtocolCfg.from_kwargs(rendezvous_protocol="rget", eager_threshold=0)
    assert cfg.rendezvous == "rget"
    assert cfg.eager_threshold == 0
    with pytest.raises(TypeError, match="unknown protocol keyword"):
        ProtocolCfg.from_kwargs(rendezvous="rget")


# -- scheme overrides block ---------------------------------------------------


def test_scheme_from_overrides_inverts_overrides_dict():
    block = {"threshold_bytes": 512 * KiB, "capacity": 64, "name": "Tuned"}
    cfg = SchemeCfg.from_overrides("Proposed", block)
    assert cfg.fusion.threshold_bytes == 512 * KiB
    assert cfg.fusion.capacity == 64
    assert cfg.label == "Tuned"
    assert cfg.overrides_dict() == block
    assert SchemeCfg(name="GPU-Async").overrides_dict() == {}


def test_scheme_fusion_configured_flags():
    assert not SchemeCfg().fusion_configured
    assert SchemeCfg(fusion=FusionCfg(capacity=4)).fusion_configured
    assert SchemeCfg(label="Tuned").fusion_configured


# -- canonical hash -----------------------------------------------------------


def test_default_hash_matches_golden_pin():
    assert ExperimentConfig.default().content_hash() == GOLDEN_DEFAULT_HASH


def test_hash_changes_with_any_knob():
    base = ExperimentConfig.default()
    seen = {base.content_hash()}
    for overrides in (
        {"workload.dim": 2000},
        {"scheme.fusion.threshold_bytes": 512 * KiB},
        {"protocol.rendezvous": "rget"},
        {"harness.seed": 7},
        {"noise.cv": 0.05},
        {"faults.preset": "light"},
    ):
        h = base.with_overrides(overrides).content_hash()
        assert h not in seen, overrides
        seen.add(h)


def _hash_in_subprocess(hashseed: str) -> str:
    src_root = pathlib.Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=str(src_root))
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.config import ExperimentConfig; "
            "print(ExperimentConfig.default().content_hash())",
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout.strip()


def test_hash_stable_across_processes_and_hashseeds():
    assert _hash_in_subprocess("0") == GOLDEN_DEFAULT_HASH
    assert _hash_in_subprocess("12345") == GOLDEN_DEFAULT_HASH


# -- diff ---------------------------------------------------------------------


def test_diff_reports_dotted_paths():
    a = ExperimentConfig.default()
    b = a.with_overrides(
        {"workload.dim": 2000, "scheme.fusion.capacity": 64}
    )
    assert a.diff(a) == {}
    assert a.diff(b) == {
        "workload.dim": (1000, 2000),
        "scheme.fusion.capacity": (None, 64),
    }


# -- the sweep cache key derives from the config hash -------------------------


def test_cache_key_tracks_config_hash():
    spec = ExperimentSpec("fig09", "Proposed/1000", dim=1000)
    same = ExperimentSpec("fig09", "Proposed/1000", dim=1000)
    other_cfg = ExperimentSpec("fig09", "Proposed/1000", dim=2000)
    other_id = ExperimentSpec("fig09", "Proposed/2000", dim=1000)
    assert spec.cache_key("s") == same.cache_key("s")
    assert spec.cache_key("s") != other_cfg.cache_key("s")
    assert spec.cache_key("s") != other_id.cache_key("s")
    assert spec.cache_key("s") != spec.cache_key("t")
