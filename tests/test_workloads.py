"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE
from repro.workloads import (
    WORKLOADS,
    boundary_displacements,
    halo_2d,
    halo_3d,
    milc_su3_zdown,
    nas_mg_face,
    specfem3d_cm,
    specfem3d_oc,
)


def test_registry_has_core_four():
    """The paper's four evaluated workloads are always registered
    (extended future-work workloads come on top)."""
    assert {"specfem3D_oc", "specfem3D_cm", "MILC", "NAS_MG"} <= set(WORKLOADS)


# -- specfem (sparse) ----------------------------------------------------------


def test_specfem_oc_is_sparse_tiny_blocks():
    spec = specfem3d_oc(2000)
    assert spec.layout_class == "sparse"
    lay = spec.datatype.flatten()
    assert lay.num_blocks > 1000  # "thousands of small blocks"
    assert lay.mean_block == pytest.approx(4.0)  # single floats
    assert spec.message_bytes == 2000 * 4


def test_specfem_cm_struct_on_indexed():
    spec = specfem3d_cm(1000)
    lay = spec.datatype.flatten()
    assert spec.layout_class == "sparse"
    assert lay.num_blocks > 2000  # 3 components x ~1000 blocks
    assert lay.mean_block < 16
    assert spec.message_bytes == 3 * 1000 * 12


def test_specfem_deterministic_given_seed():
    a = specfem3d_oc(500).datatype.flatten()
    b = specfem3d_oc(500).datatype.flatten()
    assert a == b


def test_boundary_displacements_non_adjacent():
    disp = boundary_displacements(1000, 4000)
    assert len(disp) == 1000
    assert np.all(np.diff(disp) >= 1)
    assert disp[-1] < 4000


def test_boundary_displacements_validation():
    with pytest.raises(ValueError):
        boundary_displacements(0, 100)
    with pytest.raises(ValueError):
        boundary_displacements(100, 150)


# -- MILC / NAS (dense) ---------------------------------------------------------------


def test_milc_dense_nested_vector():
    spec = milc_su3_zdown(16)
    lay = spec.datatype.flatten()
    assert spec.layout_class == "dense"
    assert lay.num_blocks == 16 * 16  # L^2 runs
    assert lay.mean_block == pytest.approx(24 * 16)  # 24 B/site x L
    assert spec.message_bytes == 24 * 16 ** 3


def test_milc_validation():
    with pytest.raises(ValueError):
        milc_su3_zdown(1)


def test_nas_mg_vector_face():
    spec = nas_mg_face(64)
    lay = spec.datatype.flatten()
    assert spec.layout_class == "dense"
    assert lay.num_blocks == 64
    assert lay.mean_block == pytest.approx(64 * 8)
    assert spec.message_bytes == 64 * 64 * 8


def test_nas_validation():
    with pytest.raises(ValueError):
        nas_mg_face(1)


def test_sparse_vs_dense_block_taxonomy():
    """The paper's classification: sparse has far more, far smaller
    blocks than dense at comparable message size."""
    sparse = specfem3d_cm(2000)  # ~70 KB
    dense = milc_su3_zdown(14)  # ~66 KB
    s_lay = sparse.datatype.flatten()
    d_lay = dense.datatype.flatten()
    assert s_lay.num_blocks > 10 * d_lay.num_blocks
    assert s_lay.mean_block < d_lay.mean_block / 10


def test_spec_helpers():
    spec = nas_mg_face(32)
    assert spec.num_blocks == 32
    assert spec.buffer_bytes() >= spec.message_bytes
    assert "NAS_MG" in spec.summary()


# -- halo schedules --------------------------------------------------------------------


def test_halo_2d_four_neighbors():
    sched = halo_2d((16, 16))
    assert len(sched.neighbors) == 4
    dirs = {n.direction for n in sched.neighbors}
    assert dirs == {(-1, 0), (1, 0), (0, -1), (0, 1)}


def test_halo_2d_corners():
    assert len(halo_2d((8, 8), corners=True).neighbors) == 8


def test_halo_3d_neighbor_counts():
    assert len(halo_3d((8, 8, 8), corners=False).neighbors) == 6
    assert len(halo_3d((8, 8, 8), corners=True).neighbors) == 26


def test_halo_send_recv_sizes_match():
    sched = halo_3d((8, 8, 8))
    for n in sched.neighbors:
        assert n.send_type.size == n.recv_type.size == n.nbytes


def test_halo_face_bigger_than_corner():
    sched = halo_3d((8, 8, 8))
    sizes = {n.direction: n.nbytes for n in sched.neighbors}
    assert sizes[(1, 0, 0)] == 8 * 8 * 8  # face: 64 doubles
    assert sizes[(1, 1, 1)] == 8  # corner: 1 double


def test_halo_regions_well_formed():
    """Recv ghost regions are pairwise disjoint (each ghost cell has
    exactly one producer); send regions live in the interior, recv
    regions in the ghost shell, so the two never overlap.  (Send
    regions of different directions legitimately share corner cells —
    the same interior value goes to face, edge, and corner neighbors.)
    """
    sched = halo_2d((6, 6), corners=True)
    n_side = 6 + 2  # interior + ghost
    ghost = sched.ghost

    def is_interior(byte_idx):
        elem = byte_idx // 8
        i, j = divmod(elem, n_side)
        return ghost <= i < n_side - ghost and ghost <= j < n_side - ghost

    recv_bytes = set()
    for n in sched.neighbors:
        s = set(n.send_type.flatten().gather_index().tolist())
        r = set(n.recv_type.flatten().gather_index().tolist())
        assert all(is_interior(b) for b in s)
        assert not any(is_interior(b) for b in r)
        assert not (recv_bytes & r)
        recv_bytes |= r


def test_halo_symmetric_exchange_consistency():
    """A neighbor's send box has the same shape as the opposite
    direction's recv box (what makes peer exchanges line up)."""
    sched = halo_3d((6, 6, 6))
    by_dir = {n.direction: n for n in sched.neighbors}
    for direction, n in by_dir.items():
        opposite = tuple(-d for d in direction)
        assert n.send_type.size == by_dir[opposite].recv_type.size


def test_halo_validation():
    with pytest.raises(ValueError):
        halo_2d((4, 4), ghost=0)
    with pytest.raises(ValueError):
        halo_2d((2, 2), ghost=3)
    with pytest.raises(ValueError):
        halo_2d((4, 4, 4))  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        halo_3d((4, 4))  # type: ignore[arg-type]


def test_halo_schedule_totals():
    sched = halo_2d((8, 8))
    assert sched.array_bytes == 10 * 10 * 8
    assert sched.total_bytes == sum(n.nbytes for n in sched.neighbors)
    assert sched.base is DOUBLE
