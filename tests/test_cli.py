"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in (
        "compare", "breakdown", "sweep", "autotune", "faults",
        "workloads", "timeline",
    ):
        assert command in text


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("specfem3D_oc", "specfem3D_cm", "MILC", "NAS_MG", "WRF"):
        assert name in out


def test_compare_command(capsys):
    rc = main([
        "compare", "--workload", "NAS_MG", "--dim", "32",
        "--nbuffers", "4", "--iterations", "2", "--skip-production",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Proposed" in out and "GPU-Sync" in out
    assert "speedup over GPU-Sync" in out


def test_breakdown_command(capsys):
    rc = main([
        "breakdown", "--workload", "MILC", "--dim", "8",
        "--nbuffers", "4", "--iterations", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pack" in out and "launch" in out and "comm" in out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--workload", "NAS_MG", "--dim", "64", "--nbuffers", "8",
        "--iterations", "2", "--thresholds", "16", "512",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "16KB" in out and "512KB" in out


def test_timeline_command(capsys):
    rc = main([
        "timeline", "--scheme", "GPU-Sync", "--workload", "NAS_MG",
        "--dim", "32", "--nbuffers", "2", "--iterations", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "|" in out  # a rendered chart


def test_autotune_command(capsys):
    rc = main([
        "autotune", "--workload", "NAS_MG", "--dim", "64", "--nbuffers", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "model-based recommendation" in out
    assert "empirical best" in out


def test_faults_command(capsys):
    rc = main([
        "faults", "--workload", "NAS_MG", "--dim", "32", "--nbuffers", "4",
        "--iterations", "2", "--presets", "light", "heavy",
        "--seed", "7", "--verbose",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault-free baseline" in out
    assert "light" in out and "heavy" in out
    assert "bytes ok" in out
    assert "seed=7" in out


def test_seed_flag_reproduces_and_varies(capsys):
    def sweep(seed):
        main([
            "faults", "--workload", "NAS_MG", "--dim", "32", "--nbuffers",
            "4", "--iterations", "2", "--presets", "heavy", "--seed", seed,
        ])
        return capsys.readouterr().out

    first, again, other = sweep("1"), sweep("1"), sweep("99")
    assert first == again
    assert first != other


def test_noise_flag_accepted(capsys):
    rc = main([
        "compare", "--workload", "NAS_MG", "--dim", "32", "--nbuffers", "2",
        "--iterations", "2", "--skip-production", "--noise", "0.05",
    ])
    assert rc == 0
    assert "Proposed" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_describe_command(capsys):
    rc = main(["describe", "--workload", "MILC", "--dim", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hvector" in out and "flattened:" in out


def test_figure_sweep_command(capsys, tmp_path):
    cache = tmp_path / "cache"
    out = tmp_path / "results"
    metrics = tmp_path / "sweep.prom"
    argv = [
        "sweep", "--figure", "fig11", "--jobs", "1",
        "--cache-dir", str(cache), "--out", str(out),
        "--metrics", str(metrics), "--salt", "test",
    ]
    rc = main(argv)
    assert rc == 0
    cold = capsys.readouterr().out
    assert "fig11: 3 shards — 3 run, 0 cached" in cold
    artifact = out / "BENCH_fig11_breakdown.json"
    assert artifact.exists()
    assert "sweep_shards_total" in metrics.read_text()

    # Warm cache: identical artifact, zero shards re-run.
    before = artifact.read_bytes()
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "fig11: 3 shards — 0 run, 3 cached" in warm
    assert artifact.read_bytes() == before


def test_figure_sweep_no_cache(capsys, tmp_path):
    rc = main([
        "sweep", "--figure", "fig01", "--no-cache",
        "--out", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig01: 1 shards — 1 run, 0 cached" in out
    assert "cache:" not in out
    assert (tmp_path / "BENCH_fig01_launch_overhead.json").exists()


def test_config_in_help():
    assert "config" in build_parser().format_help()


def test_config_show_round_trips(capsys):
    import json

    from repro.config import ExperimentConfig

    assert main(["config", "show"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert ExperimentConfig.from_dict(data) == ExperimentConfig.default()


def test_config_hash_matches_library(capsys):
    from repro.config import ExperimentConfig

    assert main(["config", "hash"]) == 0
    assert capsys.readouterr().out.strip() == (
        ExperimentConfig.default().content_hash()
    )


def test_config_set_overrides(capsys):
    import json

    assert main([
        "config", "show",
        "--set", "workload.dim=2000",
        "--set", "scheme.name=GPU-Async",
    ]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"]["dim"] == 2000
    assert data["scheme"]["name"] == "GPU-Async"

    assert main(["config", "hash", "--set", "workload.dim=2000"]) == 0
    changed = capsys.readouterr().out.strip()
    assert main(["config", "hash"]) == 0
    assert changed != capsys.readouterr().out.strip()


def test_config_set_rejects_unknown_path_and_bad_syntax(capsys):
    with pytest.raises(ValueError, match="unknown config path"):
        main(["config", "hash", "--set", "workload.dimension=2000"])
    with pytest.raises(SystemExit, match="PATH=VALUE"):
        main(["config", "hash", "--set", "workload.dim"])


def test_config_diff_files(capsys, tmp_path):
    import json

    from repro.config import ExperimentConfig

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    base = ExperimentConfig.default()
    a.write_text(json.dumps(base.to_dict()))
    b.write_text(json.dumps(
        base.with_overrides({"workload.dim": 2000}).to_dict()
    ))
    assert main(["config", "diff", str(a), str(a)]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["config", "diff", str(a), str(b)]) == 1
    assert "workload.dim: 1000 -> 2000" in capsys.readouterr().out


def test_config_show_from_file(capsys, tmp_path):
    import json

    from repro.config import ExperimentConfig

    path = tmp_path / "cfg.json"
    cfg = ExperimentConfig.default().with_overrides({"harness.seed": 7})
    path.write_text(json.dumps(cfg.to_dict()))
    assert main(["config", "hash", "--file", str(path)]) == 0
    assert capsys.readouterr().out.strip() == cfg.content_hash()
    assert main([
        "config", "hash", "--file", str(path), "--set", "harness.seed=8",
    ]) == 0
    assert capsys.readouterr().out.strip() != cfg.content_hash()
