"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in (
        "compare", "breakdown", "sweep", "autotune", "faults",
        "workloads", "timeline",
    ):
        assert command in text


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("specfem3D_oc", "specfem3D_cm", "MILC", "NAS_MG", "WRF"):
        assert name in out


def test_compare_command(capsys):
    rc = main([
        "compare", "--workload", "NAS_MG", "--dim", "32",
        "--nbuffers", "4", "--iterations", "2", "--skip-production",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Proposed" in out and "GPU-Sync" in out
    assert "speedup over GPU-Sync" in out


def test_breakdown_command(capsys):
    rc = main([
        "breakdown", "--workload", "MILC", "--dim", "8",
        "--nbuffers", "4", "--iterations", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pack" in out and "launch" in out and "comm" in out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--workload", "NAS_MG", "--dim", "64", "--nbuffers", "8",
        "--iterations", "2", "--thresholds", "16", "512",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "16KB" in out and "512KB" in out


def test_timeline_command(capsys):
    rc = main([
        "timeline", "--scheme", "GPU-Sync", "--workload", "NAS_MG",
        "--dim", "32", "--nbuffers", "2", "--iterations", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "|" in out  # a rendered chart


def test_autotune_command(capsys):
    rc = main([
        "autotune", "--workload", "NAS_MG", "--dim", "64", "--nbuffers", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "model-based recommendation" in out
    assert "empirical best" in out


def test_faults_command(capsys):
    rc = main([
        "faults", "--workload", "NAS_MG", "--dim", "32", "--nbuffers", "4",
        "--iterations", "2", "--presets", "light", "heavy",
        "--seed", "7", "--verbose",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault-free baseline" in out
    assert "light" in out and "heavy" in out
    assert "bytes ok" in out
    assert "seed=7" in out


def test_seed_flag_reproduces_and_varies(capsys):
    def sweep(seed):
        main([
            "faults", "--workload", "NAS_MG", "--dim", "32", "--nbuffers",
            "4", "--iterations", "2", "--presets", "heavy", "--seed", seed,
        ])
        return capsys.readouterr().out

    first, again, other = sweep("1"), sweep("1"), sweep("99")
    assert first == again
    assert first != other


def test_noise_flag_accepted(capsys):
    rc = main([
        "compare", "--workload", "NAS_MG", "--dim", "32", "--nbuffers", "2",
        "--iterations", "2", "--skip-production", "--noise", "0.05",
    ])
    assert rc == 0
    assert "Proposed" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_describe_command(capsys):
    rc = main(["describe", "--workload", "MILC", "--dim", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hvector" in out and "flattened:" in out


def test_figure_sweep_command(capsys, tmp_path):
    cache = tmp_path / "cache"
    out = tmp_path / "results"
    metrics = tmp_path / "sweep.prom"
    argv = [
        "sweep", "--figure", "fig11", "--jobs", "1",
        "--cache-dir", str(cache), "--out", str(out),
        "--metrics", str(metrics), "--salt", "test",
    ]
    rc = main(argv)
    assert rc == 0
    cold = capsys.readouterr().out
    assert "fig11: 3 shards — 3 run, 0 cached" in cold
    artifact = out / "BENCH_fig11_breakdown.json"
    assert artifact.exists()
    assert "sweep_shards_total" in metrics.read_text()

    # Warm cache: identical artifact, zero shards re-run.
    before = artifact.read_bytes()
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "fig11: 3 shards — 0 run, 3 cached" in warm
    assert artifact.read_bytes() == before


def test_figure_sweep_no_cache(capsys, tmp_path):
    rc = main([
        "sweep", "--figure", "fig01", "--no-cache",
        "--out", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig01: 1 shards — 1 run, 0 cached" in out
    assert "cache:" not in out
    assert (tmp_path / "BENCH_fig01_launch_overhead.json").exists()
