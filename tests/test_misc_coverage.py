"""Assorted coverage: device facade, arch registry, report edges,
engine corner cases that the focused suites don't reach."""

import numpy as np
import pytest

from repro.bench import ExperimentResult, format_latency_table
from repro.gpu import (
    ARCHITECTURES,
    GPUDevice,
    TESLA_K80,
    TESLA_P100,
    TESLA_V100,
    TESLA_V100_PCIE,
)
from repro.sim import AllOf, AnyOf, Category, Simulator
from repro.datatypes import DataLayout


# -- architectures ---------------------------------------------------------------


def test_arch_registry_contents():
    assert {"Tesla K80", "Tesla P100", "Tesla V100", "Quadro GV100"} <= set(
        ARCHITECTURES
    )
    for arch in ARCHITECTURES.values():
        assert arch.kernel_launch_overhead > 0
        assert arch.mem_bandwidth > 0
        assert arch.block_bandwidth == pytest.approx(
            arch.mem_bandwidth / arch.saturation_blocks
        )


def test_arch_generations_ordered():
    assert TESLA_K80.year < TESLA_P100.year < TESLA_V100.year
    assert TESLA_K80.mem_bandwidth < TESLA_V100.mem_bandwidth


def test_pcie_variant_slower_driver():
    assert TESLA_V100_PCIE.kernel_launch_overhead > TESLA_V100.kernel_launch_overhead
    assert TESLA_V100_PCIE.mem_bandwidth == TESLA_V100.mem_bandwidth  # same silicon


# -- device facade ------------------------------------------------------------------


def test_device_stream_and_event_factories():
    sim = Simulator()
    dev = GPUDevice(sim, TESLA_V100)
    s1 = dev.create_stream("extra")
    assert s1.name == "extra"
    assert len(dev.streams) == 2
    ev = dev.create_event("e")
    assert not ev.recorded
    assert repr(dev).startswith("<GPUDevice")


def test_device_ids_unique():
    sim = Simulator()
    a, b = GPUDevice(sim), GPUDevice(sim)
    assert a.device_id != b.device_id
    assert a.engine is not b.engine  # independent devices overlap


# -- engine corners --------------------------------------------------------------------


def test_nested_conditions():
    sim = Simulator()
    inner = AnyOf(sim, [sim.timeout(1.0), sim.timeout(5.0)])
    outer = AllOf(sim, [inner, sim.timeout(2.0)])
    sim.run(outer)
    assert sim.now == pytest.approx(2.0)


def test_anyof_failure_propagates():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("x"), delay=1.0)
    cond = AnyOf(sim, [bad, sim.timeout(10.0)])
    with pytest.raises(RuntimeError):
        sim.run(cond)


def test_process_waits_on_finished_process():
    sim = Simulator()

    def quick():
        return 5
        yield

    p = sim.process(quick())
    sim.run(p)

    def late():
        value = yield p  # already finished
        return value

    assert sim.run(sim.process(late())) == 5


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)

    sim.run(sim.process(proc()))
    assert got == ["payload"]


# -- report edges ------------------------------------------------------------------------


def _fake(scheme, latency):
    r = ExperimentResult(scheme=scheme, workload="w", system="s", nbuffers=1, dim=1)
    r.latencies = [latency]
    r.breakdown = {c: 0.0 for c in Category}
    return r


def test_latency_table_without_baseline():
    text = format_latency_table({"A": {1: _fake("A", 1e-4)}}, title="t")
    assert "speedup" not in text


def test_latency_table_unknown_baseline_ignored():
    text = format_latency_table(
        {"A": {1: _fake("A", 1e-4)}}, title="t", baseline="nope"
    )
    assert "speedup" not in text


def test_experiment_result_nan_when_empty():
    r = ExperimentResult(scheme="s", workload="w", system="x", nbuffers=1, dim=1)
    assert np.isnan(r.mean_latency)
    assert np.isnan(r.min_latency)


# -- layout odds and ends ---------------------------------------------------------------


def test_layout_slice_and_density_roundtrip():
    lay = DataLayout([0, 100, 200], [10, 10, 10])
    assert lay.slice_blocks(0, 2).size == 20
    assert 0 < lay.density < 1
    assert lay.replicate(1) is lay
