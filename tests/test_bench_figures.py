"""Tests for the figure plans (``repro.bench.figures``).

Shard expansion is pure planning — no simulation — so every figure's
grid shape, key uniqueness, and tuning logic can be checked cheaply.
Only the fig11/fig01 smoke tests actually run the simulator.
"""

import pytest

from repro.bench.figures import (
    FIG08_DIMS,
    FIG08_THRESHOLDS,
    FIG12_SWEEPS,
    FIGURES,
    TUNE_CANDIDATES,
    run_figure,
    tuned_thresholds,
)
from repro.bench.sweep import ResultCache, SweepResult


def _fake_view(mean_latency):
    return SweepResult({"key": "fake", "mean_latency": mean_latency})


def _fake_tuning(latency=1.0):
    """A complete tuning-phase views mapping with uniform latencies."""
    return {
        f"tune/{workload}/thr={thr // 1024}KB": _fake_view(latency)
        for workload in FIG12_SWEEPS
        for thr in TUNE_CANDIDATES
    }


EXPECTED_SHARDS = {
    "fig01": 1,   # one launch-overhead table
    "fig08": 24,  # 8 thresholds x 3 dims
    "fig09": 20,  # 4 schemes x 5 nbuffers
    "fig10": 40,  # 4 schemes x 5 nbuffers x 2 dims (big + small inset)
    "fig11": 3,   # 3 schemes
    "fig12": 95,  # 5 schemes x 19 workload/dim points
    "fig13": 101, # ABCI grid + 6 Lassen comparison shards
    "fig14": 16,  # 4 schemes x 2 workloads x 2 dims
}


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_expansion_keys_are_unique(figure):
    specs = FIGURES[figure].expand(_fake_tuning())
    keys = [s.key for s in specs]
    assert len(keys) == len(set(keys))
    assert all(s.experiment == FIGURES[figure].experiment for s in specs)


@pytest.mark.parametrize("figure, count", sorted(EXPECTED_SHARDS.items()))
def test_expansion_counts(figure, count):
    assert len(FIGURES[figure].expand(_fake_tuning())) == count


def test_fig08_grid_covers_every_threshold_dim_pair():
    keys = {s.key for s in FIGURES["fig08"].expand({})}
    for dim in FIG08_DIMS:
        for thr in FIG08_THRESHOLDS:
            assert f"thr={thr // 1024}KB/dim={dim}" in keys


def test_fig12_tuning_phase_shape():
    tuning = FIGURES["fig12"].tuning()
    # 4 workloads x 3 candidate thresholds, at the mid dim of each sweep
    assert len(tuning) == len(FIG12_SWEEPS) * len(TUNE_CANDIDATES)
    assert {t.key for t in tuning} == set(_fake_tuning())
    # candidates only vary the fusion threshold
    assert all(
        t.config.get("threshold_bytes") in TUNE_CANDIDATES for t in tuning
    )


def test_tuned_thresholds_first_wins_tie_break():
    # All candidates equal -> the first candidate wins, so a re-run
    # cannot flip the tuned threshold on floating-point ties.
    thresholds = tuned_thresholds(_fake_tuning())
    assert set(thresholds) == set(FIG12_SWEEPS)
    assert all(thr == TUNE_CANDIDATES[0] for thr in thresholds.values())


def test_tuned_thresholds_picks_fastest():
    workload = next(iter(FIG12_SWEEPS))
    fake = _fake_tuning(latency=2.0)
    fake[f"tune/{workload}/thr={TUNE_CANDIDATES[-1] // 1024}KB"] = _fake_view(0.5)
    thresholds = tuned_thresholds(fake)
    assert thresholds[workload] == TUNE_CANDIDATES[-1]
    others = [w for w in FIG12_SWEEPS if w != workload]
    assert all(thresholds[w] == TUNE_CANDIDATES[0] for w in others)


def test_tuned_threshold_reaches_grid_specs():
    fake = _fake_tuning(latency=2.0)
    for workload in FIG12_SWEEPS:
        fake[f"tune/{workload}/thr={TUNE_CANDIDATES[-1] // 1024}KB"] = _fake_view(0.5)
    grid = FIGURES["fig12"].expand(fake)
    tuned = [s for s in grid if s.scheme == "Proposed-Tuned"]
    assert tuned
    assert all(
        s.config["threshold_bytes"] == TUNE_CANDIDATES[-1] for s in tuned
    )


def test_fig13_includes_lassen_comparison_shards():
    specs = FIGURES["fig13"].expand(_fake_tuning())
    keys = {s.key for s in specs}
    assert "lassen_milc/GPU-Async/dim=16" in keys
    lassen = [s for s in specs if s.key.startswith("lassen")]
    assert lassen and all(s.system == "Lassen" for s in lassen)
    abci = [s for s in specs if not s.key.startswith("lassen")]
    assert abci and all(s.system == "ABCI" for s in abci)


def test_run_figure_smoke_and_artifact(tmp_path):
    cache = ResultCache(tmp_path)
    run = run_figure("fig11", cache=cache, salt="test")
    assert len(run.entries) == 3
    assert run.stats.ran == 3 and run.stats.hits == 0
    assert set(run.views) == {"GPU-Sync", "GPU-Async", "Proposed"}

    doc = run.artifact_doc()
    assert doc["experiment"] == run.experiment
    assert [e["key"] for e in doc["entries"]] == [e["key"] for e in run.entries]

    warm = run_figure("fig11", cache=cache, salt="test")
    assert warm.stats.hits == 3 and warm.stats.ran == 0
    assert warm.artifact_doc() == doc


def test_fig01_artifact_is_a_data_table():
    run = run_figure("fig01")
    doc = run.artifact_doc()
    assert doc["entries"] == []
    assert "Tesla V100" in doc["data"]


def test_unknown_figure_rejected():
    with pytest.raises(KeyError):
        run_figure("fig99")
