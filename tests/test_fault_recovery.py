"""Integration tests: every transfer path survives injected faults.

Each layer's recovery mechanism is exercised in isolation with forced
(deterministic) fault decisions, then end-to-end through the bulk
exchange.  The invariant throughout: faults cost time, never
correctness.
"""

import numpy as np
import pytest

from repro.bench import run_bulk_exchange
from repro.core import FusionPolicy, FusionScheduler
from repro.datatypes import DataLayout
from repro.net import Cluster, LASSEN, Link, LinkSpec
from repro.schemes import SCHEME_REGISTRY
from repro.sim import FAULT_PRESETS, FaultPlan, FaultSpec, Simulator, Trace
from repro.workloads import WORKLOADS

SPEC = WORKLOADS["specfem3D_cm"]


class ForcedFaults(FaultPlan):
    """A plan whose decisions are scripted instead of drawn."""

    def __init__(self, **scripts):
        super().__init__(seed=0)
        # each script is a list of booleans consumed in call order
        self._scripts = {k: list(v) for k, v in scripts.items()}

    def _pop(self, kind):
        script = self._scripts.get(kind)
        return bool(script.pop(0)) if script else False

    def transfer_fails(self, link):
        if self._pop("transfer"):
            self.stats.transfer_failures += 1
            return True
        return False

    def drop_control(self, kind):
        if self._pop(kind):
            self.stats.control_drops += 1
            return True
        return False

    def launch_fails(self):
        if self._pop("launch"):
            self.stats.launch_failures += 1
            return True
        return False

    def straggler_multiplier(self):
        if self._pop("straggler"):
            self.stats.stragglers += 1
            return 1000.0
        return 1.0

    def ring_rejects(self):
        if self._pop("ring"):
            self.stats.ring_rejections += 1
            return True
        return False


def _drive(sim, gen):
    result = {}

    def proc():
        result["value"] = yield from gen

    p = sim.process(proc())
    sim.run(p)
    return result["value"]


# -- LinkSpec validation (satellite) -------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"bandwidth": 0.0, "latency": 1e-6},
    {"bandwidth": -1e9, "latency": 1e-6},
    {"bandwidth": float("nan"), "latency": 1e-6},
    {"bandwidth": 1e9, "latency": -1e-6},
])
def test_linkspec_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        LinkSpec(name="bad", **kwargs)


def test_linkspec_accepts_zero_latency():
    LinkSpec(name="ideal", bandwidth=1e9, latency=0.0)


# -- link retransmission ---------------------------------------------------------


def test_link_retransmits_until_success():
    sim = Simulator()
    sim.faults = ForcedFaults(transfer=[True, True, False])
    link = Link(sim, LinkSpec("ib", bandwidth=10e9, latency=1e-6))
    elapsed = _drive(sim, link.transmit(1 << 20))
    clean = link.spec.transfer_time(1 << 20)
    assert link.retransmits == 2
    assert link.transfer_count == 1
    # Two lost attempts + two backoffs + the successful attempt.
    assert elapsed == pytest.approx(3 * clean + (1e-6 + 2e-6))
    assert link.fault_delay == pytest.approx(2 * clean + (1e-6 + 2e-6))


def test_link_backoff_is_capped():
    from repro.net.link import BACKOFF_CAP_FACTOR

    sim = Simulator()
    nfail = 12
    sim.faults = ForcedFaults(transfer=[True] * nfail + [False])
    link = Link(sim, LinkSpec("ib", bandwidth=10e9, latency=1e-6))
    _drive(sim, link.transmit(4096))
    assert link.retransmits == nfail
    clean = link.spec.transfer_time(4096)
    backoffs = 0.0
    b = link.spec.latency
    for _ in range(nfail):
        backoffs += b
        b = min(2 * b, BACKOFF_CAP_FACTOR * link.spec.latency)
    assert link.fault_delay == pytest.approx(nfail * clean + backoffs)


def test_link_flap_holds_the_port():
    spec = FaultSpec(link_flap=1.0, flap_downtime=123e-6)
    sim = Simulator()
    sim.faults = FaultPlan(seed=0, spec=spec)
    link = Link(sim, LinkSpec("ib", bandwidth=10e9, latency=1e-6))
    elapsed = _drive(sim, link.transmit(4096))
    assert elapsed == pytest.approx(123e-6 + link.spec.transfer_time(4096))
    assert sim.faults.stats.link_flaps == 1


def test_fault_free_transmit_unchanged():
    sim = Simulator()
    link = Link(sim, LinkSpec("ib", bandwidth=10e9, latency=1e-6))
    elapsed = _drive(sim, link.transmit(1 << 16))
    assert elapsed == pytest.approx(link.spec.transfer_time(1 << 16))
    assert link.retransmits == 0 and link.fault_delay == 0.0


# -- control-plane watchdogs -------------------------------------------------------


def _exchange(faults, *, protocol="rput", nbuffers=2, scheme="Proposed"):
    return run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY[scheme], SPEC(200),
        nbuffers=nbuffers, iterations=2, warmup=1,
        eager_threshold=0, rendezvous_protocol=protocol,
        faults=faults,
    )


@pytest.mark.parametrize("protocol", ["rput", "rget"])
def test_rts_drop_recovered_by_watchdog(protocol):
    # Drop the first two RTS packets; the sender watchdogs re-send.
    faults = ForcedFaults(rts=[True, True])
    result = _exchange(faults, protocol=protocol)
    assert result.recovery.rts_retransmits >= 2
    assert faults.stats.control_drops == 2
    # run_bulk_exchange verified every delivered byte already.


def test_cts_drop_recovered_by_duplicate_rts():
    # Lose the first CTS; the sender's RTS watchdog fires, the duplicate
    # RTS reaches the matched record, and the receiver re-offers CTS.
    faults = ForcedFaults(cts=[True])
    result = _exchange(faults, protocol="rput")
    assert result.recovery.cts_resends >= 1
    assert result.recovery.rts_retransmits >= 1


def test_control_drops_under_preset_all_protocols():
    for protocol in ("rput", "rget"):
        plan = FaultPlan(seed=11, spec=FaultSpec(control_drop=0.5))
        result = _exchange(plan, protocol=protocol, nbuffers=4)
        assert plan.stats.control_drops > 0
        assert result.recovery.rts_retransmits > 0


# -- scheduler degradation ladder ---------------------------------------------------


@pytest.fixture()
def env():
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1)
    return sim, cluster.site(0)


def _op(site, nbytes=8192, blocks=32, seed=0):
    dev = site.device
    step = max(2, 2 * (nbytes // blocks))
    lay = DataLayout(
        np.arange(blocks, dtype=np.int64) * step,
        np.full(blocks, nbytes // blocks, dtype=np.int64),
    )
    src = dev.alloc(int(lay.offsets[-1] + lay.lengths[-1]) + 8)
    src.data[:] = np.random.default_rng(seed).integers(0, 256, src.nbytes)
    return dev.pack_op(src, lay, dev.alloc(lay.size))


def _sched(site, trace=None, **kwargs):
    return FusionScheduler(
        site, trace if trace is not None else Trace(),
        FusionPolicy(threshold_bytes=1 << 30), **kwargs
    )


def test_ladder_rung1_relaunch(env):
    sim, site = env
    sim.faults = ForcedFaults(launch=[True, False])
    sched = _sched(site)
    reqs = []
    for _ in range(4):
        reqs.append(_drive(sim, sched.enqueue(_op(site))))
    _drive(sim, sched.flush())
    sim.run()
    assert sched.stats.launch_failures == 1
    assert sched.stats.relaunches == 1
    assert sched.stats.batch_splits == 0
    assert sched.stats.launches == 1
    assert sched.stats.batch_sizes == [4]
    assert all(r.complete for r in reqs)


def test_ladder_rung2_split(env):
    sim, site = env
    # First launch fails, relaunch fails -> split; both halves succeed.
    sim.faults = ForcedFaults(launch=[True, True, False, False])
    sched = _sched(site)
    reqs = []
    for _ in range(4):
        reqs.append(_drive(sim, sched.enqueue(_op(site))))
    _drive(sim, sched.flush())
    sim.run()
    assert sched.stats.relaunches == 1
    assert sched.stats.batch_splits == 1
    assert sched.stats.launches == 2
    assert sorted(sched.stats.batch_sizes) == [2, 2]
    assert all(r.complete for r in reqs)


def test_ladder_rung3_degraded_single(env):
    sim, site = env
    # Batch fails twice -> split; each half fails twice -> degraded;
    # each degraded launch then sticks on its first attempt.
    sim.faults = ForcedFaults(
        launch=[True, True, True, True, False, True, True, False]
    )
    sched = _sched(site)
    reqs = [_drive(sim, sched.enqueue(_op(site))) for _ in range(2)]
    _drive(sim, sched.flush())
    sim.run()
    assert sched.stats.batch_splits == 1
    assert sched.stats.relaunches == 3  # batch + each half
    assert sched.stats.sync_fallbacks == 2
    assert sched.stats.launch_failures == 6
    assert all(r.complete for r in reqs)
    assert sched.stats.recoveries >= 4


def test_ladder_byte_exact_under_failures(env):
    sim, site = env
    dev = site.device
    sim.faults = ForcedFaults(launch=[True, True, True, False])
    sched = _sched(site)
    lay = DataLayout([0, 64], [16, 16])
    srcs, dsts = [], []
    for i in range(3):
        src = dev.alloc(96, fill=i + 1)
        dst = dev.alloc(32)
        srcs.append(src)
        dsts.append(dst)
        _drive(sim, sched.enqueue(dev.pack_op(src, lay, dst)))
    _drive(sim, sched.flush())
    sim.run()
    for i, dst in enumerate(dsts):
        assert (dst.data == i + 1).all()


def test_forced_ring_pressure_takes_fallback_path(env):
    sim, site = env
    sim.faults = ForcedFaults(ring=[False, True, False])
    sched = _sched(site)
    assert _drive(sim, sched.enqueue(_op(site))) is not None
    assert _drive(sim, sched.enqueue(_op(site))) is None  # forced reject
    assert _drive(sim, sched.enqueue(_op(site))) is not None
    assert sched.stats.fallbacks == 1
    assert sched.stats.enqueued == 2


def test_scheme_launch_retry_on_driver_failure(env):
    """Per-operation launches in the baseline schemes also survive
    injected driver failures (not just fused launches)."""
    from repro.sim import Category

    sim, site = env
    sim.faults = ForcedFaults(launch=[True, True, False])
    scheme = SCHEME_REGISTRY["GPU-Sync"](site, Trace())
    op = _op(site)

    def proc():
        yield from scheme.submit(op)

    sim.run(sim.process(proc()))
    assert scheme.launch_retries == 2
    launch_oh = site.device.arch.kernel_launch_overhead
    # Three launch attempts charged to LAUNCH, two backoffs to SYNC.
    assert scheme.trace.total(Category.LAUNCH) == pytest.approx(3 * launch_oh)


def test_scheme_launch_clean_path_single_charge(env):
    from repro.sim import Category

    sim, site = env
    scheme = SCHEME_REGISTRY["GPU-Sync"](site, Trace())
    op = _op(site)

    def proc():
        yield from scheme.submit(op)

    sim.run(sim.process(proc()))
    assert scheme.launch_retries == 0
    assert scheme.trace.total(Category.LAUNCH) == pytest.approx(
        site.device.arch.kernel_launch_overhead
    )


# -- deadline watchdog ---------------------------------------------------------------


def test_straggler_hits_deadline_and_relaunches(env):
    sim, site = env
    sim.faults = ForcedFaults(straggler=[True])
    sched = _sched(site, deadline_slack=0.0)
    reqs = [_drive(sim, sched.enqueue(_op(site, seed=i))) for i in range(3)]
    _drive(sim, sched.flush())
    sim.run()
    assert sim.faults.stats.stragglers == 1
    assert sched.stats.deadline_hits >= 1
    assert sched.stats.deadline_relaunches >= 1
    assert all(r.complete for r in reqs)


def test_duplicate_completion_suppressed(env):
    """The relaunched copy and the straggler both finish; the second
    completion must not re-apply the op (staging may be reused)."""
    sim, site = env
    dev = site.device
    sim.faults = ForcedFaults(straggler=[True])
    sched = _sched(site, deadline_slack=0.0)
    lay = DataLayout([0, 64], [16, 16])
    src = dev.alloc(96, fill=7)
    dst = dev.alloc(32)
    req = _drive(sim, sched.enqueue(dev.pack_op(src, lay, dst)))
    _drive(sim, sched.flush())
    sim.run()
    assert req.complete
    assert (dst.data == 7).all()
    # The straggling copy's late completion fired after the relaunch
    # finished; had it re-applied, a poisoned source would show here.
    src.data[:] = 0
    sim.run()
    assert (dst.data == 7).all()


def test_no_deadline_watchdog_without_faults(env):
    sim, site = env
    sched = _sched(site)
    _drive(sim, sched.enqueue(_op(site)))
    _drive(sim, sched.flush())
    sim.run()
    assert sched.stats.deadline_hits == 0
    assert sched.stats.recoveries == 0


# -- ring-full fallback recovery (satellite) ---------------------------------------


def test_ring_full_then_flush_and_reap_recovers(env):
    """The §IV-A2 fallback path: a full ring answers negative UID; after
    the pending batch launches, completes, and is reaped, the ring
    accepts work again."""
    sim, site = env
    sched = FusionScheduler(
        site, Trace(), FusionPolicy(threshold_bytes=1 << 30), capacity=2
    )
    first = [_drive(sim, sched.enqueue(_op(site, seed=i))) for i in range(2)]
    assert all(r is not None for r in first)
    # Ring full: the scheduler answers None (negative UID) — the engine
    # would take its GPU-Sync fallback for this op.
    assert _drive(sim, sched.enqueue(_op(site, seed=2))) is None
    assert sched.stats.fallbacks == 1

    _drive(sim, sched.flush())
    sim.run()  # batch completes
    assert all(r.complete for r in first)

    # reap() runs inside enqueue: the next enqueue must succeed.
    again = _drive(sim, sched.enqueue(_op(site, seed=3)))
    assert again is not None
    assert sched.stats.enqueued == 3
    _drive(sim, sched.flush())
    sim.run()
    assert again.complete


# -- end-to-end recovery report ------------------------------------------------------


def test_recovery_report_aggregates_all_layers():
    plan = FaultPlan(seed=3, spec=FAULT_PRESETS["heavy"])
    result = _exchange(plan, nbuffers=4)
    rec = result.recovery
    assert rec is not None
    assert rec.total_injected == plan.stats.total > 0
    assert rec.total_recoveries > 0
    assert "injected" in rec.describe()


def test_no_recovery_report_without_faults():
    result = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["Proposed"], SPEC(100),
        nbuffers=2, iterations=1, warmup=0, data_plane=False,
    )
    assert result.recovery is None


def test_inactive_plan_leaves_timeline_unchanged():
    """Attaching an all-zero plan arms the machinery but injects
    nothing — latencies must match the plan-free run exactly."""
    kwargs = dict(nbuffers=3, iterations=2, warmup=1, data_plane=False)
    clean = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["Proposed"], SPEC(100), **kwargs
    )
    armed = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["Proposed"], SPEC(100),
        faults=FaultPlan(seed=1), **kwargs
    )
    assert armed.latencies == clean.latencies
    assert armed.recovery.total_recoveries == 0
