"""Property-based tests (hypothesis) for the datatype engine.

The invariants DESIGN.md §6 promises:

* flattening produces sorted, non-overlapping blocks whose total length
  equals the datatype size;
* ``pack ∘ unpack`` is the identity on the selected bytes and touches
  nothing else;
* replication scales size linearly and preserves validity;
* coalescing is idempotent and conserves bytes.

Datatype trees are generated recursively over all constructors with
parameters chosen to keep typemaps non-overlapping (the class this
reproduction supports, and the class halo workloads occupy).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    DOUBLE,
    FLOAT,
    INT,
    Contiguous,
    DataLayout,
    Hvector,
    Indexed,
    Struct,
    Subarray,
    Vector,
    coalesce_blocks,
    pack_bytes,
    unpack_bytes,
)

PRIMITIVES = st.sampled_from([INT, FLOAT, DOUBLE])


def _vectors(children):
    return st.builds(
        lambda c, b, extra, base: Vector(c, b, b + extra, base),
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(0, 6),
        children,
    )


def _hvectors(children):
    # Byte stride at least the child's span so copies never overlap.
    return children.flatmap(
        lambda base: st.builds(
            lambda c, pad: Hvector(c, 1, max(1, base.flatten().span) + pad, base),
            st.integers(1, 5),
            st.integers(0, 32),
        )
    )


def _contiguous(children):
    return st.builds(Contiguous, st.integers(1, 5), children)


def _indexed(children):
    def build(base, lengths, gaps):
        disps = []
        cursor = 0
        for length, gap in zip(lengths, gaps):
            disps.append(cursor)
            cursor += length + gap
        return Indexed(lengths, disps, base)

    return children.flatmap(
        lambda base: st.builds(
            build,
            st.just(base),
            st.lists(st.integers(1, 4), min_size=1, max_size=5),
            st.lists(st.integers(1, 8), min_size=5, max_size=5),
        )
    )


def _structs(children):
    def build(members):
        disps = []
        cursor = 0
        for member in members:
            disps.append(cursor)
            flat = member.flatten()
            ub = int(flat.offsets[-1] + flat.lengths[-1]) if flat.num_blocks else 0
            cursor += max(ub, 1) + 8
        return Struct([1] * len(members), disps, members)

    return st.lists(children, min_size=1, max_size=3).map(build)


def _subarrays(_children):
    def build(sizes, fractions):
        subs, starts = [], []
        for n, frac in zip(sizes, fractions):
            sub = max(1, int(n * frac))
            subs.append(sub)
            starts.append((n - sub) // 2)
        return Subarray(sizes, subs, starts, DOUBLE)

    return st.builds(
        build,
        st.lists(st.integers(2, 6), min_size=1, max_size=3),
        st.lists(st.floats(0.2, 1.0), min_size=3, max_size=3),
    )


DATATYPES = st.recursive(
    PRIMITIVES,
    lambda children: st.one_of(
        _vectors(children),
        _contiguous(children),
        _indexed(children),
        _hvectors(children),
        _structs(children),
        _subarrays(children),
    ),
    max_leaves=6,
)


@settings(max_examples=120, deadline=None)
@given(DATATYPES)
def test_flatten_blocks_sorted_nonoverlapping_and_sized(dt):
    lay = dt.commit().flatten()
    assert lay.size == dt.size
    if lay.num_blocks > 1:
        ends = lay.offsets[:-1] + lay.lengths[:-1]
        assert np.all(lay.offsets[1:] >= ends)
        # Coalesced: no two adjacent blocks touch.
        assert np.all(lay.offsets[1:] > ends)
    assert np.all(lay.lengths > 0) or lay.num_blocks == 0


@settings(max_examples=120, deadline=None)
@given(DATATYPES, st.integers(0, 1000))
def test_pack_unpack_roundtrip(dt, seed):
    lay = dt.commit().flatten()
    if lay.size == 0:
        return
    rng = np.random.default_rng(seed)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    src = rng.integers(0, 256, hi + 16, dtype=np.uint8)
    packed = pack_bytes(src, lay)
    assert len(packed) == lay.size
    dst = np.zeros_like(src)
    unpack_bytes(packed, lay, dst)
    idx = lay.gather_index()
    assert np.array_equal(dst[idx], src[idx])
    untouched = np.ones(len(dst), dtype=bool)
    untouched[idx] = False
    assert not dst[untouched].any()


@settings(max_examples=80, deadline=None)
@given(DATATYPES, st.integers(0, 4))
def test_replicate_scales_size(dt, count):
    lay = dt.commit().flatten()
    rep = lay.replicate(count)
    assert rep.size == count * lay.size


@settings(max_examples=80, deadline=None)
@given(DATATYPES, st.integers(2, 4), st.integers(0, 99))
def test_replicated_roundtrip(dt, count, seed):
    """Packing `count` instances equals the per-instance gather."""
    lay = dt.commit().flatten().replicate(count)
    if lay.size == 0:
        return
    rng = np.random.default_rng(seed)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    src = rng.integers(0, 256, hi + 16, dtype=np.uint8)
    packed = pack_bytes(src, lay)
    dst = np.zeros_like(src)
    unpack_bytes(packed, lay, dst)
    idx = lay.gather_index()
    assert np.array_equal(dst[idx], src[idx])


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 16)), min_size=0, max_size=20
    )
)
def test_coalesce_idempotent_and_conserving(raw):
    # Make blocks sorted and non-overlapping.
    offsets, lengths = [], []
    cursor = 0
    for gap, length in raw:
        start = cursor + gap
        offsets.append(start)
        lengths.append(length)
        cursor = start + length
    off = np.array(offsets, dtype=np.int64)
    lng = np.array(lengths, dtype=np.int64)
    o1, l1 = coalesce_blocks(off, lng)
    o2, l2 = coalesce_blocks(o1, l1)
    assert np.array_equal(o1, o2) and np.array_equal(l1, l2)
    assert l1.sum() == lng.sum()
    # Expansion to byte sets is identical.
    lay_a = DataLayout(off, lng, coalesce=False)
    lay_b = DataLayout(o1, l1, coalesce=False)
    assert np.array_equal(lay_a.gather_index(), lay_b.gather_index())


@settings(max_examples=60, deadline=None)
@given(DATATYPES)
def test_signature_stable_and_equality_consistent(dt):
    assert dt.signature() == dt.signature()
    assert hash(dt) == hash(dt)
    lay1 = dt.flatten()
    lay2 = dt.flatten()
    assert lay1 is lay2  # cached on the handle
