"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    ms,
    ns,
    us,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_unit_helpers():
    assert us(1) == pytest.approx(1e-6)
    assert ns(1) == pytest.approx(1e-9)
    assert ms(1) == pytest.approx(1e-3)


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(2.5)
    sim.run(t)
    assert sim.now == pytest.approx(2.5)


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("payload", delay=1.0)
    assert sim.run(ev) == "payload"
    assert ev.processed and ev.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_unavailable_before_trigger():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_raises_in_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))

    def proc():
        yield ev

    p = sim.process(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run(p)


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_sequences_timeouts():
    sim = Simulator()
    marks = []

    def proc():
        yield sim.timeout(1.0)
        marks.append(sim.now)
        yield sim.timeout(2.0)
        marks.append(sim.now)
        return "done"

    p = sim.process(proc())
    assert sim.run(p) == "done"
    assert marks == [pytest.approx(1.0), pytest.approx(3.0)]


def test_process_receives_event_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(41, delay=1.0)
    got = []

    def proc():
        value = yield ev
        got.append(value)

    sim.run(sim.process(proc()))
    assert got == [41]


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    assert sim.run(sim.process(parent())) == "child-result"
    assert sim.now == pytest.approx(5.0)


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def proc():
        yield 42  # type: ignore[misc]

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="may.*only yield"):
        sim.run(p)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_waiting_on_processed_event_resumes():
    """A process yielding an already-processed event continues promptly."""
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process the event
    assert ev.processed

    def proc():
        value = yield ev
        assert value == "early"
        return sim.now

    assert sim.run(sim.process(proc())) == pytest.approx(sim.now)


def test_interrupt_reaches_process():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            caught.append(exc.cause)

    p = sim.process(proc())

    def killer():
        yield sim.timeout(1.0)
        p.interrupt("stop now")

    sim.process(killer())
    sim.run(p)
    assert caught == ["stop now"]
    assert sim.now == pytest.approx(1.0)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def proc():
        return 1
        yield

    p = sim.process(proc())
    sim.run(p)
    with pytest.raises(SimulationError):
        p.interrupt()


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda _ev, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_all_of_waits_for_all():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    cond = AllOf(sim, [t1, t2])
    value = sim.run(cond)
    assert sim.now == pytest.approx(3.0)
    assert value == {t1: "a", t2: "b"}


def test_any_of_fires_on_first():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(3.0, "slow")
    cond = AnyOf(sim, [t1, t2])
    value = sim.run(cond)
    assert sim.now == pytest.approx(1.0)
    assert value == {t1: "fast"}


def test_any_of_not_satisfied_by_merely_scheduled_timeout():
    """The regression that once live-locked waitall: a freshly created
    Timeout is triggered (scheduled) but must not satisfy AnyOf."""
    sim = Simulator()
    t = sim.timeout(5.0)
    cond = AnyOf(sim, [t])
    assert not cond.triggered
    sim.run(cond)
    assert sim.now == pytest.approx(5.0)


def test_empty_all_of_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    sim.run(cond)
    assert cond.processed and sim.now == 0.0


def test_empty_any_of_fires_immediately():
    sim = Simulator()
    cond = AnyOf(sim, [])
    sim.run(cond)
    assert cond.processed


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, [sim2.timeout(1.0)])


def test_condition_propagates_failure():
    sim = Simulator()
    good = sim.timeout(5.0)
    bad = sim.event()
    bad.fail(RuntimeError("inner"), delay=1.0)
    cond = AllOf(sim, [good, bad])
    with pytest.raises(RuntimeError, match="inner"):
        sim.run(cond)


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).callbacks.append(lambda _: fired.append(1))
    sim.timeout(10.0).callbacks.append(lambda _: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == pytest.approx(5.0)


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_detects_deadlock():
    sim = Simulator()
    never = sim.event()

    def proc():
        yield never

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(p)


def test_peek_and_step():
    sim = Simulator()
    sim.timeout(2.0)
    assert sim.peek() == pytest.approx(2.0)
    sim.step()
    assert sim.now == pytest.approx(2.0)
    assert sim.peek() == float("inf")
    with pytest.raises(SimulationError):
        sim.step()


def test_schedule_into_past_rejected():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        ev.succeed(delay=-0.5)


def test_process_exception_propagates():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise KeyError("inside")

    p = sim.process(proc())
    with pytest.raises(KeyError):
        sim.run(p)


def test_determinism_two_identical_runs():
    def world(sim, log):
        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, round(sim.now, 9)))

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 0.5))
        sim.run()

    log1, log2 = [], []
    world(Simulator(), log1)
    world(Simulator(), log2)
    assert log1 == log2
