"""Unit tests for DataLayout."""

import numpy as np
import pytest

from repro.datatypes import DataLayout, coalesce_blocks


def test_empty_layout():
    lay = DataLayout([], [])
    assert lay.num_blocks == 0
    assert lay.size == 0
    assert lay.span == 0
    assert lay.min_block == 0 and lay.max_block == 0 and lay.mean_block == 0.0
    assert len(lay.gather_index()) == 0


def test_single_block_properties():
    lay = DataLayout([4], [16])
    assert lay.num_blocks == 1
    assert lay.size == 16
    assert lay.span == 16
    assert not lay.is_contiguous  # starts at 4, not 0


def test_contiguous_factory():
    lay = DataLayout.contiguous(64)
    assert lay.is_contiguous
    assert lay.size == 64 and lay.extent == 64
    assert np.array_equal(lay.gather_index(), np.arange(64))


def test_contiguous_zero():
    assert DataLayout.contiguous(0).num_blocks == 0
    with pytest.raises(ValueError):
        DataLayout.contiguous(-1)


def test_validation_rejects_overlap():
    with pytest.raises(ValueError):
        DataLayout([0, 4], [8, 4])  # first block ends at 8 > 4


def test_validation_rejects_unsorted():
    with pytest.raises(ValueError):
        DataLayout([8, 0], [2, 2])


def test_validation_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        DataLayout([0, 8], [4, 0])


def test_validation_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        DataLayout([0, 8], [4])


def test_coalesce_adjacent_blocks():
    lay = DataLayout([0, 4, 8, 20], [4, 4, 4, 4])
    assert lay.num_blocks == 2
    assert list(lay.offsets) == [0, 20]
    assert list(lay.lengths) == [12, 4]


def test_coalesce_blocks_function_empty():
    off, lng = coalesce_blocks(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert len(off) == 0 and len(lng) == 0


def test_no_coalesce_option():
    lay = DataLayout([0, 4], [4, 4], coalesce=False)
    assert lay.num_blocks == 2


def test_gather_index_values():
    lay = DataLayout([2, 10], [3, 2])
    assert list(lay.gather_index()) == [2, 3, 4, 10, 11]


def test_gather_index_cached():
    lay = DataLayout([0, 10], [4, 4])
    assert lay.gather_index() is lay.gather_index()


def test_replicate_identity_and_zero():
    lay = DataLayout([0, 10], [4, 2], extent=16)
    assert lay.replicate(1) is lay
    rep0 = lay.replicate(0)
    assert rep0.num_blocks == 0
    with pytest.raises(ValueError):
        lay.replicate(-1)


def test_replicate_strides_by_extent():
    lay = DataLayout([0], [4], extent=16)
    rep = lay.replicate(3)
    assert list(rep.offsets) == [0, 16, 32]
    assert rep.extent == 48
    assert rep.size == 12


def test_replicate_coalesces_touching_instances():
    # extent equals the block size: instances tile densely.
    lay = DataLayout([0], [8], extent=8)
    rep = lay.replicate(4)
    assert rep.num_blocks == 1
    assert rep.size == 32


def test_shifted():
    lay = DataLayout([0, 10], [4, 2])
    sh = lay.shifted(100)
    assert list(sh.offsets) == [100, 110]
    assert sh.size == lay.size


def test_slice_blocks():
    lay = DataLayout([0, 10, 20], [4, 4, 4])
    sub = lay.slice_blocks(1, 3)
    assert list(sub.offsets) == [10, 20]


def test_density():
    dense = DataLayout([0], [64])
    sparse = DataLayout([0, 100], [4, 4])
    assert dense.density == 1.0
    assert sparse.density == pytest.approx(8 / 104)


def test_equality_and_hash():
    a = DataLayout([0, 10], [4, 2], extent=16)
    b = DataLayout([0, 10], [4, 2], extent=16)
    c = DataLayout([0, 10], [4, 2], extent=20)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != "not a layout"


def test_from_blocks_sorts():
    lay = DataLayout.from_blocks([(10, 2), (0, 4)])
    assert list(lay.offsets) == [0, 10]


def test_block_stats():
    lay = DataLayout([0, 10, 30], [4, 8, 12])
    assert lay.min_block == 4
    assert lay.max_block == 12
    assert lay.mean_block == pytest.approx(8.0)
