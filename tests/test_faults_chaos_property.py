"""The headline chaos property (DESIGN.md): faults may cost time,
never correctness.

Hypothesis generates arbitrary fault plans — any mix of latency spikes,
link flaps, transfer failures, control drops, launch failures,
stragglers, and ring pressure at any valid probability — and the bulk
exchange must still deliver byte-identical receive buffers under every
scheme and rendezvous protocol (``run_bulk_exchange(verify=True)``
raises on the first corrupted byte).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import run_bulk_exchange
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim.faults import (
    FAULT_PRESETS,
    MAX_RETRIED_PROBABILITY,
    FaultPlan,
    FaultSpec,
)
from repro.workloads import WORKLOADS

SPEC = WORKLOADS["specfem3D_cm"]

retried = st.floats(0.0, MAX_RETRIED_PROBABILITY)
delayed = st.floats(0.0, 1.0)

fault_specs = st.builds(
    FaultSpec,
    latency_spike=delayed,
    spike_factor=st.floats(1.0, 20.0),
    link_flap=delayed,
    flap_downtime=st.floats(0.0, 1e-3),
    transfer_failure=retried,
    control_drop=retried,
    launch_failure=retried,
    straggler=delayed,
    straggler_factor=st.floats(1.0, 20.0),
    ring_pressure=delayed,
)


def _run(scheme, *, faults=None, protocol="rput", seed=42):
    return run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY[scheme], SPEC(120),
        nbuffers=3, iterations=2, warmup=1,
        eager_threshold=0, rendezvous_protocol=protocol,
        faults=faults, seed=seed,
    )


@settings(max_examples=25, deadline=None)
@given(spec=fault_specs, seed=st.integers(0, 2**31 - 1))
def test_arbitrary_faults_never_corrupt_proposed(spec, seed):
    # verify=True inside run_bulk_exchange raises AssertionError on the
    # first byte that differs from the sent payload.
    result = _run("Proposed", faults=FaultPlan(seed=seed, spec=spec))
    assert result.recovery is not None
    assert np.isfinite(result.mean_latency)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
@pytest.mark.parametrize("scheme", ["GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"])
def test_heavy_faults_never_corrupt_other_schemes(scheme, seed):
    _run(scheme, faults=FaultPlan(seed=seed, spec=FAULT_PRESETS["heavy"]))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
@pytest.mark.parametrize("protocol", ["rput", "rget"])
def test_heavy_faults_never_corrupt_either_rendezvous(protocol, seed):
    _run("Proposed", faults=FaultPlan(seed=seed, spec=FAULT_PRESETS["heavy"]),
         protocol=protocol)


def test_faults_cost_time_and_recoveries_are_nonzero():
    """Acceptance criterion: under a nontrivial plan the exchange is
    slower than fault-free and the retry/fallback counters move."""
    clean = _run("Proposed")
    faulty = _run(
        "Proposed", faults=FaultPlan(seed=5, spec=FAULT_PRESETS["heavy"])
    )
    assert faulty.mean_latency > clean.mean_latency
    rec = faulty.recovery
    assert rec.total_injected > 0
    assert rec.total_recoveries > 0


def test_identical_seeds_identical_timelines():
    """Acceptance criterion: two fresh Simulators under the same fault
    seed produce identical latency timelines and identical fault/
    recovery counts."""
    a = _run("Proposed", faults=FaultPlan(seed=9, spec=FAULT_PRESETS["moderate"]))
    b = _run("Proposed", faults=FaultPlan(seed=9, spec=FAULT_PRESETS["moderate"]))
    assert a.latencies == b.latencies
    assert a.recovery.injected == b.recovery.injected
    assert a.recovery.total_recoveries == b.recovery.total_recoveries

    c = _run("Proposed", faults=FaultPlan(seed=10, spec=FAULT_PRESETS["moderate"]))
    assert (c.latencies != a.latencies
            or c.recovery.injected != a.recovery.injected)
