"""Tests for datatype-typed collectives over the pt2pt runtime."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Contiguous, Vector
from repro.mpi import Runtime, allgather, alltoall, barrier, neighbor_alltoall
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import halo_2d


def _runtime(size=4, scheme="Proposed", ranks_per_node=2):
    sim = Simulator()
    nodes = size // ranks_per_node
    cluster = Cluster(sim, LASSEN, nodes=nodes, ranks_per_node=ranks_per_node)
    return sim, Runtime(sim, cluster, SCHEME_REGISTRY[scheme])


def _run_all(sim, programs):
    procs = [sim.process(p) for p in programs]
    sim.run(sim.all_of(procs))


@pytest.mark.parametrize("scheme", ["GPU-Sync", "Proposed"])
def test_alltoall_contiguous(scheme):
    sim, rt = _runtime(scheme=scheme)
    size = rt.size
    slot = Contiguous(64, DOUBLE).commit()  # 512 B per peer slot
    ext = slot.extent
    bufs = {}
    for r in range(size):
        rank = rt.rank(r)
        send = rank.device.alloc(size * ext)
        # Slot for peer p holds the value 10*r + p.
        view = send.view(np.float64)
        for p in range(size):
            view[p * 64 : (p + 1) * 64] = 10 * r + p
        recv = rank.device.alloc(size * ext)
        bufs[r] = (send, recv)

    def prog(r):
        yield from alltoall(rt.rank(r), bufs[r][0], slot, bufs[r][1], slot)

    _run_all(sim, [prog(r) for r in range(size)])
    for r in range(size):
        view = bufs[r][1].view(np.float64)
        for p in range(size):
            # Slot p of rank r's recv = what p sent toward r.
            assert (view[p * 64 : (p + 1) * 64] == 10 * p + r).all()


def test_alltoall_noncontiguous_types():
    """The FFT-transpose shape: strided columns out, rows back in."""
    from repro.datatypes import Resized

    sim, rt = _runtime(size=2, ranks_per_node=1)
    n = 8  # local matrix is n x n doubles, 2 ranks -> column blocks of 4
    # Canonical MPI transpose idiom: resize the column block so peer
    # slices interleave at (n/2)-double spacing instead of full extent.
    col = Resized(
        Vector(n, n // 2, n, DOUBLE), 0, (n // 2) * 8
    ).commit()                                            # column block
    row = Contiguous(n * (n // 2), DOUBLE).commit()       # packed rows
    bufs = {}
    for r in range(2):
        rank = rt.rank(r)
        send = rank.device.alloc(n * n * 8)
        send.view(np.float64)[:] = np.arange(n * n) + 1000 * r
        recv = rank.device.alloc(n * n * 8)
        bufs[r] = (send, recv)

    def prog(r):
        yield from alltoall(rt.rank(r), bufs[r][0], col, bufs[r][1], row)

    _run_all(sim, [prog(r) for r in range(2)])
    for me in (0, 1):
        for peer in (0, 1):
            got = bufs[me][1].view(np.float64)[
                peer * n * (n // 2) : (peer + 1) * n * (n // 2)
            ]
            src = bufs[peer][0].view(np.float64)
            # One double per 8 byte-indices of the gather index.
            idx = (col.flatten().gather_index()[::8] // 8) + me * (n // 2)
            assert np.array_equal(got, src[idx])


def test_alltoall_size_mismatch_rejected():
    sim, rt = _runtime(size=2, ranks_per_node=1)
    a = Contiguous(4, DOUBLE).commit()
    b = Contiguous(8, DOUBLE).commit()
    rank = rt.rank(0)
    buf = rank.device.alloc(1024)

    def prog():
        yield from alltoall(rank, buf, a, buf, b)

    p = sim.process(prog())
    with pytest.raises(ValueError):
        sim.run(p)


@pytest.mark.parametrize("scheme", ["GPU-Sync", "Proposed"])
def test_allgather(scheme):
    sim, rt = _runtime(scheme=scheme)
    size = rt.size
    item = Contiguous(32, DOUBLE).commit()
    bufs = {}
    for r in range(size):
        rank = rt.rank(r)
        send = rank.device.alloc(item.extent)
        send.view(np.float64)[:] = r + 1
        recv = rank.device.alloc(size * item.extent)
        bufs[r] = (send, recv)

    def prog(r):
        yield from allgather(rt.rank(r), bufs[r][0], item, bufs[r][1], item)

    _run_all(sim, [prog(r) for r in range(size)])
    for r in range(size):
        view = bufs[r][1].view(np.float64)
        for p in range(size):
            assert (view[p * 32 : (p + 1) * 32] == p + 1).all()


def test_neighbor_alltoall_halo_pair():
    """Symmetric 2-rank halo via the neighborhood collective."""
    sim, rt = _runtime(size=2, ranks_per_node=1)
    sched = halo_2d((12, 12))
    arrays = {}
    for r in (0, 1):
        buf = rt.rank(r).device.alloc(sched.array_bytes)
        buf.data[:] = np.random.default_rng(r).integers(0, 256, buf.nbytes)
        arrays[r] = buf

    by_dir = {n.direction: n for n in sched.neighbors}
    order = sorted(by_dir)  # identical order on both ranks

    def exchanges(_r, peer):
        out = []
        for d in order:
            send_t = by_dir[d].send_type
            # Entry i receives what the peer's entry i sends: the
            # peer's d-direction boundary fills my (-d) ghost.
            recv_t = by_dir[tuple(-x for x in d)].recv_type
            out.append((peer, send_t, recv_t))
        return out

    def prog(r, peer):
        yield from neighbor_alltoall(rt.rank(r), arrays[r], exchanges(r, peer))

    snapshots = {r: arrays[r].data.copy() for r in (0, 1)}
    _run_all(sim, [prog(0, 1), prog(1, 0)])
    for me, peer in ((0, 1), (1, 0)):
        for d in order:
            ghost = by_dir[tuple(-x for x in d)].recv_type
            sent = by_dir[d].send_type
            got = arrays[me].data[ghost.flatten().gather_index()]
            want = snapshots[peer][sent.flatten().gather_index()]
            assert np.array_equal(got, want), d


@pytest.mark.parametrize("size,rpn", [(2, 1), (4, 2)])
def test_barrier_synchronizes(size, rpn):
    sim, rt = _runtime(size=size, ranks_per_node=rpn)
    exit_times = {}

    def prog(r):
        # Stagger arrivals; nobody leaves before the last arrival.
        yield sim.timeout(r * 1e-5)
        yield from barrier(rt.rank(r))
        exit_times[r] = sim.now

    _run_all(sim, [prog(r) for r in range(size)])
    last_arrival = (size - 1) * 1e-5
    assert all(t >= last_arrival for t in exit_times.values())


def test_barrier_single_rank_noop():
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1, ranks_per_node=1)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"])

    def prog():
        yield from barrier(rt.rank(0))

    sim.run(sim.process(prog()))
    assert sim.now == 0.0


def test_collectives_fuse_under_proposed():
    """An alltoall's P-1 packs/unpacks per rank batch into few fused
    kernels — the bulk scenario a collective naturally generates."""
    sim, rt = _runtime(size=4, scheme="Proposed", ranks_per_node=2)
    col = Vector(32, 8, 32, DOUBLE).commit()
    bufs = {}
    for r in range(4):
        rank = rt.rank(r)
        bufs[r] = (
            rank.device.alloc(4 * col.extent + 8),
            rank.device.alloc(4 * col.extent + 8),
        )

    def prog(r):
        yield from alltoall(rt.rank(r), bufs[r][0], col, bufs[r][1], col)

    _run_all(sim, [prog(r) for r in range(4)])
    stats = rt.rank(0).scheme.scheduler.stats
    assert stats.enqueued >= 6  # 3 packs + 3 unpacks
    assert stats.launches < stats.enqueued


@pytest.mark.parametrize("size", [2, 3, 4, 5])
@pytest.mark.parametrize("op,expected_fn", [
    ("sum", lambda vals: sum(vals)),
    ("max", lambda vals: max(vals)),
    ("min", lambda vals: min(vals)),
])
def test_allreduce(size, op, expected_fn):
    from repro.mpi import allreduce

    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=size, ranks_per_node=1)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"])
    results = {}

    def prog(r):
        contribution = np.array([float(r + 1), float(10 * (r + 1))])
        results[r] = yield from allreduce(rt.rank(r), contribution, op=op)

    procs = [sim.process(prog(r)) for r in range(size)]
    sim.run(sim.all_of(procs))
    want0 = expected_fn([r + 1 for r in range(size)])
    want1 = expected_fn([10 * (r + 1) for r in range(size)])
    for r in range(size):
        assert results[r][0] == pytest.approx(want0), (r, op)
        assert results[r][1] == pytest.approx(want1), (r, op)


def test_allreduce_single_rank():
    from repro.mpi import allreduce

    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1, ranks_per_node=1)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"])
    out = {}

    def prog():
        out["v"] = yield from allreduce(rt.rank(0), np.array([4.0]))

    sim.run(sim.process(prog()))
    assert out["v"][0] == 4.0


def test_allreduce_rejects_unknown_op():
    from repro.mpi import allreduce

    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1, ranks_per_node=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"])

    def prog():
        yield from allreduce(rt.rank(0), np.array([1.0]), op="xor")

    p = sim.process(prog())
    with pytest.raises(ValueError):
        sim.run(p)
