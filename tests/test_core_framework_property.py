"""Property-based stress tests of the kernel-fusion framework.

The DESIGN.md invariant: *fusion never loses or duplicates a request* —
under arbitrary interleavings of submissions, threshold launches,
flushes, and fallbacks, every submitted operation's bytes land exactly
once and every handle completes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusionPolicy, KernelFusionScheme
from repro.datatypes import DataLayout
from repro.net import Cluster, LASSEN
from repro.sim import Simulator, Trace, us


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(6, 14),          # log2 of op size
            st.sampled_from([0, 1, 2]),  # gap before submit, in µs
            st.booleans(),               # flush after this op?
        ),
        min_size=1,
        max_size=24,
    ),
    threshold_kib=st.sampled_from([1, 8, 64, 1024]),
    capacity=st.sampled_from([2, 4, 256]),
)
def test_fusion_never_loses_or_duplicates(ops, threshold_kib, capacity):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1)
    site = cluster.site(0)
    scheme = KernelFusionScheme(
        site,
        Trace(),
        policy=FusionPolicy(threshold_bytes=threshold_kib * 1024),
        capacity=capacity,
    )
    dev = site.device
    # Fill value k+1 marks op k; a second apply would be detected by
    # the write counter below.
    applied = {"count": 0}
    triples = []
    for k, (log_size, _gap, _flush) in enumerate(ops):
        nbytes = 1 << log_size
        lay = DataLayout([0, nbytes], [nbytes // 2, nbytes // 2])
        src = dev.alloc(2 * nbytes, fill=(k % 250) + 1)
        dst = dev.alloc(lay.size)
        op = dev.pack_op(src, lay, dst)
        original_apply = op.apply

        def counted(original=original_apply):
            applied["count"] += 1
            original()

        op.apply = counted
        triples.append((op, src, dst, lay, (k % 250) + 1))

    handles = []

    def driver():
        for (op, *_rest), (_s, gap, do_flush) in zip(triples, ops):
            if gap:
                yield sim.timeout(us(gap))
            handle = yield from scheme.submit(op)
            handles.append(handle)
            if do_flush:
                yield from scheme.flush()
        yield from scheme.wait(handles)

    sim.run(sim.process(driver()))

    # Every handle completed; every op applied exactly once; bytes land.
    assert all(h.done for h in handles)
    assert applied["count"] == len(triples)
    for op, _src, dst, lay, mark in triples:
        assert (dst.data[: lay.size] == mark).all()

    # Bookkeeping is consistent: fused + fallback == submitted.
    stats = scheme.scheduler.stats
    assert stats.fused_requests + scheme.fallback_count == len(triples)
    assert scheme.scheduler.pending_count == 0
