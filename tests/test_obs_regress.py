"""repro.obs.regress — the perf-regression gate, pass/fail pair + CLI."""

import copy

import pytest

from repro.bench import run_bulk_exchange
from repro.cli import main
from repro.net import SYSTEMS
from repro.obs import experiment_artifact, result_entry, write_bench_artifact
from repro.obs import regress
from repro.workloads import WORKLOADS

RUN = {
    "iterations": 2, "warmup": 1, "data_plane": False,
    "rendezvous_protocol": "rput", "seed": 42,
}


@pytest.fixture(scope="module")
def baseline():
    """A small two-entry artifact measured fresh in this process."""
    from repro.schemes import SCHEME_REGISTRY

    entries = []
    for scheme, config in (("GPU-Sync", None), ("Proposed", {"threshold_bytes": 512 * 1024})):
        result = run_bulk_exchange(
            SYSTEMS["Lassen"],
            SCHEME_REGISTRY[scheme],
            WORKLOADS["specfem3D_cm"](200),
            nbuffers=4,
            iterations=RUN["iterations"],
            warmup=RUN["warmup"],
            data_plane=RUN["data_plane"],
            seed=RUN["seed"],
        )
        entries.append(result_entry(result, key=scheme, config=config, run=RUN))
    return experiment_artifact("unit_regress", entries, meta={"seed": 42})


def _slowed(artifact, factor=1.12):
    doc = copy.deepcopy(artifact)
    for entry in doc["entries"]:
        entry["mean_latency"] *= factor
        entry["latencies"] = [v * factor for v in entry["latencies"]]
    return doc


# -- compare_artifacts ------------------------------------------------------


def test_identical_artifacts_pass(baseline):
    report = regress.compare_artifacts(baseline, baseline)
    assert report.ok
    assert not report.regressions and not report.missing
    assert report.describe().endswith("verdict: PASS")
    assert all(c.ratio == pytest.approx(1.0) for c in report.checks)


def test_injected_slowdown_fails_the_gate(baseline):
    report = regress.compare_artifacts(baseline, _slowed(baseline))
    assert not report.ok
    assert len(report.regressions) == len(baseline["entries"])
    assert report.describe().endswith("verdict: FAIL")


def test_slowdown_within_tolerance_passes(baseline):
    report = regress.compare_artifacts(
        baseline, _slowed(baseline, 1.05), tolerance=0.10
    )
    assert report.ok


def test_improvement_never_fails(baseline):
    report = regress.compare_artifacts(baseline, _slowed(baseline, 0.5))
    assert report.ok
    assert len(report.improvements) == len(baseline["entries"])


def test_missing_entry_fails_extra_is_informational(baseline):
    candidate = copy.deepcopy(baseline)
    dropped = candidate["entries"].pop(0)
    candidate["entries"].append(dict(dropped, key="brand-new"))
    report = regress.compare_artifacts(baseline, candidate)
    assert not report.ok
    assert report.missing == [dropped["key"]]
    assert report.extra == ["brand-new"]


def test_per_metric_tolerances_and_breakdown_paths(baseline):
    report = regress.compare_artifacts(
        baseline,
        _slowed(baseline, 1.07),
        metrics=("mean_latency", "min_latency", "breakdown.pack"),
        tolerances={"mean_latency": 0.05},
    )
    by_metric = {}
    for check in report.checks:
        by_metric.setdefault(check.metric, []).append(check)
    # mean_latency gets the tight per-metric tolerance and regresses
    assert all(c.regressed for c in by_metric["mean_latency"])
    # min_latency keeps the default 10 % and passes
    assert not any(c.regressed for c in by_metric["min_latency"])
    # breakdown paths resolve (candidate breakdown unchanged -> ok)
    assert "breakdown.pack" in by_metric


# -- re-running -------------------------------------------------------------


def test_rerun_reproduces_the_baseline_exactly(baseline):
    candidate = regress.rerun_artifact(baseline)
    report = regress.compare_artifacts(baseline, candidate)
    assert report.ok
    for check in report.checks:
        assert check.candidate == pytest.approx(check.baseline, rel=1e-12)


def test_rerun_entry_rejects_unrunnable_scheme(baseline):
    entry = dict(baseline["entries"][0])
    entry["scheme"] = "No-Such-Scheme"
    entry.pop("config", None)
    with pytest.raises(KeyError):
        regress.rerun_entry(entry)


# -- CLI gate ---------------------------------------------------------------


def test_cli_regress_pass_and_fail(tmp_path, baseline, capsys):
    base_path = str(tmp_path / "BENCH_base.json")
    write_bench_artifact(base_path, baseline)
    slow_path = str(tmp_path / "BENCH_slow.json")
    write_bench_artifact(slow_path, _slowed(baseline))

    assert main(["regress", "--baseline", base_path, "--candidate", base_path]) == 0
    assert "verdict: PASS" in capsys.readouterr().out

    assert main(["regress", "--baseline", base_path, "--candidate", slow_path]) == 1
    assert "verdict: FAIL" in capsys.readouterr().out

    # 12 % slowdown inside a widened tolerance passes again
    assert main([
        "regress", "--baseline", base_path, "--candidate", slow_path,
        "--tolerance", "0.2",
    ]) == 0
