"""bench.report hardening — empty and sparse grids must not raise."""

from repro.bench import run_bulk_exchange
from repro.bench.report import (
    format_breakdown_table,
    format_latency_table,
    format_speedup_table,
    speedup_matrix,
)
from repro.net import SYSTEMS
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS


def _result():
    return run_bulk_exchange(
        SYSTEMS["Lassen"],
        SCHEME_REGISTRY["GPU-Sync"],
        WORKLOADS["specfem3D_cm"](100),
        nbuffers=2,
        iterations=1,
        warmup=0,
        data_plane=False,
    )


def test_latency_table_with_empty_grid():
    text = format_latency_table({}, title="empty")
    assert text.startswith("empty")
    assert "scheme" in text


def test_latency_table_with_empty_scheme_rows():
    text = format_latency_table({"GPU-Sync": {}}, title="t", baseline="GPU-Sync")
    assert "GPU-Sync" in text


def test_breakdown_table_with_no_results():
    text = format_breakdown_table([], title="t")
    assert "scheme" in text and "total" in text


def test_speedup_matrix_with_missing_reference():
    grid = {"GPU-Sync": {2: _result()}}
    assert speedup_matrix(grid, "No-Such-Reference") == {"GPU-Sync": {}}
    text = format_speedup_table(grid, "No-Such-Reference", title="t")
    assert "GPU-Sync" in text


def test_speedup_table_with_empty_grid():
    text = format_speedup_table({}, reference="GPU-Sync", title="t")
    assert text.startswith("t")
