"""Unit tests for the seeded fault-injection plan."""

import subprocess
import sys

import pytest

from repro.sim import FAULT_PRESETS, FaultPlan, FaultSpec, NoiseModel, Simulator
from repro.sim.faults import MAX_RETRIED_PROBABILITY


# -- spec validation ------------------------------------------------------------


def test_spec_defaults_inactive():
    spec = FaultSpec()
    assert not spec.active
    assert FAULT_PRESETS["off"] == spec


@pytest.mark.parametrize("preset", ["light", "moderate", "heavy"])
def test_presets_active_and_valid(preset):
    assert FAULT_PRESETS[preset].active


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency_spike": -0.1},
        {"latency_spike": 1.1},
        {"straggler": 2.0},
        {"transfer_failure": MAX_RETRIED_PROBABILITY + 0.01},
        {"control_drop": 1.0},
        {"launch_failure": -0.5},
        {"spike_factor": 0.5},
        {"straggler_factor": 0.0},
        {"flap_downtime": -1e-6},
    ],
)
def test_spec_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        FaultSpec(**kwargs)


def test_retried_kinds_capped_below_one():
    # The cap is what guarantees retry loops terminate almost surely.
    assert MAX_RETRIED_PROBABILITY < 1.0
    FaultSpec(transfer_failure=MAX_RETRIED_PROBABILITY)  # boundary OK


# -- determinism -----------------------------------------------------------------


def test_same_seed_same_decisions():
    a = FaultPlan(seed=9, spec=FAULT_PRESETS["moderate"])
    b = FaultPlan(seed=9, spec=FAULT_PRESETS["moderate"])
    seq_a = [
        (a.transfer_fails("ib0"), a.latency_multiplier("ib0"),
         a.drop_control("rts"), a.launch_fails(), a.straggler_multiplier())
        for _ in range(200)
    ]
    seq_b = [
        (b.transfer_fails("ib0"), b.latency_multiplier("ib0"),
         b.drop_control("rts"), b.launch_fails(), b.straggler_multiplier())
        for _ in range(200)
    ]
    assert seq_a == seq_b
    assert a.stats.as_dict() == b.stats.as_dict()


def test_different_seeds_differ():
    a = FaultPlan(seed=1, spec=FAULT_PRESETS["heavy"])
    b = FaultPlan(seed=2, spec=FAULT_PRESETS["heavy"])
    seq_a = [a.transfer_fails("ib0") for _ in range(200)]
    seq_b = [b.transfer_fails("ib0") for _ in range(200)]
    assert seq_a != seq_b


def test_channels_draw_independently():
    plan = FaultPlan(seed=4, spec=FaultSpec(transfer_failure=0.5))
    # Interleaving draws on one channel must not perturb another:
    # channel "a" alone...
    solo = FaultPlan(seed=4, spec=FaultSpec(transfer_failure=0.5))
    expect = [solo.transfer_fails("a") for _ in range(50)]
    got = []
    for _ in range(50):
        got.append(plan.transfer_fails("a"))
        plan.transfer_fails("b")  # interleaved draws on another channel
    assert got == expect


def test_inactive_plan_injects_nothing():
    plan = FaultPlan(seed=0)  # all probabilities zero
    assert not plan.transfer_fails("x")
    assert plan.latency_multiplier("x") == 1.0
    assert plan.link_down_time("x") == 0.0
    assert not plan.drop_control("rts")
    assert not plan.launch_fails()
    assert plan.straggler_multiplier() == 1.0
    assert not plan.ring_rejects()
    assert plan.stats.total == 0


def test_stats_count_injected_events():
    plan = FaultPlan(seed=7, spec=FaultSpec(transfer_failure=0.9))
    hits = sum(plan.transfer_fails("lnk") for _ in range(100))
    assert plan.stats.transfer_failures == hits > 0
    assert plan.stats.total == hits


def test_simulator_has_no_faults_by_default():
    assert Simulator().faults is None


def test_describe_names_active_kinds():
    text = FaultPlan(seed=5, spec=FaultSpec(control_drop=0.25)).describe()
    assert "control_drop=0.25" in text and "seed=5" in text
    assert "inactive" in FaultPlan().describe()


# -- PYTHONHASHSEED independence (satellite: noise crc32 fix) -----------------

_HASHSEED_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.sim import FaultPlan, NoiseModel
from repro.sim.faults import FaultSpec
noise = NoiseModel(seed=3, cv=0.2)
plan = FaultPlan(seed=3, spec=FaultSpec(transfer_failure=0.5))
print([round(noise.factor("net"), 12) for _ in range(5)])
print([plan.transfer_fails("mlx5_0") for _ in range(5)])
"""


def test_channel_streams_stable_across_hash_seeds():
    """Channel keying must not depend on PYTHONHASHSEED (str hash salting).

    Regression test for NoiseModel's old ``hash(channel)`` keying, and
    coverage that FaultPlan never picks it up.
    """
    import os

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = _HASHSEED_SNIPPET.format(src=src)
    outputs = set()
    for hashseed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True,
            text=True, check=True,
        ).stdout
        outputs.add(out)
    assert len(outputs) == 1, "RNG streams vary with PYTHONHASHSEED"


def test_noise_factor_deterministic_per_channel():
    a = NoiseModel(seed=8, cv=0.3)
    b = NoiseModel(seed=8, cv=0.3)
    assert [a.factor("net") for _ in range(10)] == [
        b.factor("net") for _ in range(10)
    ]
