"""Tests for the ASCII timeline renderer."""

import pytest

from repro.sim import Category, Trace, render_timeline


def _trace():
    t = Trace()
    t.charge(Category.LAUNCH, 0.0, 10e-6)
    t.charge(Category.PACK, 10e-6, 30e-6)
    t.charge(Category.COMM, 30e-6, 100e-6)
    return t


def test_empty_trace():
    assert render_timeline(Trace()) == "(empty trace)"


def test_rows_per_present_category():
    text = render_timeline(_trace(), width=50)
    lines = text.splitlines()
    assert len(lines) == 4  # header + 3 categories
    assert lines[1].startswith("pack") or "pack" in text
    assert "launch" in text and "comm" in text
    assert "sync" not in text  # absent category omitted


def test_glyph_placement_proportional():
    text = render_timeline(_trace(), width=100)
    comm_row = next(ln for ln in text.splitlines() if ln.startswith("comm"))
    body = comm_row.split("|")[1]
    # COMM covers [30us, 100us] of a 100us window: ~70% of the width,
    # starting around cell 30.
    assert body[:25].strip() == ""
    assert body.count("=") >= 60


def test_tiny_span_still_visible():
    t = Trace()
    t.charge(Category.SYNC, 0.0, 1e-9)
    t.charge(Category.COMM, 0.0, 1e-3)
    text = render_timeline(t, width=40)
    sync_row = next(ln for ln in text.splitlines() if ln.startswith("sync"))
    assert "y" in sync_row


def test_explicit_window_and_categories():
    text = render_timeline(
        _trace(), width=40, start=0.0, end=200e-6, categories=[Category.PACK]
    )
    assert "pack" in text and "comm" not in text


def test_width_validation():
    with pytest.raises(ValueError):
        render_timeline(_trace(), width=4)


def test_header_shows_bounds():
    text = render_timeline(_trace(), width=40)
    header = text.splitlines()[0]
    assert "0.0us" in header and "100.0us" in header


# -- Chrome trace export -------------------------------------------------------


def test_chrome_trace_events_structure():
    from repro.sim import chrome_trace_events

    events = chrome_trace_events({"rank0": _trace()})
    span_events = [e for e in events if e.get("ph") == "X"]
    assert len(span_events) == 3
    launch = next(e for e in span_events if e["cat"] == "launch")
    assert launch["ts"] == pytest.approx(0.0)
    assert launch["dur"] == pytest.approx(10.0)  # µs
    # Metadata rows name the process and the category lanes.
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["args"]["name"] == "rank0" for e in meta)


def test_export_chrome_trace_file(tmp_path):
    import json

    from repro.sim import export_chrome_trace

    path = tmp_path / "t.json"
    count = export_chrome_trace(_trace(), str(path))
    assert count == 3
    loaded = json.loads(path.read_text())
    assert "traceEvents" in loaded
    assert len([e for e in loaded["traceEvents"] if e.get("ph") == "X"]) == 3


def test_export_multiple_ranks(tmp_path):
    from repro.sim import export_chrome_trace

    count = export_chrome_trace(
        {"r0": _trace(), "r1": _trace()}, str(tmp_path / "two.json")
    )
    assert count == 6
