"""Unit tests for streams, CUDA events, and the device engine."""

import pytest

from repro.gpu import CudaEvent, ExecutionEngine, GPUDevice, Stream, TESLA_V100
from repro.sim import Simulator, us


def _noop_stream(sim):
    return Stream(sim, name="s")


def test_stream_serializes_ops():
    sim = Simulator()
    s = _noop_stream(sim)
    done1 = s.enqueue_callable(us(5))
    done2 = s.enqueue_callable(us(3))
    sim.run(done2)
    assert sim.now == pytest.approx(us(8))
    assert done1.processed


def test_stream_idle_gap_not_accumulated():
    sim = Simulator()
    s = _noop_stream(sim)
    sim.run(s.enqueue_callable(us(2)))
    sim.run(until=us(10))
    done = s.enqueue_callable(us(1))
    sim.run(done)
    assert sim.now == pytest.approx(us(11))


def test_stream_apply_runs_at_completion():
    sim = Simulator()
    s = _noop_stream(sim)
    log = []
    s.enqueue_callable(us(4), lambda: log.append(sim.now))
    assert log == []  # not yet
    sim.run()
    assert log == [pytest.approx(us(4))]


def test_stream_busy_accounting():
    sim = Simulator()
    s = _noop_stream(sim)
    s.enqueue_callable(us(5))
    s.enqueue_callable(us(5))
    sim.run()
    assert s.busy_time == pytest.approx(us(10))
    assert s.op_count == 2


def test_stream_negative_duration_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        _noop_stream(sim).enqueue_callable(-1.0)


def test_barrier_waits_for_prior_work():
    sim = Simulator()
    s = _noop_stream(sim)
    s.enqueue_callable(us(7))
    sim.run(s.barrier())
    assert sim.now == pytest.approx(us(7))


def test_engine_serializes_across_streams():
    """Two streams on one device cannot run kernels concurrently."""
    sim = Simulator()
    engine = ExecutionEngine()
    s1 = Stream(sim, engine=engine)
    s2 = Stream(sim, engine=engine)
    s1.enqueue_callable(us(5))
    done = s2.enqueue_callable(us(5))
    sim.run(done)
    assert sim.now == pytest.approx(us(10))


def test_independent_engines_do_overlap():
    sim = Simulator()
    s1 = Stream(sim, engine=ExecutionEngine())
    s2 = Stream(sim, engine=ExecutionEngine())
    s1.enqueue_callable(us(5))
    done = s2.enqueue_callable(us(5))
    sim.run(done)
    assert sim.now == pytest.approx(us(5))


def test_device_streams_share_engine():
    sim = Simulator()
    dev = GPUDevice(sim, TESLA_V100)
    extra = dev.create_stream()
    dev.default_stream.enqueue_callable(us(4))
    done = extra.enqueue_callable(us(4))
    sim.run(done)
    assert sim.now == pytest.approx(us(8))
    assert dev.busy_time == pytest.approx(us(8))
    assert dev.kernel_count == 2


def test_cuda_event_record_and_query():
    sim = Simulator()
    s = _noop_stream(sim)
    s.enqueue_callable(us(6))
    ev = CudaEvent(sim)
    assert not ev.recorded
    ev.record(s)
    assert ev.recorded
    assert not ev.query()
    sim.run(ev.wait())
    assert ev.query()
    assert sim.now == pytest.approx(us(6))


def test_cuda_event_unrecorded_errors():
    sim = Simulator()
    ev = CudaEvent(sim)
    with pytest.raises(RuntimeError):
        _ = ev.ready_at
    with pytest.raises(RuntimeError):
        ev.wait()


def test_cuda_event_captures_stream_tail_at_record():
    sim = Simulator()
    s = _noop_stream(sim)
    s.enqueue_callable(us(3))
    ev = CudaEvent(sim)
    ev.record(s)
    s.enqueue_callable(us(100))  # after the record: not covered
    sim.run(ev.wait())
    assert sim.now == pytest.approx(us(3))
