"""sim.obs integration — no-op default, timing neutrality, one source of truth."""

import pytest

from repro.bench import run_bulk_exchange
from repro.net import SYSTEMS
from repro.obs import NULL_OBSERVER, METRIC_CATALOG, NullObserver, Observer
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.sim.faults import FAULT_PRESETS, FaultPlan
from repro.workloads import WORKLOADS

RUN = {"nbuffers": 4, "iterations": 2, "warmup": 1, "data_plane": False}


def _run(scheme="Proposed", obs=None, faults=None, data_plane=None, **kw):
    params = dict(RUN, **kw)
    if data_plane is not None:
        params["data_plane"] = data_plane
    return run_bulk_exchange(
        SYSTEMS["Lassen"],
        SCHEME_REGISTRY[scheme],
        WORKLOADS["specfem3D_cm"](200),
        obs=obs,
        faults=faults,
        **params,
    )


# -- disabled telemetry is a strict no-op -----------------------------------


def test_simulator_defaults_to_the_null_observer():
    sim = Simulator()
    assert sim.obs is NULL_OBSERVER
    assert sim.obs.enabled is False


def test_null_observer_records_nothing():
    obs = NullObserver()
    obs.count("x_total")
    obs.gauge_set("g", 3)
    obs.observe("h", 0.5)
    obs.span("c", "s", 0.0, 1.0)
    obs.instant("c", "i", 0.5)
    assert obs.metrics.snapshot().names() == []
    assert len(obs.recorder) == 0


@pytest.mark.parametrize("scheme", ["GPU-Sync", "GPU-Async", "Proposed"])
def test_enabling_telemetry_does_not_change_simulated_time(scheme):
    """DESIGN.md §6: observation never touches the event calendar."""
    off = _run(scheme)
    on = _run(scheme, obs=Observer())
    assert on.latencies == off.latencies  # exact, not approx
    assert on.breakdown == off.breakdown


def test_telemetry_is_timing_neutral_under_faults():
    def plan():
        return FaultPlan(seed=7, spec=FAULT_PRESETS["moderate"])
    default = _run(faults=plan(), data_plane=True)   # internal observer
    recorded = _run(faults=plan(), data_plane=True, obs=Observer())
    assert recorded.latencies == default.latencies


# -- live observation -------------------------------------------------------


def test_observer_populates_the_catalog_metrics():
    obs = Observer()
    result = _run(obs=obs)
    snap = result.metrics
    assert snap is not None
    # both ranks run identical symmetric programs
    assert snap.total("fusion_enqueued_total") == 2 * result.scheduler_stats.enqueued
    assert snap.total("fusion_launches_total") == 2 * result.scheduler_stats.launches
    assert snap.total("link_transfers_total") > 0
    assert snap.total("fusion_queue_latency_seconds") > 0
    # every update hit a pre-declared family (catalog covers hot paths)
    for name in snap.names():
        assert name in METRIC_CATALOG, name


def test_unfused_schemes_count_raw_kernel_launches():
    obs = Observer()
    _run("GPU-Sync", obs=obs)
    # GPU-Sync launches one kernel per buffer; fused launches are separate
    assert obs.snapshot().total("kernel_launches_total") > 0


def test_recorder_captures_request_lifecycle_and_rank_traces():
    obs = Observer()
    result = _run(obs=obs)
    cats = {e.category for e in obs.recorder.events}
    assert "request" in cats      # uid lifecycle spans
    assert "fusion" in cats       # enqueue instants / queued spans
    assert "link" in cats         # transfer spans
    # the runner absorbs each rank's cost-bucket trace onto the stream
    tracks = obs.recorder.tracks()
    assert f"{result.scheme}/rank0" in tracks
    assert f"{result.scheme}/rank1" in tracks


def test_const_labels_tag_every_series():
    obs = Observer(const_labels={"scheme": "Proposed"})
    _run(obs=obs)
    snap = obs.snapshot()
    fam = snap.family("fusion_enqueued_total")
    assert all(dict(key)["scheme"] == "Proposed" for key in fam["series"])


# -- one source of truth for recovery reporting -----------------------------


def test_recovery_report_is_built_from_the_metrics_snapshot():
    plan = FaultPlan(seed=11, spec=FAULT_PRESETS["heavy"])
    result = _run(faults=plan, data_plane=True, iterations=3)
    rec, snap = result.recovery, result.metrics
    assert rec is not None and snap is not None
    assert rec.total_recoveries > 0  # heavy preset injects plenty
    assert rec.link_retransmits == int(snap.total("link_retransmits_total"))
    assert rec.link_fault_delay == pytest.approx(
        snap.total("link_fault_delay_seconds_total")
    )
    assert rec.rts_retransmits == int(snap.total("rts_retransmits_total"))
    assert rec.cts_resends == int(snap.total("cts_resends_total"))
    assert rec.relaunches == int(snap.total("sched_relaunches_total"))
    assert rec.batch_splits == int(snap.total("sched_batch_splits_total"))
    assert rec.sync_fallbacks == int(snap.total("sched_sync_fallbacks_total"))
    assert rec.launch_retries == int(snap.total("scheme_launch_retries_total"))
    assert rec.ring_fallbacks == int(snap.total("sched_ring_fallbacks_total"))


def test_fault_runs_always_carry_metrics():
    plan = FaultPlan(seed=3, spec=FAULT_PRESETS["light"])
    result = _run(faults=plan, data_plane=True)
    assert result.metrics is not None
    assert result.recovery is not None
