"""repro.obs.recorder — event stream, Chrome-trace and JSONL round trips."""

import json

import pytest

from repro.obs import NullRecorder, Recorder
from repro.sim.trace import Category, Trace


def _sample() -> Recorder:
    rec = Recorder()
    rec.span("fusion", "queued", 1e-6, 3e-6, track="rank0", uid=7)
    rec.span("link", "transfer", 2e-6, 9e-6, track="ib0", nbytes=4096)
    rec.instant("proto", "rts", 2.5e-6, track="rank0", msg=0)
    rec.span("fusion", "queued", 4e-6, 5e-6, track="rank0", uid=8)
    return rec


def test_span_rejects_negative_duration():
    rec = Recorder()
    with pytest.raises(ValueError):
        rec.span("x", "bad", 2.0, 1.0)


def test_tracks_first_appearance_order():
    assert _sample().tracks() == ["rank0", "ib0"]


def test_absorb_trace_folds_cost_buckets():
    trace = Trace()
    trace.charge(Category.PACK, 0.0, 1e-6, label="pack")
    trace.charge(Category.LAUNCH, 1e-6, 2e-6)
    rec = Recorder()
    assert rec.absorb_trace("Proposed/rank0", trace) == 2
    cats = {e.category for e in rec.events}
    assert cats == {str(Category.PACK), str(Category.LAUNCH)}
    assert all(e.track == "Proposed/rank0" for e in rec.events)


def test_chrome_trace_round_trip(tmp_path):
    rec = _sample()
    path = tmp_path / "trace.json"
    count = rec.export_chrome_trace(str(path))
    assert count == 4
    doc = json.loads(path.read_text())  # valid JSON by construction
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 3 and len(instants) == 1
    # timestamps are microseconds and non-decreasing across the payload
    payload = [e for e in events if e["ph"] in ("X", "i")]
    ts = [e["ts"] for e in payload]
    assert ts == sorted(ts)
    assert payload[0]["ts"] == pytest.approx(1.0)  # 1e-6 s -> 1 us
    # every payload event references a named process/thread
    named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert {e["pid"] for e in payload} <= named_pids
    # args survive
    assert any(e.get("args", {}).get("uid") == 7 for e in spans)


def test_jsonl_export_round_trip(tmp_path):
    rec = _sample()
    path = tmp_path / "events.jsonl"
    assert rec.export_jsonl(str(path)) == 4
    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 4
    assert records[0]["name"] == "queued" and records[0]["dur"] > 0
    assert records[2]["instant"] is True
    # JSONL preserves record order (seconds, not microseconds)
    assert records[1]["ts"] == pytest.approx(2e-6)


def test_clear_empties_stream():
    rec = _sample()
    rec.clear()
    assert len(rec) == 0
    assert rec.tracks() == []


def test_null_recorder_is_a_no_op():
    rec = NullRecorder()
    rec.span("x", "s", 0.0, 1.0)
    rec.instant("x", "i", 0.5)
    trace = Trace()
    trace.charge(Category.PACK, 0.0, 1e-6)
    assert rec.absorb_trace("t", trace) == 0
    assert len(rec) == 0
    assert rec.enabled is False
