"""Tests for timed datatype handling and the layout cache's effect."""

import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Category, Simulator
from repro.workloads import WORKLOADS


def _runtime(**kwargs):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    return sim, Runtime(sim, cluster, SCHEME_REGISTRY["GPU-Sync"], **kwargs)


def _drive(sim, gen):
    box = {}

    def proc():
        box["v"] = yield from gen

    sim.run(sim.process(proc()))
    return box["v"]


def test_first_use_charges_flatten_cost():
    sim, rt = _runtime()
    rank = rt.rank(0)
    dt = Vector(128, 2, 5, DOUBLE).commit()
    t0 = sim.now
    lay = _drive(sim, rank.resolve_layout_timed(dt, 1))
    expected = rt.flatten_base_cost + lay.num_blocks * rt.flatten_block_cost
    assert sim.now - t0 == pytest.approx(expected)
    flatten_spans = [s for s in rank.trace.spans if s.label == "flatten"]
    assert len(flatten_spans) == 1


def test_cache_hit_is_free():
    sim, rt = _runtime()
    rank = rt.rank(0)
    dt = Vector(128, 2, 5, DOUBLE).commit()
    _drive(sim, rank.resolve_layout_timed(dt, 1))
    t1 = sim.now
    _drive(sim, rank.resolve_layout_timed(Vector(128, 2, 5, DOUBLE).commit(), 1))
    assert sim.now == t1  # structural twin: hit, no charge


def test_cache_disabled_charges_every_time():
    sim, rt = _runtime(layout_cache_enabled=False)
    rank = rt.rank(0)
    dt = Vector(128, 2, 5, DOUBLE).commit()
    _drive(sim, rank.resolve_layout_timed(dt, 1))
    t1 = sim.now
    _drive(sim, rank.resolve_layout_timed(dt, 1))
    assert sim.now > t1


def test_raw_layout_never_charged():
    sim, rt = _runtime(layout_cache_enabled=False)
    rank = rt.rank(0)
    lay = Vector(128, 2, 5, DOUBLE).commit().flatten()
    _drive(sim, rank.resolve_layout_timed(lay, 1))
    assert sim.now == 0.0


def test_flatten_cost_scales_with_blocks():
    sim, rt = _runtime()
    rank = rt.rank(0)
    small = Vector(8, 2, 5, DOUBLE).commit()
    big = Vector(8192, 2, 5, DOUBLE).commit()
    t0 = sim.now
    _drive(sim, rank.resolve_layout_timed(small, 1))
    small_cost = sim.now - t0
    t1 = sim.now
    _drive(sim, rank.resolve_layout_timed(big, 1))
    big_cost = sim.now - t1
    assert big_cost > small_cost


def test_end_to_end_cache_effect_on_sparse_exchange():
    """Disabling the cache slows a sparse bulk exchange measurably and
    shows up in the SCHED bucket (flatten charges)."""
    from repro.bench import run_bulk_exchange

    spec = WORKLOADS["specfem3D_cm"](2000)
    on = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=8,
        iterations=2, warmup=1, data_plane=False,
    )
    off = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=8,
        iterations=2, warmup=1, data_plane=False, layout_cache_enabled=False,
    )
    assert off.mean_latency > on.mean_latency * 1.05
    assert off.breakdown[Category.SCHED] > on.breakdown[Category.SCHED]


def test_warmup_absorbs_the_one_time_flatten():
    """With the cache on, steady-state iterations pay nothing: the
    post-warm-up latencies are iteration-identical."""
    from repro.bench import run_bulk_exchange

    spec = WORKLOADS["MILC"](16)
    r = run_bulk_exchange(
        LASSEN, SCHEME_REGISTRY["GPU-Sync"], spec, nbuffers=4,
        iterations=3, warmup=1, data_plane=False,
    )
    assert max(r.latencies) - min(r.latencies) < 1e-9
