"""Tests for the sharded sweep engine (``repro.bench.sweep``).

The engine's contract has three legs:

* **spec-by-value**: an :class:`ExperimentSpec` fully names a grid
  point with picklable scalars, so workers rebuild the simulation from
  registries instead of shipping live objects;
* **determinism**: a parallel sweep produces entries identical to a
  serial one, in spec order;
* **content-addressed caching**: a cached shard is served only when
  both the spec and the code-version salt match, and corruption is a
  miss, never an error.
"""

import json
import pickle

import pytest

from repro.bench.sweep import (
    ExperimentSpec,
    ResultCache,
    SweepError,
    SweepResult,
    code_salt,
    run_sweep,
    scheme_factory_for,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim import Category


def small_spec(key="shard", scheme="GPU-Sync", **kwargs):
    """A fast MILC shard (sub-second even on the slowest runner)."""
    kwargs.setdefault("experiment", "test")
    kwargs.setdefault("workload", "MILC")
    kwargs.setdefault("dim", 2)
    kwargs.setdefault("nbuffers", 1)
    kwargs.setdefault("iterations", 1)
    return ExperimentSpec(key=key, scheme=scheme, **kwargs)


# -- ExperimentSpec ------------------------------------------------------------


def test_spec_dict_round_trip():
    spec = small_spec(config={"threshold_bytes": 1024, "name": "X"})
    clone = ExperimentSpec.from_dict(spec.to_dict())
    assert clone == spec
    # to_dict is JSON-safe and stable
    assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()


def test_spec_pickle_round_trip():
    spec = small_spec(config={"threshold_bytes": 2048})
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.cache_key("s") == spec.cache_key("s")


def test_spec_from_entry_inverts_run_entry():
    spec = small_spec(scheme="Proposed", config={"threshold_bytes": 512 * 1024})
    entry = spec.run_entry()
    rebuilt = ExperimentSpec.from_entry("test", entry)
    assert rebuilt == spec


def test_simulator_refuses_pickling():
    from repro.sim import Simulator

    with pytest.raises(TypeError, match="ExperimentSpec"):
        pickle.dumps(Simulator())


def test_table_spec_rejects_run_result():
    spec = ExperimentSpec(
        experiment="t", key="table", kind="table", table="fig01_launch_overhead"
    )
    with pytest.raises(ValueError, match="kind"):
        spec.run_result()
    entry = spec.run_entry()
    assert entry["kind"] == "table"
    assert "Tesla V100" in entry["data"]


def test_scheme_factory_unknown_scheme_raises():
    with pytest.raises(KeyError, match="registry"):
        scheme_factory_for("NoSuchScheme", {})


# -- cache keys ----------------------------------------------------------------


def test_cache_key_is_stable_and_spec_sensitive():
    spec = small_spec()
    assert spec.cache_key("salt") == spec.cache_key("salt")
    assert small_spec(dim=3).cache_key("salt") != spec.cache_key("salt")
    assert (
        small_spec(config={"threshold_bytes": 1}).cache_key("salt")
        != spec.cache_key("salt")
    )


def test_cache_key_is_salt_sensitive():
    spec = small_spec()
    assert spec.cache_key("code-v1") != spec.cache_key("code-v2")


def test_code_salt_is_stable_hex():
    assert code_salt() == code_salt()
    assert len(code_salt()) == 16
    int(code_salt(), 16)  # hex digest prefix


# -- ResultCache ---------------------------------------------------------------


def test_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    spec = small_spec()
    digest = spec.cache_key("s")
    assert cache.get(spec, digest) is None
    cache.put(spec, digest, {"key": spec.key, "mean_latency": 1.0})
    assert cache.get(spec, digest) == {"key": spec.key, "mean_latency": 1.0}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get(spec, digest) is None


def test_cache_corruption_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec()
    digest = spec.cache_key("s")
    cache.put(spec, digest, {"key": spec.key})
    (tmp_path / f"{digest}.json").write_text("{not json")
    assert cache.get(spec, digest) is None


def test_cache_spec_mismatch_is_a_miss(tmp_path):
    # A file stored under the right digest but carrying a different
    # spec (say, a hand-edited or colliding entry) must not be served.
    cache = ResultCache(tmp_path)
    spec = small_spec()
    other = small_spec(dim=3)
    digest = spec.cache_key("s")
    cache.put(other, digest, {"key": other.key})
    assert cache.get(spec, digest) is None


# -- run_sweep -----------------------------------------------------------------


GRID = [
    small_spec("GPU-Sync/n=1", "GPU-Sync"),
    small_spec("GPU-Sync/n=2", "GPU-Sync", nbuffers=2),
    small_spec("Proposed/n=1", "Proposed"),
    small_spec("Proposed/n=2", "Proposed", nbuffers=2),
]


def test_parallel_sweep_equals_serial(tmp_path):
    serial = run_sweep(GRID, jobs=1)
    parallel = run_sweep(GRID, jobs=2)
    assert serial.entries == parallel.entries
    assert [e["key"] for e in serial.entries] == [s.key for s in GRID]
    assert parallel.stats.jobs == 2
    assert serial.stats.ran == parallel.stats.ran == len(GRID)


def test_warm_cache_runs_zero_shards(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_sweep(GRID[:2], cache=cache, salt="v1")
    assert (cold.stats.hits, cold.stats.ran) == (0, 2)
    warm = run_sweep(GRID[:2], cache=cache, salt="v1")
    assert (warm.stats.hits, warm.stats.ran) == (2, 0)
    assert warm.entries == cold.entries
    assert warm.cached_flags == [True, True]


def test_salt_change_invalidates_cache(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(GRID[:1], cache=cache, salt="v1")
    rerun = run_sweep(GRID[:1], cache=cache, salt="v2")
    assert rerun.stats.ran == 1 and rerun.stats.hits == 0


def test_spec_change_invalidates_cache(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep([small_spec("k", nbuffers=1)], cache=cache, salt="v1")
    changed = run_sweep([small_spec("k", nbuffers=2)], cache=cache, salt="v1")
    assert changed.stats.ran == 1 and changed.stats.hits == 0


def test_worker_failure_surfaces_key_and_traceback():
    bad = small_spec("bad-shard", scheme="NoSuchScheme")
    with pytest.raises(SweepError) as excinfo:
        run_sweep([GRID[0], bad], jobs=2)
    assert "bad-shard" in str(excinfo.value)
    (key, tb), = excinfo.value.failures
    assert key == "bad-shard"
    assert "KeyError" in tb


def test_in_process_failure_surfaces_too():
    bad = small_spec("bad-shard", scheme="NoSuchScheme")
    with pytest.raises(SweepError):
        run_sweep([bad], jobs=1)


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        run_sweep([small_spec("same"), small_spec("same", nbuffers=2)])


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_sweep(GRID[:1], jobs=0)


def test_sweep_metrics_recorded(tmp_path):
    cache = ResultCache(tmp_path)
    registry = MetricsRegistry()
    run_sweep(GRID[:2], cache=cache, salt="v1", registry=registry)
    run_sweep(GRID[:2], cache=cache, salt="v1", registry=registry)
    snap = registry.snapshot()
    assert snap.value("sweep_shards_total", outcome="run") == 2
    assert snap.value("sweep_shards_total", outcome="hit") == 2
    assert snap.total("sweep_failures_total") == 0
    assert snap.value("sweep_jobs")["value"] == 1
    assert snap.value("sweep_wall_seconds_total") > 0


# -- SweepResult views ---------------------------------------------------------


def test_sweep_result_views():
    run = run_sweep(GRID[:2])
    views = run.views
    assert set(views) == {"GPU-Sync/n=1", "GPU-Sync/n=2"}
    view = views["GPU-Sync/n=1"]
    assert view.scheme == "GPU-Sync"
    assert view.workload == "MILC"
    assert view.system == "Lassen"
    assert view.nbuffers == 1
    assert view.dim == 2
    assert view.mean_latency > 0
    assert view.min_latency > 0
    assert len(view.latencies) == 1
    assert not view.cached
    assert view.data is None
    bd = view.breakdown
    assert all(isinstance(k, Category) for k in bd)
    assert Category.COMM in bd


def test_sweep_result_speedup_and_scheduler_stats():
    run = run_sweep([small_spec("sync", "GPU-Sync"), small_spec("prop", "Proposed")])
    views = run.views
    speedup = views["prop"].speedup_over(views["sync"])
    assert speedup == pytest.approx(
        views["sync"].mean_latency / views["prop"].mean_latency
    )
    stats = views["prop"].scheduler_stats
    assert stats is not None and stats.launches >= 1


def test_sweep_result_matches_live_run():
    """The serialized view reproduces the live ExperimentResult numbers."""
    spec = GRID[0]
    live = spec.run_result()
    view = SweepResult(spec.run_entry())
    assert view.mean_latency == pytest.approx(live.mean_latency)
    assert view.breakdown[Category.COMM] == pytest.approx(
        live.breakdown[Category.COMM]
    )
