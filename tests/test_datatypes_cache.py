"""Unit tests for the datatype layout cache."""

import pytest

from repro.datatypes import DOUBLE, LayoutCache, Vector


def test_miss_then_hit():
    cache = LayoutCache()
    t = Vector(4, 2, 5, DOUBLE)
    lay1 = cache.get_or_flatten(t)
    lay2 = cache.get_or_flatten(Vector(4, 2, 5, DOUBLE))
    assert lay1 is lay2
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_different_types_different_entries():
    cache = LayoutCache()
    cache.get_or_flatten(Vector(4, 2, 5, DOUBLE))
    cache.get_or_flatten(Vector(4, 2, 6, DOUBLE))
    assert len(cache) == 2


def test_lru_eviction():
    cache = LayoutCache(capacity=2)
    a, b, c = (Vector(i, 1, 2, DOUBLE) for i in (1, 2, 3))
    cache.get_or_flatten(a)
    cache.get_or_flatten(b)
    cache.get_or_flatten(a)  # refresh a: b becomes LRU
    cache.get_or_flatten(c)  # evicts b
    assert a.signature() in cache
    assert b.signature() not in cache
    assert c.signature() in cache
    assert cache.stats.evictions == 1


def test_insert_refresh_existing():
    cache = LayoutCache(capacity=2)
    t = Vector(2, 1, 2, DOUBLE)
    lay = t.flatten()
    cache.insert(t.signature(), lay)
    cache.insert(t.signature(), lay)
    assert len(cache) == 1
    assert cache.stats.insertions == 1


def test_lookup_miss_returns_none():
    cache = LayoutCache()
    assert cache.lookup(("nope",)) is None
    assert cache.stats.misses == 1


def test_clear_keeps_stats():
    cache = LayoutCache()
    cache.get_or_flatten(Vector(2, 1, 2, DOUBLE))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.insertions == 1


def test_commit_populates_cache():
    cache = LayoutCache()
    t = Vector(4, 2, 5, DOUBLE)
    t.commit(cache)
    assert t.signature() in cache


def test_keys_in_lru_order():
    cache = LayoutCache()
    a, b = Vector(1, 1, 2, DOUBLE), Vector(2, 1, 2, DOUBLE)
    cache.get_or_flatten(a)
    cache.get_or_flatten(b)
    cache.get_or_flatten(a)  # a now MRU
    assert cache.keys() == (b.signature(), a.signature())


def test_capacity_validation():
    with pytest.raises(ValueError):
        LayoutCache(capacity=0)


def test_unused_cache_hit_rate_zero():
    assert LayoutCache().stats.hit_rate == 0.0
