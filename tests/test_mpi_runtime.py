"""Integration tests for the MPI-like runtime across protocols/schemes."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, DataLayout, Vector
from repro.mpi import DIRECT, EAGER, RGET, RPUT, Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator


def make_runtime(scheme="GPU-Sync", nodes=2, ranks_per_node=1, **kwargs):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=nodes, ranks_per_node=ranks_per_node)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[scheme], **kwargs)
    return sim, rt


def run_pair(sim, rt, prog0, prog1):
    p0 = sim.process(prog0)
    p1 = sim.process(prog1)
    sim.run(sim.all_of([p0, p1]))


def exchange(scheme="GPU-Sync", nbuf=4, datatype=None, count=1, **rt_kwargs):
    """One-directional exchange rank0 -> rank1, returns (send, recv) buffers."""
    sim, rt = make_runtime(scheme, **rt_kwargs)
    dt = datatype if datatype is not None else Vector(16, 2, 5, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, count)
    hi = int(lay.offsets[-1] + lay.lengths[-1]) + 8
    r0, r1 = rt.rank(0), rt.rank(1)
    sbufs = [r0.device.alloc(hi) for _ in range(nbuf)]
    rbufs = [r1.device.alloc(hi) for _ in range(nbuf)]
    rng = np.random.default_rng(7)
    for b in sbufs:
        b.data[:] = rng.integers(0, 256, b.nbytes)

    reqs_seen = {}

    def sender():
        reqs = []
        for i, b in enumerate(sbufs):
            req = yield from r0.isend(b, dt, count, dest=1, tag=i)
            reqs.append(req)
        reqs_seen["send"] = reqs
        yield from r0.waitall(reqs)

    def receiver():
        reqs = [r1.irecv(b, dt, count, source=0, tag=i) for i, b in enumerate(rbufs)]
        reqs_seen["recv"] = reqs
        yield from r1.waitall(reqs)

    run_pair(sim, rt, sender(), receiver())
    idx = lay.gather_index()
    for sb, rb in zip(sbufs, rbufs):
        assert np.array_equal(rb.data[idx], sb.data[idx])
    return sim, rt, reqs_seen


@pytest.mark.parametrize("scheme", list(SCHEME_REGISTRY))
def test_every_scheme_delivers_identical_bytes(scheme):
    exchange(scheme)


def test_eager_protocol_chosen_for_small():
    _sim, rt, reqs = exchange(datatype=Vector(4, 1, 3, DOUBLE).commit())
    assert all(r.protocol == EAGER for r in reqs["send"])


def test_rput_protocol_chosen_for_large():
    big = Vector(4096, 1, 3, DOUBLE).commit()  # 32 KB > eager threshold
    _sim, rt, reqs = exchange(datatype=big)
    assert all(r.protocol == RPUT for r in reqs["send"])


def test_rget_protocol_runs():
    big = Vector(4096, 1, 3, DOUBLE).commit()
    _sim, _rt, reqs = exchange(datatype=big, rendezvous_protocol="rget")
    assert all(r.protocol == RGET for r in reqs["send"])


def test_unknown_rendezvous_rejected():
    with pytest.raises(ValueError):
        make_runtime(rendezvous_protocol="bogus")


def test_eager_threshold_override():
    dt = Vector(4, 1, 3, DOUBLE).commit()  # 32 bytes
    _sim, _rt, reqs = exchange(datatype=dt, eager_threshold=16)
    assert all(r.protocol == RPUT for r in reqs["send"])


def test_contiguous_send_skips_packing():
    dt = DataLayout.contiguous(1024)
    _sim, _rt, reqs = exchange(datatype=dt)
    assert all(r.op_handle is None for r in reqs["send"])
    assert all(r.staging is None for r in reqs["send"])


def test_unexpected_messages_delivered():
    """Receiver posts after the data has arrived."""
    sim, rt = make_runtime()
    dt = Vector(8, 1, 2, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=3)
    rbuf = r1.device.alloc(hi)

    def sender():
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=9)
        yield from r0.waitall([req])

    def receiver():
        yield sim.timeout(1e-3)  # long after the eager payload landed
        assert r1.matching.unexpected_count == 1
        req = r1.irecv(rbuf, dt, 1, source=0, tag=9)
        yield from r1.waitall([req])

    run_pair(sim, rt, sender(), receiver())
    assert np.array_equal(rbuf.data[lay.gather_index()], sbuf.data[lay.gather_index()])


def test_bidirectional_exchange():
    sim, rt = make_runtime("Proposed")
    dt = Vector(32, 2, 5, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    bufs = {r: (rt.rank(r).device.alloc(hi, fill=r + 1), rt.rank(r).device.alloc(hi))
            for r in (0, 1)}

    def prog(me, peer):
        rank = rt.rank(me)
        sreq = yield from rank.isend(bufs[me][0], dt, 1, dest=peer, tag=0)
        rreq = rank.irecv(bufs[me][1], dt, 1, source=peer, tag=0)
        yield from rank.waitall([sreq, rreq])

    run_pair(sim, rt, prog(0, 1), prog(1, 0))
    idx = lay.gather_index()
    assert (bufs[0][1].data[idx] == 2).all()
    assert (bufs[1][1].data[idx] == 1).all()


def test_blocking_send_recv():
    sim, rt = make_runtime()
    dt = Vector(8, 1, 2, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    sbuf = rt.rank(0).device.alloc(hi, fill=9)
    rbuf = rt.rank(1).device.alloc(hi)

    def sender():
        yield from rt.rank(0).send(sbuf, dt, 1, dest=1)

    def receiver():
        yield from rt.rank(1).recv(rbuf, dt, 1, source=0)

    run_pair(sim, rt, sender(), receiver())
    assert (rbuf.data[lay.gather_index()] == 9).all()


def test_explicit_pack_unpack_algorithm1():
    """Algorithm 1: MPI_Pack / send packed / MPI_Unpack."""
    sim, rt = make_runtime()
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    src = r0.device.alloc(hi)
    src.data[:] = np.random.default_rng(1).integers(0, 256, hi)
    packed_s = r0.device.alloc(lay.size)
    packed_r = r1.device.alloc(lay.size)
    dst = r1.device.alloc(hi)

    def sender():
        n = yield from r0.pack(src, dt, 1, packed_s)
        assert n == lay.size
        yield from r0.send(packed_s, DataLayout.contiguous(lay.size), 1, dest=1)

    def receiver():
        yield from r1.recv(packed_r, DataLayout.contiguous(lay.size), 1, source=0)
        n = yield from r1.unpack(packed_r, dt, 1, dst)
        assert n == lay.size

    run_pair(sim, rt, sender(), receiver())
    idx = lay.gather_index()
    assert np.array_equal(dst.data[idx], src.data[idx])


def test_direct_ipc_intra_node():
    """Same-node transfer with DirectIPC enabled: zero-copy kernel."""
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1, ranks_per_node=2)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["Proposed"], enable_direct_ipc=True)
    dt = Vector(16, 2, 4, DOUBLE).commit()
    lay = rt.rank(0).resolve_layout(dt, 1)
    hi = int(lay.offsets[-1] + lay.lengths[-1])
    r0, r1 = rt.rank(0), rt.rank(1)
    sbuf = r0.device.alloc(hi, fill=5)
    rbuf = r1.device.alloc(hi)
    seen = {}

    def sender():
        req = yield from r0.isend(sbuf, dt, 1, dest=1, tag=0)
        seen["req"] = req
        yield from r0.waitall([req])

    def receiver():
        req = r1.irecv(rbuf, dt, 1, source=0, tag=0)
        yield from r1.waitall([req])

    run_pair(sim, rt, sender(), receiver())
    assert seen["req"].protocol == DIRECT
    assert seen["req"].staging is None  # no packing at all
    assert (rbuf.data[lay.gather_index()] == 5).all()


def test_layout_memo_reused():
    sim, rt = make_runtime()
    dt = Vector(8, 1, 2, DOUBLE).commit()
    lay1 = rt.rank(0).resolve_layout(dt, 2)
    lay2 = rt.rank(0).resolve_layout(Vector(8, 1, 2, DOUBLE).commit(), 2)
    assert lay1 is lay2


def test_count_replication_transfers_all_instances():
    exchange(datatype=Vector(4, 2, 5, DOUBLE).commit(), count=3)


def test_fusion_scheme_fuses_bulk_requests():
    sim, rt, _ = exchange("Proposed", nbuf=8)
    sched = rt.rank(0).scheme.scheduler
    assert sched.stats.enqueued == 8
    assert sched.stats.launches < 8  # actually fused
    assert sched.stats.fused_requests == 8


def test_isend_validates_destination():
    sim, rt = make_runtime()
    r0 = rt.rank(0)
    dt = Vector(4, 1, 2, DOUBLE).commit()
    buf = r0.device.alloc(dt.flatten().span)

    def bad_dest():
        yield from r0.isend(buf, dt, 1, dest=7)

    p = sim.process(bad_dest())
    with pytest.raises(ValueError, match="outside communicator"):
        sim.run(p)

    def self_send():
        yield from r0.isend(buf, dt, 1, dest=0)

    p2 = sim.process(self_send())
    with pytest.raises(ValueError, match="self-messaging"):
        sim.run(p2)


def test_isend_validates_buffer_bounds():
    sim, rt = make_runtime()
    r0 = rt.rank(0)
    dt = Vector(64, 1, 4, DOUBLE).commit()
    too_small = r0.device.alloc(16)

    def prog():
        yield from r0.isend(too_small, dt, 1, dest=1)

    p = sim.process(prog())
    with pytest.raises(ValueError, match="outside buffer"):
        sim.run(p)


def test_irecv_validates_source_and_buffer():
    _sim, rt = make_runtime()
    r0 = rt.rank(0)
    dt = Vector(4, 1, 2, DOUBLE).commit()
    buf = r0.device.alloc(dt.flatten().span)
    with pytest.raises(ValueError, match="outside communicator"):
        r0.irecv(buf, dt, 1, source=9)
    with pytest.raises(ValueError, match="outside buffer"):
        r0.irecv(r0.device.alloc(4), dt, 1, source=1)


def test_irecv_wildcard_source_allowed():
    from repro.mpi import ANY_SOURCE

    _sim, rt = make_runtime()
    r0 = rt.rank(0)
    dt = Vector(4, 1, 2, DOUBLE).commit()
    buf = r0.device.alloc(dt.flatten().span)
    req = r0.irecv(buf, dt, 1, source=ANY_SOURCE)
    assert not req.done
