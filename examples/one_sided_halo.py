#!/usr/bin/env python3
"""One-sided halo exchange: Put + fence instead of send/recv.

The zero-copy datatype literature the paper builds on (Santhanaraman et
al.'s send-gather/receive-scatter [40], FALCON-X [25]) frames halo
exchange as *one-sided* access: expose the local array in a window and
let each neighbor ``MPI_Put`` its boundary straight into your ghost
cells.  With derived datatypes on both sides there is no intermediate
representation the application ever sees.

This example runs the Fig. 3 exchange three ways on the same data:

1. two-sided isend/irecv (the paper's main path),
2. one-sided Put/fence over GPUDirect between nodes,
3. one-sided Put/fence **intra-node with DirectIPC** — each Put becomes
   a single fused load-store kernel: true zero-copy.

All three must (and do) deliver identical ghost cells.

Run:  python examples/one_sided_halo.py
"""

import numpy as np

from repro.mpi import Runtime, create_windows, neighbor_alltoall
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import halo_2d

INTERIOR = (48, 48)


def _setup(nodes, ranks_per_node, **kw):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=nodes, ranks_per_node=ranks_per_node)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY["Proposed"], **kw)
    sched = halo_2d(INTERIOR)
    arrays = {}
    for r in (0, 1):
        buf = rt.rank(r).device.alloc(sched.array_bytes)
        buf.data[:] = np.random.default_rng(r).integers(0, 256, buf.nbytes)
        arrays[r] = buf
    return sim, rt, sched, arrays


def _verify(sched, arrays, snapshots):
    for me, peer in ((0, 1), (1, 0)):
        for n in sched.neighbors:
            opp = next(
                x for x in sched.neighbors
                if x.direction == tuple(-d for d in n.direction)
            )
            got = arrays[me].data[n.recv_type.flatten().gather_index()]
            want = snapshots[peer][opp.send_type.flatten().gather_index()]
            assert np.array_equal(got, want), n.direction


def two_sided():
    sim, rt, sched, arrays = _setup(nodes=2, ranks_per_node=1)
    by_dir = {n.direction: n for n in sched.neighbors}
    order = sorted(by_dir)

    def prog(me, peer):
        exchanges = [
            (peer, by_dir[d].send_type, by_dir[tuple(-x for x in d)].recv_type)
            for d in order
        ]
        yield from neighbor_alltoall(rt.rank(me), arrays[me], exchanges)

    snapshots = {r: arrays[r].data.copy() for r in (0, 1)}
    procs = [sim.process(prog(0, 1)), sim.process(prog(1, 0))]
    sim.run(sim.all_of(procs))
    _verify(sched, arrays, snapshots)
    return sim.now * 1e6


def one_sided(nodes, ranks_per_node, **kw):
    sim, rt, sched, arrays = _setup(nodes, ranks_per_node, **kw)
    wins = create_windows(rt, arrays)
    by_dir = {n.direction: n for n in sched.neighbors}
    order = sorted(by_dir)

    def prog(me, peer):
        # Put my boundary for direction d straight into the peer's
        # ghost shell facing back at me (-d) — no receives anywhere.
        for d in order:
            opposite = tuple(-x for x in d)
            yield from wins[me].put(
                arrays[me], by_dir[d].send_type, 1, peer,
                target_type=by_dir[opposite].recv_type,
            )
        yield from wins[me].fence()

    snapshots = {r: arrays[r].data.copy() for r in (0, 1)}
    procs = [sim.process(prog(0, 1)), sim.process(prog(1, 0))]
    sim.run(sim.all_of(procs))
    _verify(sched, arrays, snapshots)
    return sim.now * 1e6


def main() -> None:
    print(f"2-D halo exchange ({INTERIOR[0]}x{INTERIOR[1]} doubles, "
          "4 neighbors, proposed scheme)\n")
    t = two_sided()
    print(f"  two-sided isend/irecv (inter-node)      : {t:8.1f} us")
    t = one_sided(nodes=2, ranks_per_node=1)
    print(f"  one-sided Put + fence (inter-node)      : {t:8.1f} us")
    t = one_sided(nodes=1, ranks_per_node=2, enable_direct_ipc=True)
    print(f"  one-sided Put + fence (NVLink DirectIPC): {t:8.1f} us")
    print("\nSame ghost cells all three ways; the DirectIPC path never "
          "materializes a packed buffer at all.")


if __name__ == "__main__":
    main()
