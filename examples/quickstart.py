#!/usr/bin/env python3
"""Quickstart: bulk non-contiguous exchange with dynamic kernel fusion.

Builds the paper's motivating scenario in ~40 lines of user code:

1. describe a non-contiguous boundary layout with an MPI derived
   datatype (a strided vector — one face of a 3-D grid),
2. run a bulk exchange of 16 such buffers between two simulated GPU
   nodes of the Lassen system,
3. compare the classic GPU-Sync scheme against the proposed dynamic
   kernel fusion, and verify the delivered bytes are identical.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator

NBUF = 16


def exchange(scheme_name: str) -> float:
    """One bulk exchange rank0 <-> rank1; returns the latency in µs."""
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    runtime = Runtime(sim, cluster, SCHEME_REGISTRY[scheme_name])

    # One face of a 128^3 double grid: 128 strided runs of 128 doubles.
    face = Vector(count=128, blocklength=128, stride=128 * 128, base=DOUBLE).commit()
    layout = face.flatten()

    ranks = [runtime.rank(0), runtime.rank(1)]
    send = {r.rank_id: [r.device.alloc(layout.span) for _ in range(NBUF)] for r in ranks}
    recv = {r.rank_id: [r.device.alloc(layout.span) for _ in range(NBUF)] for r in ranks}
    rng = np.random.default_rng(0)
    for bufs in send.values():
        for buf in bufs:
            buf.data[:] = rng.integers(0, 256, buf.nbytes)

    def program(rank, peer):
        requests = [
            rank.irecv(recv[rank.rank_id][i], face, 1, peer, tag=i)
            for i in range(NBUF)
        ]
        for i in range(NBUF):
            sreq = yield from rank.isend(send[rank.rank_id][i], face, 1, peer, tag=i)
            requests.append(sreq)
        yield from rank.waitall(requests)

    procs = [
        sim.process(program(ranks[0], 1)),
        sim.process(program(ranks[1], 0)),
    ]
    sim.run(sim.all_of(procs))

    # Byte-exactness check — the simulated kernels really move data.
    idx = layout.gather_index()
    for me, peer in ((0, 1), (1, 0)):
        for sbuf, rbuf in zip(send[peer], recv[me]):
            assert np.array_equal(rbuf.data[idx], sbuf.data[idx])

    return sim.now * 1e6


def main() -> None:
    print(f"Bulk exchange of {NBUF} non-contiguous faces (128^3 grid, Lassen)\n")
    baseline = exchange("GPU-Sync")
    fused = exchange("Proposed")
    print(f"  GPU-Sync (one kernel + sync per buffer): {baseline:9.1f} us")
    print(f"  Proposed (dynamic kernel fusion)       : {fused:9.1f} us")
    print(f"\n  speedup: {baseline / fused:.2f}x — same bytes, fewer launches.")


if __name__ == "__main__":
    main()
