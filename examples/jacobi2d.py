#!/usr/bin/env python3
"""Jacobi 2-D solver: a complete mini-application on the library.

The kind of physics code the paper's introduction motivates: an
iterative 5-point stencil solving a Laplace boundary-value problem on a
grid split **by columns** across two GPU ranks.  Every iteration:

1. exchange boundary *columns* with the neighbor — non-contiguous
   strided vectors, the Fig. 3 layout, through ``isend``/``irecv`` with
   derived datatypes;
2. run the stencil update (a real NumPy computation, plus a simulated
   GPU kernel priced by the device's memory bandwidth);
3. every few iterations, an ``allreduce`` convergence check.

Because the data plane is byte-exact, the distributed result must match
a serial NumPy reference bit-for-bit — asserted at the end — while the
*simulated time* depends on the packing scheme, so the same application
reports how much wall time dynamic kernel fusion would save it.

Run:  python examples/jacobi2d.py
"""

import numpy as np

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Runtime, allreduce
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator

N = 64            # global grid is N x N
ITERS = 60        # fixed iteration budget
CHECK_EVERY = 10  # allreduce cadence


def serial_reference() -> np.ndarray:
    """Ground truth: the same Jacobi sweep on one full grid."""
    grid = _initial_grid()
    for _ in range(ITERS):
        interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        grid = grid.copy()
        grid[1:-1, 1:-1] = interior
    return grid


def _initial_grid() -> np.ndarray:
    grid = np.zeros((N, N), dtype=np.float64)
    grid[0, :] = 100.0          # hot top edge
    grid[-1, :] = -25.0         # cold bottom edge
    grid[:, 0] = np.linspace(100.0, -25.0, N)
    grid[:, -1] = 50.0
    return grid


def run_distributed(scheme_name: str):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    runtime = Runtime(sim, cluster, SCHEME_REGISTRY[scheme_name])
    half = N // 2
    # Local arrays: N rows x (half + 1 ghost column) on each side.
    width = half + 1
    column = Vector(N, 1, width, DOUBLE).commit()  # one strided column
    full = _initial_grid()
    locals_ = {}
    for r in (0, 1):
        rank = runtime.rank(r)
        buf = rank.device.alloc(N * width * 8)
        view = buf.view(np.float64).reshape(N, width)
        if r == 0:
            view[:, :half] = full[:, :half]   # ghost col at index `half`
        else:
            view[:, 1:] = full[:, half:]      # ghost col at index 0
        locals_[r] = (buf, view)

    residuals = []

    def program(r):
        rank = runtime.rank(r)
        peer = 1 - r
        buf, view = locals_[r]
        own_slice = slice(0, half) if r == 0 else slice(1, width)
        send_col = half - 1 if r == 0 else 1       # my boundary column
        ghost_col = half if r == 0 else 0          # neighbor's column
        for it in range(ITERS):
            # 1. halo exchange of one strided column each way.
            rreq = rank.irecv(buf, column, 1, peer, tag=it, offset=ghost_col * 8)
            sreq = yield from rank.isend(
                buf, column, 1, peer, tag=it, offset=send_col * 8
            )
            yield from rank.waitall([rreq, sreq])

            # 2. stencil update (real bytes + simulated kernel time).
            # Updatable local columns: everything interior to the
            # *global* grid — up to (and including) the column next to
            # the ghost, which reads the ghost as its neighbor.
            old = view.copy()
            lo = 1
            hi = half if r == 0 else width - 1
            interior = 0.25 * (
                old[:-2, lo:hi] + old[2:, lo:hi]
                + old[1:-1, lo - 1 : hi - 1] + old[1:-1, lo + 1 : hi + 1]
            )
            view[1:-1, lo:hi] = interior
            arch = rank.device.arch
            stencil_bytes = 5 * interior.nbytes
            yield rank.device.default_stream.enqueue_callable(
                arch.kernel_fixed_cost + stencil_bytes / arch.mem_bandwidth
            )

            # 3. periodic convergence check via allreduce(max).
            if (it + 1) % CHECK_EVERY == 0:
                local_res = float(np.abs(view[:, own_slice] - old[:, own_slice]).max())
                reduced = yield from allreduce(
                    rank, np.array([local_res]), op="max", tag_round=it
                )
                if r == 0:
                    residuals.append(float(reduced[0]))

    procs = [sim.process(program(0)), sim.process(program(1))]
    sim.run(sim.all_of(procs))

    # Stitch the distributed result back together.
    result = np.empty((N, N), dtype=np.float64)
    result[:, :half] = locals_[0][1][:, :half]
    result[:, half:] = locals_[1][1][:, 1:]
    return result, sim.now * 1e6, residuals


def main() -> None:
    reference = serial_reference()
    print(f"Jacobi 2-D, {N}x{N} grid, {ITERS} iterations, "
          "column-split across 2 Lassen GPUs\n")
    for scheme in ("GPU-Sync", "GPU-Async", "Proposed"):
        result, elapsed_us, residuals = run_distributed(scheme)
        exact = np.array_equal(result, reference)
        print(
            f"  {scheme:<10}: {elapsed_us:9.1f} us simulated, "
            f"residual {residuals[-1]:.4f}, "
            f"matches serial reference: {exact}"
        )
        assert exact, "distributed result diverged from the reference!"
    print("\nIdentical physics; only the communication time differs.")


if __name__ == "__main__":
    main()
