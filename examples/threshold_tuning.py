#!/usr/bin/env python3
"""Tuning the fusion threshold — and escaping the tuning with a model.

Reproduces the Fig. 8 experiment interactively: sweep the fused-kernel
launch threshold for a sparse workload, watch the under-fused /
over-fused U-curve, then compare against the *model-based* policy (the
paper's stated future work) that launches whenever the cost model says
the pending batch out-runs one kernel-launch overhead — no per-system
byte constant required.

Run:  python examples/threshold_tuning.py
"""

from repro.bench import run_bulk_exchange
from repro.core import FusionPolicy, KernelFusionScheme, ModelBasedPolicy
from repro.net import LASSEN
from repro.workloads import WORKLOADS

KiB = 1024
THRESHOLDS = [16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
              1024 * KiB, 2048 * KiB, 4096 * KiB]
WORKLOAD, DIM = "specfem3D_cm", 2000


def run_with_policy(policy_factory) -> tuple[float, object]:
    def scheme_factory(site, trace):
        return KernelFusionScheme(site, trace, policy=policy_factory(site))

    result = run_bulk_exchange(
        LASSEN, scheme_factory, WORKLOADS[WORKLOAD](DIM),
        nbuffers=16, iterations=3, warmup=1, data_plane=False,
    )
    return result.mean_latency * 1e6, result.scheduler_stats


def main() -> None:
    print(f"Fusion-threshold sweep: {WORKLOAD} dim={DIM}, 32 ops, Lassen\n")
    print(f"{'threshold':>12}{'latency':>12}{'kernels':>9}{'mean batch':>12}")
    print("-" * 45)
    curve = {}
    for threshold in THRESHOLDS:
        latency, stats = run_with_policy(
            lambda _site, t=threshold: FusionPolicy(threshold_bytes=t)
        )
        curve[threshold] = latency
        print(
            f"{threshold // KiB:>10}KB{latency:>10.1f}us{stats.launches:>9}"
            f"{stats.mean_batch:>12.1f}"
        )

    best_threshold = min(curve, key=curve.get)
    print(
        f"\nsweet spot: {best_threshold // KiB} KB "
        f"({curve[best_threshold]:.1f} us) — under-fused below, "
        "over-fused above (§IV-C)"
    )

    latency, stats = run_with_policy(
        lambda site: ModelBasedPolicy(
            arch=site.device.arch, threshold_bytes=1 << 40, launch_cost_multiple=2.0
        )
    )
    print(
        f"\nmodel-based policy (no tuning): {latency:.1f} us "
        f"({stats.launches} fused kernels, mean batch {stats.mean_batch:.1f})"
    )
    gap = latency / curve[best_threshold]
    print(f"  within {gap:.2f}x of the hand-tuned optimum.")


if __name__ == "__main__":
    main()
