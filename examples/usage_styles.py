#!/usr/bin/env python3
"""The three non-contiguous communication styles of Section III.

Implements the paper's Algorithms 1–3 verbatim against the library's
API and times them on the same 2-D halo exchange (Fig. 3):

* **Algorithm 1** — MPI-level *explicit* pack/unpack: ``MPI_Pack`` each
  boundary buffer (blocking!), send the packed bytes, ``MPI_Unpack`` on
  arrival.  Productive-ish, but every pack/unpack synchronizes.
* **Algorithm 2** — *application-level* kernels: the app launches its
  own packing kernels, synchronizes once, then sends contiguous
  buffers.  More code, one sync point, still no overlap with comms.
* **Algorithm 3** — MPI-level *implicit* datatypes: hand the derived
  datatype straight to ``isend``/``irecv`` and let the runtime schedule
  packing.  Ten lines; with the fusion framework underneath it is also
  the fastest — the paper's whole argument.

Run:  python examples/usage_styles.py
"""

import numpy as np

from repro.datatypes import DataLayout
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import halo_2d

GRID = (96, 96)


def _setup(scheme_name):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2)
    runtime = Runtime(sim, cluster, SCHEME_REGISTRY[scheme_name])
    sched = halo_2d(GRID)
    arrays = {}
    for r in (0, 1):
        buf = runtime.rank(r).device.alloc(sched.array_bytes)
        buf.data[:] = np.random.default_rng(r).integers(0, 256, buf.nbytes)
        arrays[r] = buf
    return sim, runtime, sched, arrays


def _tag(direction):
    return hash(direction) % 10_000


def algorithm1_explicit_pack(scheme_name="GPU-Sync"):
    """MPI_Pack / send / recv / MPI_Unpack per neighbor (blocking)."""
    sim, rt, sched, arrays = _setup(scheme_name)

    def program(me, peer):
        rank = rt.rank(me)
        packed_s, packed_r, reqs = {}, {}, []
        for n in sched.neighbors:
            packed_r[n.direction] = rank.device.alloc(n.nbytes)
            reqs.append(
                rank.irecv(
                    packed_r[n.direction], DataLayout.contiguous(n.nbytes), 1,
                    peer, tag=_tag(n.direction),
                )
            )
        for n in sched.neighbors:
            packed_s[n.direction] = rank.device.alloc(n.nbytes)
            # Blocking MPI_Pack: synchronizes per buffer (the problem).
            yield from rank.pack(arrays[me], n.send_type, 1, packed_s[n.direction])
            opposite = tuple(-d for d in n.direction)
            sreq = yield from rank.isend(
                packed_s[n.direction], DataLayout.contiguous(n.nbytes), 1,
                peer, tag=_tag(opposite),
            )
            reqs.append(sreq)
        yield from rank.waitall(reqs)
        for n in sched.neighbors:
            # Blocking MPI_Unpack per buffer.
            yield from rank.unpack(packed_r[n.direction], n.recv_type, 1, arrays[me])

    return _drive(sim, rt, program), sched, arrays


def algorithm2_app_level_kernels(scheme_name="GPU-Async"):
    """App-launched pack kernels, one sync, contiguous sends."""
    sim, rt, sched, arrays = _setup(scheme_name)

    def program(me, peer):
        rank = rt.rank(me)
        scheme = rank.scheme
        packed_s, packed_r = {}, {}
        handles = []
        # Launch all packing kernels asynchronously (lines 1-5).
        yield rank.cpu.request()
        try:
            for n in sched.neighbors:
                packed_s[n.direction] = rank.device.alloc(n.nbytes)
                op = rank.device.pack_op(
                    arrays[me], n.send_type.flatten(), packed_s[n.direction]
                )
                handles.append((yield from scheme.submit(op)))
            # Single synchronization point (line 6).
            yield from scheme.flush()
            yield from scheme.wait(handles)
        finally:
            rank.cpu.release()
        # Contiguous sends/recvs (lines 7-11).
        reqs = []
        for n in sched.neighbors:
            packed_r[n.direction] = rank.device.alloc(n.nbytes)
            reqs.append(
                rank.irecv(
                    packed_r[n.direction], DataLayout.contiguous(n.nbytes), 1,
                    peer, tag=_tag(n.direction),
                )
            )
        for n in sched.neighbors:
            opposite = tuple(-d for d in n.direction)
            sreq = yield from rank.isend(
                packed_s[n.direction], DataLayout.contiguous(n.nbytes), 1,
                peer, tag=_tag(opposite),
            )
            reqs.append(sreq)
        yield from rank.waitall(reqs)
        # Unpack kernels + final sync (lines 12-17).
        handles = []
        yield rank.cpu.request()
        try:
            for n in sched.neighbors:
                op = rank.device.unpack_op(
                    packed_r[n.direction], n.recv_type.flatten(), arrays[me]
                )
                handles.append((yield from scheme.submit(op)))
            yield from scheme.flush()
            yield from scheme.wait(handles)
        finally:
            rank.cpu.release()

    return _drive(sim, rt, program), sched, arrays


def algorithm3_implicit_ddt(scheme_name="Proposed"):
    """Derived datatypes straight into isend/irecv — ten lines."""
    sim, rt, sched, arrays = _setup(scheme_name)

    def program(me, peer):
        rank = rt.rank(me)
        reqs = [
            rank.irecv(arrays[me], n.recv_type, 1, peer, tag=_tag(n.direction))
            for n in sched.neighbors
        ]
        for n in sched.neighbors:
            opposite = tuple(-d for d in n.direction)
            sreq = yield from rank.isend(
                arrays[me], n.send_type, 1, peer, tag=_tag(opposite)
            )
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    return _drive(sim, rt, program), sched, arrays


def _drive(sim, rt, program):
    procs = [sim.process(program(0, 1)), sim.process(program(1, 0))]
    sim.run(sim.all_of(procs))
    return sim.now * 1e6


def _verify(sched, arrays):
    for me, peer in ((0, 1), (1, 0)):
        for n in sched.neighbors:
            opposite = next(
                x for x in sched.neighbors if x.direction == tuple(-d for d in n.direction)
            )
            got = arrays[me].data[n.recv_type.flatten().gather_index()]
            want = arrays[peer].data[opposite.send_type.flatten().gather_index()]
            assert np.array_equal(got, want), n.direction


def main() -> None:
    print(f"2-D halo exchange ({GRID[0]}x{GRID[1]} doubles, 4 neighbors, Lassen)\n")
    for label, fn in (
        ("Algorithm 1: MPI explicit pack/unpack (GPU-Sync)", algorithm1_explicit_pack),
        ("Algorithm 2: app-level kernels (GPU-Async)      ", algorithm2_app_level_kernels),
        ("Algorithm 3: implicit DDT (Proposed fusion)     ", algorithm3_implicit_ddt),
    ):
        latency, sched, arrays = fn()
        _verify(sched, arrays)
        print(f"  {label}: {latency:9.1f} us")
    print(
        "\nSame ghost cells delivered each time; the implicit-datatype "
        "style is both the shortest code and, with fusion, the fastest."
    )


if __name__ == "__main__":
    main()
