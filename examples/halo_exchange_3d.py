#!/usr/bin/env python3
"""Comb-style 3-D halo exchange across every scheme and both systems.

The §V-C workload: a 3-D domain decomposition where each rank exchanges
its 26 boundary regions (6 faces, 12 edges, 8 corners — "a typical 3D
domain decomposition would involve 27 boundary data") per step, using
MPI subarray datatypes.  Face layouts range from contiguous slabs to
fully strided columns, so one exchange exercises the whole spectrum of
dense and sparse blocks at once.

Prints a scheme × system latency table and verifies the ghost cells.

Run:  python examples/halo_exchange_3d.py
"""

import numpy as np

from repro.mpi import Runtime
from repro.net import ABCI, Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import halo_3d

INTERIOR = (24, 24, 24)
SCHEMES = ["GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "MVAPICH2-GDR", "Proposed"]


def _tag(direction):
    return hash(direction) % 10_000


def run(system, scheme_name, verify=True) -> float:
    sim = Simulator()
    cluster = Cluster(sim, system, nodes=2)
    runtime = Runtime(sim, cluster, SCHEME_REGISTRY[scheme_name])
    sched = halo_3d(INTERIOR, corners=True)
    arrays = {}
    for r in (0, 1):
        buf = runtime.rank(r).device.alloc(sched.array_bytes)
        buf.data[:] = np.random.default_rng(r).integers(0, 256, buf.nbytes)
        arrays[r] = buf

    def program(me, peer):
        rank = runtime.rank(me)
        reqs = [
            rank.irecv(arrays[me], n.recv_type, 1, peer, tag=_tag(n.direction))
            for n in sched.neighbors
        ]
        for n in sched.neighbors:
            opposite = tuple(-d for d in n.direction)
            sreq = yield from rank.isend(
                arrays[me], n.send_type, 1, peer, tag=_tag(opposite)
            )
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    procs = [sim.process(program(0, 1)), sim.process(program(1, 0))]
    sim.run(sim.all_of(procs))

    if verify:
        for me, peer in ((0, 1), (1, 0)):
            for n in sched.neighbors:
                opp = next(
                    x for x in sched.neighbors
                    if x.direction == tuple(-d for d in n.direction)
                )
                got = arrays[me].data[n.recv_type.flatten().gather_index()]
                want = arrays[peer].data[opp.send_type.flatten().gather_index()]
                assert np.array_equal(got, want), (scheme_name, n.direction)
    return sim.now * 1e6


def main() -> None:
    sched = halo_3d(INTERIOR, corners=True)
    print(
        f"3-D halo exchange: interior {INTERIOR}, ghost=1, "
        f"{len(sched.neighbors)} neighbors, "
        f"{sched.total_bytes / 1024:.1f} KB of boundary data per rank\n"
    )
    header = f"{'scheme':<16}" + "".join(f"{s.name:>14}" for s in (LASSEN, ABCI))
    print(header)
    print("-" * len(header))
    best = {}
    for scheme in SCHEMES:
        cells = []
        for system in (LASSEN, ABCI):
            latency = run(system, scheme)
            best.setdefault(system.name, []).append((latency, scheme))
            cells.append(f"{latency:>12.1f}us")
        print(f"{scheme:<16}" + "".join(cells))
    print()
    for system_name, entries in best.items():
        latency, scheme = min(entries)
        print(f"  fastest on {system_name}: {scheme} ({latency:.1f} us)")


if __name__ == "__main__":
    main()
