#!/usr/bin/env python3
"""Mixed intra-/inter-node traffic with DirectIPC fusion.

Four ranks on two Lassen nodes (two GPUs per node) run a 1-D ring halo
exchange.  Each rank therefore has one *intra-node* neighbor (reachable
over NVLink) and one *inter-node* neighbor (over InfiniBand):

* with ``enable_direct_ipc=True``, the intra-node transfers skip
  packing entirely — the receiver fuses a **DirectIPC** load-store
  kernel that reads the sender's non-contiguous buffer over NVLink and
  scatters it straight into its own layout (the zero-copy scheme of
  [24], the third request type of the fusion framework, §IV-A1);
* inter-node transfers pack + RDMA as usual, fused with everything
  else in the same request list.

The example prints the ring latency with and without DirectIPC and
shows the request mix the scheduler actually fused.

Run:  python examples/multi_gpu_nodes.py
"""

import numpy as np

from repro.gpu import OpKind
from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import WORKLOADS

SIZE = 4  # 2 nodes x 2 GPUs


def run_ring(enable_direct_ipc: bool):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2, ranks_per_node=2)
    runtime = Runtime(
        sim, cluster, SCHEME_REGISTRY["Proposed"], enable_direct_ipc=enable_direct_ipc
    )
    spec = WORKLOADS["specfem3D_cm"](1000)
    layout = spec.datatype.flatten()
    bufs = {}
    for r in range(SIZE):
        rank = runtime.rank(r)
        send = rank.device.alloc(spec.buffer_bytes())
        send.data[:] = np.random.default_rng(r).integers(0, 256, send.nbytes)
        left = rank.device.alloc(spec.buffer_bytes())
        right = rank.device.alloc(spec.buffer_bytes())
        bufs[r] = (send, left, right)

    def program(r):
        rank = runtime.rank(r)
        left_peer, right_peer = (r - 1) % SIZE, (r + 1) % SIZE
        send, from_left, from_right = bufs[r]
        reqs = [
            rank.irecv(from_left, spec.datatype, 1, left_peer, tag=0),
            rank.irecv(from_right, spec.datatype, 1, right_peer, tag=1),
        ]
        sreq = yield from rank.isend(send, spec.datatype, 1, right_peer, tag=0)
        reqs.append(sreq)
        sreq = yield from rank.isend(send, spec.datatype, 1, left_peer, tag=1)
        reqs.append(sreq)
        yield from rank.waitall(reqs)

    procs = [sim.process(program(r)) for r in range(SIZE)]
    sim.run(sim.all_of(procs))

    # Verify the ring delivered the right neighbours' data.
    idx = layout.gather_index()
    for r in range(SIZE):
        _send, from_left, from_right = bufs[r]
        assert np.array_equal(from_left.data[idx], bufs[(r - 1) % SIZE][0].data[idx])
        assert np.array_equal(from_right.data[idx], bufs[(r + 1) % SIZE][0].data[idx])

    # Tally the fused request mix across all ranks.
    mix = {kind: 0 for kind in OpKind}
    for r in range(SIZE):
        for plan in runtime.rank(r).scheme.scheduler.plans:
            for part in plan.requests:
                mix[part.op.kind] += 1
    return sim.now * 1e6, mix


def main() -> None:
    print(f"1-D ring halo, {SIZE} ranks on 2 nodes x 2 GPUs (Lassen)\n")
    for label, ipc in (("pack + RDMA everywhere     ", False),
                       ("DirectIPC for intra-node   ", True)):
        latency, mix = run_ring(ipc)
        fused = ", ".join(f"{k.value}: {v}" for k, v in mix.items() if v)
        print(f"  {label}: {latency:8.1f} us   fused requests -> {fused}")
    print(
        "\nWith DirectIPC the intra-node hops skip the pack/unpack pair "
        "entirely; the same fused kernels mix packing, unpacking, and "
        "peer load-stores (§IV-A1's three request types)."
    )


if __name__ == "__main__":
    main()
