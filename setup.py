"""Setup shim: enables legacy editable installs where the environment
lacks the ``wheel`` package (offline clusters)."""

from setuptools import setup

setup()
