"""Shared helpers for the per-figure benchmark suite.

Every file in this directory regenerates one table or figure of the
paper's evaluation (Section V).  Conventions:

* Simulated latencies come from :func:`repro.bench.run_bulk_exchange`
  with the data plane disabled (byte-exactness is covered by
  ``tests/``; benchmarks only need the clock).
* Each benchmark prints its paper-style table through the capture-
  disabled console *and* writes it to ``benchmarks/results/<name>.txt``
  so EXPERIMENTS.md can reference stable artifacts.
* ``benchmark.pedantic`` wraps one representative configuration so
  pytest-benchmark records harness wall time; the *scientific* numbers
  are the simulated microseconds inside the tables.
* Shape assertions (who wins, where crossovers fall) make each figure a
  regression test of the reproduction, not just a printout.
* The ``artifact`` fixture writes a machine-readable
  ``BENCH_<name>.json`` (schema :data:`repro.obs.SCHEMA`) next to the
  ``.txt`` table — the perf trajectory the ``repro regress`` gate and
  CI diff across commits.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, Iterable, Optional, Sequence

import pytest

from repro.bench import ExperimentResult, run_bulk_exchange
from repro.core import FusionPolicy, KernelFusionScheme
from repro.net import SystemConfig
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: benchmark-wide measurement settings (the paper uses 500 iters /
#: 50 warm-up on hardware; the simulator is deterministic so steady
#: state needs only a couple of iterations past the cache-warming one)
ITERATIONS = 2
WARMUP = 1

#: harness parameters recorded in every artifact entry so
#: ``repro.obs.regress.rerun_entry`` can reproduce the number
RUN_PARAMS = {"iterations": ITERATIONS, "warmup": WARMUP, "data_plane": False}


def proposed_factory(
    threshold_bytes: int = 512 * 1024,
    capacity: int = 256,
    name: Optional[str] = None,
    **policy_kwargs,
):
    """Factory for the proposed scheme with a specific fusion policy."""

    def factory(site, trace):
        return KernelFusionScheme(
            site,
            trace,
            policy=FusionPolicy(threshold_bytes=threshold_bytes, **policy_kwargs),
            capacity=capacity,
            name=name,
        )

    return factory


def run_grid(
    system: SystemConfig,
    schemes: Dict[str, Callable],
    workload: str,
    dims: Sequence[int],
    *,
    nbuffers: int = 16,
    rendezvous_protocol: str = "rput",
) -> Dict[str, Dict[int, ExperimentResult]]:
    """results[scheme][dim] over a workload's dimension sweep."""
    results: Dict[str, Dict[int, ExperimentResult]] = {s: {} for s in schemes}
    for dim in dims:
        spec = WORKLOADS[workload](dim)
        for name, factory in schemes.items():
            results[name][dim] = run_bulk_exchange(
                system,
                factory,
                spec,
                nbuffers=nbuffers,
                iterations=ITERATIONS,
                warmup=WARMUP,
                data_plane=False,
                rendezvous_protocol=rendezvous_protocol,
            )
    return results


def baseline_schemes(*names: str) -> Dict[str, Callable]:
    """Pick registry schemes by name, preserving order."""
    return {n: SCHEME_REGISTRY[n] for n in names}


def best_speedup(results, scheme: str, over: str) -> float:
    """Max speedup of ``scheme`` over ``over`` across the sweep."""
    return max(
        results[over][d].mean_latency / results[scheme][d].mean_latency
        for d in results[scheme]
    )


@pytest.fixture()
def artifact():
    """Write a versioned ``BENCH_<name>.json`` under results/."""
    from repro.obs import artifact_path, experiment_artifact, write_bench_artifact

    def emit(name, entries=(), *, data=None, meta=None) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        doc = experiment_artifact(name, entries, data=data, meta=meta)
        return write_bench_artifact(artifact_path(str(RESULTS_DIR), name), doc)

    return emit


@pytest.fixture()
def report(capsys):
    """Print a report through capture and persist it under results/."""

    def emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return emit
