"""Shared helpers for the per-figure benchmark suite.

Every file in this directory regenerates one table or figure of the
paper's evaluation (Section V).  Conventions:

* The eight ``test_fig*`` drivers run their grids through the sharded
  sweep engine (:func:`repro.bench.run_figure`) via the ``sweep_run``
  fixture — the same plane ``repro sweep --figure`` executes — so a
  driver, the CLI, and CI always measure identical shards.  The
  ``--sweep-jobs`` / ``--sweep-cache`` options (env:
  ``REPRO_SWEEP_JOBS`` / ``REPRO_SWEEP_CACHE``) fan shards across a
  worker pool and reuse the content-addressed result cache.
* Simulated latencies come from :func:`repro.bench.run_bulk_exchange`
  with the data plane disabled (byte-exactness is covered by
  ``tests/``; benchmarks only need the clock).
* Each benchmark prints its paper-style table through the capture-
  disabled console *and* writes it to ``<results-dir>/<name>.txt``
  so EXPERIMENTS.md can reference stable artifacts.
* ``benchmark.pedantic`` wraps one representative configuration so
  pytest-benchmark records harness wall time; the *scientific* numbers
  are the simulated microseconds inside the tables.
* Shape assertions (who wins, where crossovers fall) make each figure a
  regression test of the reproduction, not just a printout.
* The ``artifact`` fixture writes a machine-readable
  ``BENCH_<name>.json`` (schema :data:`repro.obs.SCHEMA`) next to the
  ``.txt`` table — the perf trajectory the ``repro regress`` gate and
  CI diff across commits.  ``--bench-out`` (env: ``REPRO_BENCH_OUT``)
  redirects both away from the committed ``benchmarks/results/`` so CI
  can compare a fresh run against the committed baseline without
  stashing files.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Dict, Optional, Sequence

import pytest

from repro.bench import ExperimentResult, FigureRun, run_bulk_exchange
from repro.core import FusionPolicy, KernelFusionScheme
from repro.net import SystemConfig
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: benchmark-wide measurement settings (the paper uses 500 iters /
#: 50 warm-up on hardware; the simulator is deterministic so steady
#: state needs only a couple of iterations past the cache-warming one)
ITERATIONS = 2
WARMUP = 1

#: harness parameters recorded in every artifact entry so
#: ``repro.obs.regress.rerun_entry`` can reproduce the number
RUN_PARAMS = {"iterations": ITERATIONS, "warmup": WARMUP, "data_plane": False}


def pytest_addoption(parser):
    group = parser.getgroup("repro sweep")
    group.addoption(
        "--sweep-jobs",
        default=os.environ.get("REPRO_SWEEP_JOBS", "1"),
        help="worker processes for the figure sweeps (env: REPRO_SWEEP_JOBS)",
    )
    group.addoption(
        "--sweep-cache",
        default=os.environ.get("REPRO_SWEEP_CACHE", ""),
        help=(
            "content-addressed shard cache directory; empty disables "
            "caching (env: REPRO_SWEEP_CACHE)"
        ),
    )
    group.addoption(
        "--bench-out",
        default=os.environ.get("REPRO_BENCH_OUT", ""),
        help=(
            "directory for BENCH_*.json / *.txt outputs; defaults to the "
            "committed benchmarks/results/ (env: REPRO_BENCH_OUT)"
        ),
    )


@pytest.fixture(scope="session")
def results_dir(request) -> pathlib.Path:
    """Output directory for artifacts and report tables."""
    out = request.config.getoption("--bench-out")
    path = pathlib.Path(out) if out else RESULTS_DIR
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def sweep_run(request) -> Callable[[str], FigureRun]:
    """``sweep_run("fig09")`` → executed :class:`FigureRun` (memoized).

    Honors ``--sweep-jobs`` / ``--sweep-cache`` so CI can fan the
    figure grids across workers and reuse shard results between the
    perf gate and the benchmark suite.
    """
    from repro.bench import ResultCache, run_figure

    jobs = int(request.config.getoption("--sweep-jobs"))
    cache_dir = request.config.getoption("--sweep-cache")
    cache = ResultCache(cache_dir) if cache_dir else None
    runs: Dict[str, FigureRun] = {}

    def get(figure: str) -> FigureRun:
        if figure not in runs:
            runs[figure] = run_figure(figure, jobs=jobs, cache=cache)
        return runs[figure]

    return get


def proposed_factory(
    threshold_bytes: int = 512 * 1024,
    capacity: int = 256,
    name: Optional[str] = None,
    **policy_kwargs,
):
    """Factory for the proposed scheme with a specific fusion policy."""

    def factory(site, trace):
        return KernelFusionScheme(
            site,
            trace,
            policy=FusionPolicy(threshold_bytes=threshold_bytes, **policy_kwargs),
            capacity=capacity,
            name=name,
        )

    return factory


def run_grid(
    system: SystemConfig,
    schemes: Dict[str, Callable],
    workload: str,
    dims: Sequence[int],
    *,
    nbuffers: int = 16,
    rendezvous_protocol: str = "rput",
) -> Dict[str, Dict[int, ExperimentResult]]:
    """results[scheme][dim] over a workload's dimension sweep."""
    results: Dict[str, Dict[int, ExperimentResult]] = {s: {} for s in schemes}
    for dim in dims:
        spec = WORKLOADS[workload](dim)
        for name, factory in schemes.items():
            results[name][dim] = run_bulk_exchange(
                system,
                factory,
                spec,
                nbuffers=nbuffers,
                iterations=ITERATIONS,
                warmup=WARMUP,
                data_plane=False,
                rendezvous_protocol=rendezvous_protocol,
            )
    return results


def baseline_schemes(*names: str) -> Dict[str, Callable]:
    """Pick registry schemes by name, preserving order."""
    return {n: SCHEME_REGISTRY[n] for n in names}


def best_speedup(results, scheme: str, over: str) -> float:
    """Max speedup of ``scheme`` over ``over`` across the sweep."""
    return max(
        results[over][d].mean_latency / results[scheme][d].mean_latency
        for d in results[scheme]
    )


@pytest.fixture()
def artifact(results_dir):
    """Write a versioned ``BENCH_<name>.json`` under the results dir.

    Accepts either an executed :class:`FigureRun` (the figure drivers)
    or the legacy ``(name, entries)`` / ``(name, data=...)`` form used
    by the non-figure benchmarks.
    """
    from repro.obs import artifact_path, experiment_artifact, write_bench_artifact

    def emit(run_or_name, entries=(), *, data=None, meta=None) -> str:
        if isinstance(run_or_name, FigureRun):
            name = run_or_name.experiment
            doc = run_or_name.artifact_doc()
        else:
            name = run_or_name
            doc = experiment_artifact(name, entries, data=data, meta=meta)
        return write_bench_artifact(artifact_path(str(results_dir), name), doc)

    return emit


@pytest.fixture()
def report(capsys, results_dir):
    """Print a report through capture and persist it under the results dir."""

    def emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return emit
