"""Extension — local datatype-processing microbenchmark (ddtbench-style).

ddtbench [32] measures pure pack/unpack performance without any
communication; this bench does the same for every workload layout and
scheme: 16 pack operations submitted back-to-back on one device, timed
from first submit to last completion.  It reports effective packing
throughput (payload GB/s including all per-operation overheads) — the
"Throughput" column of Table I, quantified.

Expected shape: all GPU schemes achieve similar *kernel* throughput,
but per-operation overheads divide the effective number — fusion keeps
the most; the hybrid CPU path tops out at GDRCopy's few GB/s.
"""

import pytest

from repro.core import KernelFusionScheme
from repro.net import Cluster, LASSEN
from repro.schemes import (
    CPUGPUHybridScheme,
    GPUAsyncScheme,
    GPUSyncScheme,
)
from repro.sim import Simulator, Trace
from repro.workloads import WORKLOADS

N_OPS = 16


def _throughput(scheme_cls, spec):
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=1, functional=False)
    site = cluster.site(0)
    scheme = scheme_cls(site, Trace())
    lay = spec.datatype.flatten()
    dev = site.device
    src = dev.alloc(spec.buffer_bytes() + 8)
    ops = [dev.pack_op(src, lay, dev.alloc(lay.size)) for _ in range(N_OPS)]

    def driver():
        handles = []
        for op in ops:
            h = yield from scheme.submit(op)
            handles.append(h)
        yield from scheme.flush()
        yield from scheme.wait(handles)

    sim.run(sim.process(driver()))
    total_bytes = N_OPS * lay.size
    return total_bytes / sim.now / 1e9  # GB/s


SCHEMES = {
    "GPU-Sync": GPUSyncScheme,
    "GPU-Async": GPUAsyncScheme,
    "CPU-GPU-Hybrid": CPUGPUHybridScheme,
    "Proposed": KernelFusionScheme,
}


def test_pack_throughput_microbench(benchmark, report):
    cases = {
        "specfem3D_cm": WORKLOADS["specfem3D_cm"](4000),
        "MILC": WORKLOADS["MILC"](32),
        "NAS_MG": WORKLOADS["NAS_MG"](256),
    }
    table = {}
    header = f"{'scheme':<16}" + "".join(f"{w:>16}" for w in cases)
    lines = [header, "-" * len(header)]
    for name, cls in SCHEMES.items():
        row = {}
        for wl, spec in cases.items():
            row[wl] = _throughput(cls, spec)
        table[name] = row
        lines.append(
            f"{name:<16}" + "".join(f"{row[w]:>12.2f}GB/s" for w in cases)
        )
    report(
        "pack_microbench",
        f"Extension — local packing throughput ({N_OPS} ops, ddtbench-style)\n"
        "===============================================================\n"
        + "\n".join(lines),
    )

    for wl in cases:
        # Fusion keeps the most effective throughput on every layout...
        best = max(table[name][wl] for name in SCHEMES)
        assert table["Proposed"][wl] == pytest.approx(best), wl
        # ...and beats GPU-Sync clearly (launch+sync amortized away).
        assert table["Proposed"][wl] > 1.5 * table["GPU-Sync"][wl], wl

    # The hybrid CPU path caps near GDRCopy bandwidth on its chosen
    # layouts; for these large inputs it uses the GPU path, so it
    # tracks GPU-Sync minus its decision overhead.
    assert table["CPU-GPU-Hybrid"]["MILC"] < table["Proposed"]["MILC"]

    benchmark.pedantic(
        lambda: _throughput(KernelFusionScheme, cases["MILC"]), rounds=1
    )
