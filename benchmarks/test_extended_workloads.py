"""Extension — the paper's future work: more application workloads.

§VII: "we plan to evaluate the proposed designs with more application
workloads that involve bulk non-contiguous data transfer".  This bench
runs the five additional ddtbench patterns (WRF, NAS_LU x/y, FFT2D,
LAMMPS) through the same Lassen bulk-exchange methodology as Fig. 12
and checks the paper's central prediction generalizes: wherever
per-operation driver overhead is a significant share of the transfer
(i.e. everything short of wire-bound messages), dynamic kernel fusion
wins, with the biggest factors on the many-small-block layouts.
"""


from repro.bench import format_latency_table, run_bulk_exchange
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, WARMUP, best_speedup, proposed_factory

SWEEPS = {
    "WRF": [16, 32, 64],
    "NAS_LU_x": [16, 32, 64],
    "NAS_LU_y": [16, 32, 64],
    "FFT2D": [64, 128, 256],
    "LAMMPS_full": [256, 1024, 4096],
}
SCHEMES = {
    "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
    "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
    "CPU-GPU-Hybrid": SCHEME_REGISTRY["CPU-GPU-Hybrid"],
    "Proposed": proposed_factory(),
}


def test_extended_workloads(benchmark, report):
    chunks = []
    speedups = {}
    for workload, dims in SWEEPS.items():
        grid = {name: {} for name in SCHEMES}
        for dim in dims:
            spec = WORKLOADS[workload](dim)
            for name, factory in SCHEMES.items():
                grid[name][dim] = run_bulk_exchange(
                    LASSEN, factory, spec, nbuffers=16,
                    iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
                )
        chunks.append(
            format_latency_table(
                grid,
                title=f"Extension — {workload} on Lassen (32 nonblocking ops)",
                baseline="GPU-Sync",
            )
        )
        speedups[workload] = best_speedup(grid, "Proposed", "GPU-Sync")
    report("extended_workloads", "\n\n".join(chunks))

    # Fusion wins on every additional workload, several-fold where the
    # messages are overhead-bound.
    for workload, factor in speedups.items():
        assert factor > 1.5, (workload, factor)
    assert max(speedups.values()) > 3.0

    benchmark.pedantic(
        lambda: run_bulk_exchange(
            LASSEN, SCHEMES["Proposed"], WORKLOADS["WRF"](32),
            nbuffers=16, iterations=1, warmup=1, data_plane=False,
        ),
        rounds=1,
    )
