"""Fig. 9 — bulk inter-node transfer, sparse layout (specfem3D_cm), Lassen.

Sweeps the number of exchanged buffers from 1 to 16 (the paper's bulk
axis) at a representative dimension size, comparing the proposed
dynamic kernel fusion against GPU-Sync, GPU-Async, and CPU-GPU-Hybrid.

Expected shape (paper): the proposed design outperforms *every*
existing scheme at *every* buffer count, with the gap growing as more
buffers are exchanged (more kernels to fuse) — up to 5.9× at 16
buffers.  Hybrid tracks GPU-Sync on sparse layouts (its CPU path is
hopeless against thousands of tiny blocks, so it falls back to the
kernel path plus its adaptive overhead).
"""

import pytest

from repro.bench import format_latency_table
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, best_speedup, proposed_factory
from repro.bench import run_bulk_exchange
from repro.obs import entries_from_grid

DIM = 1000
NBUFFERS = [1, 2, 4, 8, 16]
SCHEMES = {
    "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
    "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
    "CPU-GPU-Hybrid": SCHEME_REGISTRY["CPU-GPU-Hybrid"],
    "Proposed": proposed_factory(),
}


def _run_all():
    spec = WORKLOADS["specfem3D_cm"](DIM)
    results = {name: {} for name in SCHEMES}
    for nbuf in NBUFFERS:
        for name, factory in SCHEMES.items():
            results[name][nbuf] = run_bulk_exchange(
                LASSEN, factory, spec, nbuffers=nbuf,
                iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
            )
    return results


def test_fig09_bulk_sparse_lassen(benchmark, report, artifact):
    results = _run_all()
    artifact(
        "fig09_bulk_sparse",
        entries_from_grid(results, column="nbuf", run=RUN_PARAMS),
    )
    report(
        "fig09_bulk_sparse",
        format_latency_table(
            results,
            title=(
                f"Fig. 9 — bulk sparse (specfem3D_cm dim={DIM}) on Lassen, "
                "1-16 buffers"
            ),
            column_label="nbuf",
            baseline="Proposed",
        ),
    )

    # The proposed design wins at every buffer count...
    for nbuf in NBUFFERS:
        prop = results["Proposed"][nbuf].mean_latency
        for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
            assert prop < results[other][nbuf].mean_latency, (other, nbuf)

    # ...and the advantage grows with the bulk size.
    def gap(nbuf):
        return results["GPU-Sync"][nbuf].mean_latency / results["Proposed"][nbuf].mean_latency

    assert gap(16) > gap(1)
    # Headline factor: several-fold at 16 buffers (paper: up to 5.9x).
    assert gap(16) > 2.5
    assert best_speedup(results, "Proposed", "CPU-GPU-Hybrid") > 2.5

    benchmark.pedantic(
        lambda: run_bulk_exchange(
            LASSEN, SCHEMES["Proposed"], WORKLOADS["specfem3D_cm"](DIM),
            nbuffers=16, iterations=1, warmup=1, data_plane=False,
        ),
        rounds=1,
    )
