"""Fig. 9 — bulk inter-node transfer, sparse layout (specfem3D_cm), Lassen.

Sweeps the number of exchanged buffers from 1 to 16 (the paper's bulk
axis) at a representative dimension size, comparing the proposed
dynamic kernel fusion against GPU-Sync, GPU-Async, and CPU-GPU-Hybrid.

Expected shape (paper): the proposed design outperforms *every*
existing scheme at *every* buffer count, with the gap growing as more
buffers are exchanged (more kernels to fuse) — up to 5.9× at 16
buffers.  Hybrid tracks GPU-Sync on sparse layouts (its CPU path is
hopeless against thousands of tiny blocks, so it falls back to the
kernel path plus its adaptive overhead).
"""


from repro.bench import ExperimentSpec, format_latency_table
from repro.bench.figures import BULK_NBUFFERS as NBUFFERS
from repro.bench.figures import FIG09_DIM as DIM
from repro.bench.figures import fig09_results

from conftest import best_speedup


def test_fig09_bulk_sparse_lassen(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig09")
    results = fig09_results(run.views)
    artifact(run)
    report(
        "fig09_bulk_sparse",
        format_latency_table(
            results,
            title=(
                f"Fig. 9 — bulk sparse (specfem3D_cm dim={DIM}) on Lassen, "
                "1-16 buffers"
            ),
            column_label="nbuf",
            baseline="Proposed",
        ),
    )

    # The proposed design wins at every buffer count...
    for nbuf in NBUFFERS:
        prop = results["Proposed"][nbuf].mean_latency
        for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
            assert prop < results[other][nbuf].mean_latency, (other, nbuf)

    # ...and the advantage grows with the bulk size.
    def gap(nbuf):
        return results["GPU-Sync"][nbuf].mean_latency / results["Proposed"][nbuf].mean_latency

    assert gap(16) > gap(1)
    # Headline factor: several-fold at 16 buffers (paper: up to 5.9x).
    assert gap(16) > 2.5
    assert best_speedup(results, "Proposed", "CPU-GPU-Hybrid") > 2.5

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig09", dim=DIM, iterations=1
        ).run_result(),
        rounds=1,
    )
