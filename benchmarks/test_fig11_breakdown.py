"""Fig. 11 — time breakdown of the GPU-driven designs (MILC, ABCI).

Back-to-back 16 non-contiguous transfers between two ABCI GPU nodes,
decomposed into the paper's five buckets: (Un)Pack, Launching,
Scheduling, Sync., and observed Comm.

Expected shape (paper):

* GPU-Sync and GPU-Async pay far more *Launching* than the proposed
  design (per-op vs per-batch launches);
* GPU-Sync has the highest explicit *Sync.* cost
  (``cudaStreamSynchronize`` per op);
* GPU-Async carries the largest *Scheduling* bar (event records) plus
  heavy query-based Sync.;
* the proposed design's Launching + Scheduling + Sync. are all small —
  its scheduling cost is ~2 µs per message (§V-B) — leaving packing and
  observed communication to dominate.
"""

import pytest

from repro.bench import format_breakdown_table, run_bulk_exchange
from repro.net import ABCI
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Category, us
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, proposed_factory
from repro.obs import result_entry

NBUF = 16
DIM = 16
SCHEMES = {
    "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
    "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
    "Proposed": proposed_factory(),
}


def _run(factory):
    return run_bulk_exchange(
        ABCI, factory, WORKLOADS["MILC"](DIM), nbuffers=NBUF,
        iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
    )


def test_fig11_time_breakdown(benchmark, report, artifact):
    results = [_run(f) for f in SCHEMES.values()]
    by_name = dict(zip(SCHEMES, results))
    artifact(
        "fig11_breakdown",
        [
            result_entry(
                r,
                key=name,
                config=(
                    {"threshold_bytes": 512 * 1024} if name == "Proposed" else None
                ),
                run=RUN_PARAMS,
            )
            for name, r in by_name.items()
        ],
    )
    report(
        "fig11_breakdown",
        format_breakdown_table(
            results,
            title=f"Fig. 11 — time breakdown, MILC dim={DIM}, {NBUF} transfers, ABCI",
        ),
    )

    sync_bd = by_name["GPU-Sync"].breakdown
    async_bd = by_name["GPU-Async"].breakdown
    prop_bd = by_name["Proposed"].breakdown

    # Launching: per-op for the baselines, per-batch for the proposal
    # (a handful of fused launches vs 32 / 64 individual ones).
    assert prop_bd[Category.LAUNCH] < sync_bd[Category.LAUNCH] / 2
    assert prop_bd[Category.LAUNCH] < async_bd[Category.LAUNCH] / 4

    # GPU-Sync pays the heaviest explicit synchronization.
    assert sync_bd[Category.SYNC] > prop_bd[Category.SYNC]

    # GPU-Async's event bookkeeping gives it the biggest Scheduling bar
    # and more Sync. than the flag-polling proposal.
    assert async_bd[Category.SCHED] > sync_bd[Category.SCHED]
    assert async_bd[Category.SCHED] > prop_bd[Category.SCHED]
    assert async_bd[Category.SYNC] > prop_bd[Category.SYNC]

    # §V-B: the proposed scheduler costs about 2 us per message.
    # (Each rank handles 2*NBUF operations: its sends and receives.)
    per_message = prop_bd[Category.SCHED] / (2 * NBUF)
    assert us(0.5) < per_message < us(3.0)

    # The proposed total is the lowest.
    assert by_name["Proposed"].mean_latency == min(r.mean_latency for r in results)

    benchmark.pedantic(lambda: _run(SCHEMES["Proposed"]), rounds=1)
