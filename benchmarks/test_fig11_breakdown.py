"""Fig. 11 — time breakdown of the GPU-driven designs (MILC, ABCI).

Back-to-back 16 non-contiguous transfers between two ABCI GPU nodes,
decomposed into the paper's five buckets: (Un)Pack, Launching,
Scheduling, Sync., and observed Comm.

Expected shape (paper):

* GPU-Sync and GPU-Async pay far more *Launching* than the proposed
  design (per-op vs per-batch launches);
* GPU-Sync has the highest explicit *Sync.* cost
  (``cudaStreamSynchronize`` per op);
* GPU-Async carries the largest *Scheduling* bar (event records) plus
  heavy query-based Sync.;
* the proposed design's Launching + Scheduling + Sync. are all small —
  its scheduling cost is ~2 µs per message (§V-B) — leaving packing and
  observed communication to dominate.
"""


from repro.bench import ExperimentSpec, format_breakdown_table
from repro.bench.figures import FIG11_DIM as DIM
from repro.bench.figures import FIG11_NBUF as NBUF
from repro.bench.figures import fig11_results
from repro.sim import Category, us


def test_fig11_time_breakdown(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig11")
    by_name = fig11_results(run.views)
    results = list(by_name.values())
    artifact(run)
    report(
        "fig11_breakdown",
        format_breakdown_table(
            results,
            title=f"Fig. 11 — time breakdown, MILC dim={DIM}, {NBUF} transfers, ABCI",
        ),
    )

    sync_bd = by_name["GPU-Sync"].breakdown
    async_bd = by_name["GPU-Async"].breakdown
    prop_bd = by_name["Proposed"].breakdown

    # Launching: per-op for the baselines, per-batch for the proposal
    # (a handful of fused launches vs 32 / 64 individual ones).
    assert prop_bd[Category.LAUNCH] < sync_bd[Category.LAUNCH] / 2
    assert prop_bd[Category.LAUNCH] < async_bd[Category.LAUNCH] / 4

    # GPU-Sync pays the heaviest explicit synchronization.
    assert sync_bd[Category.SYNC] > prop_bd[Category.SYNC]

    # GPU-Async's event bookkeeping gives it the biggest Scheduling bar
    # and more Sync. than the flag-polling proposal.
    assert async_bd[Category.SCHED] > sync_bd[Category.SCHED]
    assert async_bd[Category.SCHED] > prop_bd[Category.SCHED]
    assert async_bd[Category.SYNC] > prop_bd[Category.SYNC]

    # §V-B: the proposed scheduler costs about 2 us per message.
    # (Each rank handles 2*NBUF operations: its sends and receives.)
    per_message = prop_bd[Category.SCHED] / (2 * NBUF)
    assert us(0.5) < per_message < us(3.0)

    # The proposed total is the lowest.
    assert by_name["Proposed"].mean_latency == min(r.mean_latency for r in results)

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig11", system="ABCI", workload="MILC",
            dim=DIM, iterations=1,
        ).run_result(),
        rounds=1,
    )
