"""Table I — qualitative feature matrix of the evaluated approaches.

Regenerates the paper's comparison columns (layout cache, GPU driver
overhead, overall latency, overlap with communication) from the scheme
classes' declared capabilities and asserts the proposed row is the only
one combining a layout cache with low driver overhead, low latency, and
high overlap.
"""

from repro.core.framework import KernelFusionScheme
from repro.schemes import (
    CPUGPUHybridScheme,
    GPUAsyncScheme,
    GPUSyncScheme,
    NaiveCopyScheme,
)

ROWS = {
    "GPU-Sync [8,22]": GPUSyncScheme,
    "GPU-Async [23]": GPUAsyncScheme,
    "CPU-GPU-Hybrid [24]": CPUGPUHybridScheme,
    "Naive copies (prod.)": NaiveCopyScheme,
    "Proposed": KernelFusionScheme,
}


def test_table1_feature_matrix(benchmark, report):
    header = (
        f"{'approach':<22}{'cache':>7}{'driver ovh':>12}{'latency':>9}"
        f"{'overlap':>9}{'GDRCopy':>9}"
    )
    lines = [header, "-" * len(header)]
    for name, cls in ROWS.items():
        c = cls.capabilities
        lines.append(
            f"{name:<22}{'Y' if c.layout_cache else 'N':>7}"
            f"{c.driver_overhead:>12}{c.latency:>9}{c.overlap:>9}"
            f"{'req' if c.requires_gdrcopy else '-':>9}"
        )
    report(
        "table1_features",
        "Table I — approach feature matrix\n"
        "=================================\n" + "\n".join(lines),
    )

    winners = [
        name
        for name, cls in ROWS.items()
        if cls.capabilities.layout_cache
        and cls.capabilities.driver_overhead == "low"
        and cls.capabilities.latency == "low"
        and cls.capabilities.overlap == "high"
        and not cls.capabilities.requires_gdrcopy
    ]
    assert winners == ["Proposed"]

    benchmark.pedantic(lambda: [cls.capabilities for cls in ROWS.values()], rounds=1)
