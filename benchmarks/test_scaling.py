"""Extension — rank-count scaling of the bulk exchange.

Not a paper figure: the paper runs two ranks on two nodes; this bench
scales the same bulk pattern to larger jobs (2–8 ranks over 2 nodes,
ring neighbors, mixed intra-/inter-node traffic) and checks that the
fusion advantage *persists* as the job grows — per-rank request lists
and schedulers are independent, so nothing serializes globally.
"""


from repro.mpi import Runtime
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator
from repro.workloads import WORKLOADS

from conftest import proposed_factory

NBUF = 8


def _ring_latency(scheme_factory, ranks_per_node):
    sim = Simulator()
    cluster = Cluster(
        sim, LASSEN, nodes=2, ranks_per_node=ranks_per_node, functional=False
    )
    rt = Runtime(sim, cluster, scheme_factory)
    size = rt.size
    spec = WORKLOADS["specfem3D_cm"](1000)

    bufs = {}
    for r in range(size):
        rank = rt.rank(r)
        bufs[r] = (
            rank.device.alloc(spec.buffer_bytes()),
            rank.device.alloc(spec.buffer_bytes()),
            rank.device.alloc(spec.buffer_bytes()),
        )

    def program(r):
        rank = rt.rank(r)
        left, right = (r - 1) % size, (r + 1) % size
        send, from_left, from_right = bufs[r]
        reqs = []
        for i in range(NBUF):
            reqs.append(rank.irecv(from_left, spec.datatype, 1, left, tag=i))
            reqs.append(rank.irecv(from_right, spec.datatype, 1, right, tag=NBUF + i))
        for i in range(NBUF):
            sreq = yield from rank.isend(send, spec.datatype, 1, right, tag=i)
            reqs.append(sreq)
            sreq = yield from rank.isend(send, spec.datatype, 1, left, tag=NBUF + i)
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    procs = [sim.process(program(r)) for r in range(size)]
    sim.run(sim.all_of(procs))
    return sim.now


def test_scaling_ring(benchmark, report):
    rows = []
    speedups = {}
    for rpn in (1, 2, 4):
        sync = _ring_latency(SCHEME_REGISTRY["GPU-Sync"], rpn)
        prop = _ring_latency(proposed_factory(), rpn)
        speedups[rpn] = sync / prop
        rows.append(
            f"  {2 * rpn} ranks (2 nodes x {rpn} GPUs): "
            f"GPU-Sync={sync * 1e6:9.1f}us  Proposed={prop * 1e6:9.1f}us  "
            f"({speedups[rpn]:.2f}x)"
        )
    report(
        "scaling_ring",
        "Extension — ring bulk exchange vs job size "
        f"(specfem3D_cm dim=1000, {2 * NBUF} ops/rank)\n" + "\n".join(rows),
    )
    # The fusion win persists at every job size.
    for rpn, factor in speedups.items():
        assert factor > 2.0, (rpn, factor)

    benchmark.pedantic(lambda: _ring_latency(proposed_factory(), 2), rounds=1)
