"""Fig. 1 — kernel launch overhead vs. pack-kernel time across GPUs.

The paper's motivating measurement: for the Specfem3D and MILC datatype
workloads, the time to *launch* an optimized packing kernel meets or
exceeds the kernel's own execution time on modern NVIDIA architectures,
and this launch overhead barely improved across generations while the
kernels themselves got dramatically faster.

Expected shape (paper): launch ≈ 6–12 µs on every architecture; pack
kernels shrink from tens of µs (Kepler) to a few µs (Volta), so on
Pascal/Volta the launch bar dominates.
"""


from repro.bench.figures import TABLE_BUILDERS


def test_fig01_launch_vs_pack(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig01")
    data = run.entries[0]["data"]
    artifact(run)

    rows = [
        f"{arch_name:<16}{entry['launch'] * 1e6:>10.2f}us"
        f"{entry['Specfem3D'] * 1e6:>14.2f}us{entry['MILC'] * 1e6:>12.2f}us"
        for arch_name, entry in data.items()
    ]
    header = f"{'architecture':<16}{'launch':>12}{'Specfem3D':>16}{'MILC':>14}"
    report(
        "fig01_launch_overhead",
        "Fig. 1 — launch overhead vs pack kernel time\n"
        "=============================================\n"
        + header + "\n" + "-" * len(header) + "\n" + "\n".join(rows),
    )

    # Shape assertions -----------------------------------------------------
    volta = data["Tesla V100"]
    kepler = data["Tesla K80"]
    # Launch overhead dominates the pack kernels on modern GPUs...
    assert volta["launch"] > volta["Specfem3D"]
    assert volta["launch"] > volta["MILC"]
    # ...kernels got much faster across generations...
    assert volta["Specfem3D"] < kepler["Specfem3D"] / 3
    # ...while launch overhead stayed the same order of magnitude.
    assert volta["launch"] > kepler["launch"] / 2

    benchmark.pedantic(
        TABLE_BUILDERS["fig01_launch_overhead"], rounds=3, iterations=10
    )
