"""Fig. 14 — comparison with production MPI libraries on Lassen.

Normalized to SpectrumMPI (higher is better), like the paper's bars:

* **SpectrumMPI** and **OpenMPI+UCX** have no optimized non-contiguous
  GPU path — they issue one ``cudaMemcpyAsync`` per contiguous block,
  so sparse layouts with thousands of blocks cost thousands of driver
  calls.  The paper reports the proposed design "can be thousand times
  faster"; the factor scales directly with the block count.
* **MVAPICH2-GDR** adaptively combines CPU-GPU-Hybrid and GPU-Sync —
  competent, but still per-operation; the proposed design reaches
  8.8× (sparse) / 4.3× (dense) over it in the paper.
"""


from repro.bench import ExperimentSpec, format_speedup_table, speedup_matrix
from repro.bench.figures import FIG14_CASES as CASES
from repro.bench.figures import fig14_grids


def test_fig14_production_libraries(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig14")
    grids = fig14_grids(run.views)
    artifact(run)
    chunks = [
        format_speedup_table(
            grids[workload],
            "SpectrumMPI",
            title=(
                f"Fig. 14 — vs production libraries, {workload} on Lassen "
                "(normalized to SpectrumMPI, higher is better)"
            ),
        )
        for workload in CASES
    ]
    report("fig14_production", "\n\n".join(chunks))

    sparse = speedup_matrix(grids["specfem3D_cm"], "SpectrumMPI")
    dense = speedup_matrix(grids["MILC"], "SpectrumMPI")

    # Orders of magnitude over the naive per-block production path on
    # sparse layouts (paper: "thousand times faster").
    assert max(sparse["Proposed"].values()) > 500
    # OpenMPI's slightly leaner copy path still loses by orders too.
    assert max(sparse["OpenMPI"].values()) < 2
    # Dense layouts have ~100x fewer blocks, so the gap shrinks but
    # stays large.
    assert max(dense["Proposed"].values()) > 50

    # Versus the optimized MVAPICH2-GDR: several-fold, sparse > dense
    # (paper: 8.8x sparse, 4.3x dense).
    def vs_mvapich(grid):
        return max(
            grid["MVAPICH2-GDR"][d].mean_latency / grid["Proposed"][d].mean_latency
            for d in grid["Proposed"]
        )

    sparse_factor = vs_mvapich(grids["specfem3D_cm"])
    dense_factor = vs_mvapich(grids["MILC"])
    assert sparse_factor > 2.5
    assert dense_factor > 2.0
    assert sparse_factor > dense_factor

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig14", scheme="MVAPICH2-GDR",
            workload="MILC", dim=16, iterations=1,
        ).run_result(),
        rounds=1,
    )
