"""Fig. 14 — comparison with production MPI libraries on Lassen.

Normalized to SpectrumMPI (higher is better), like the paper's bars:

* **SpectrumMPI** and **OpenMPI+UCX** have no optimized non-contiguous
  GPU path — they issue one ``cudaMemcpyAsync`` per contiguous block,
  so sparse layouts with thousands of blocks cost thousands of driver
  calls.  The paper reports the proposed design "can be thousand times
  faster"; the factor scales directly with the block count.
* **MVAPICH2-GDR** adaptively combines CPU-GPU-Hybrid and GPU-Sync —
  competent, but still per-operation; the proposed design reaches
  8.8× (sparse) / 4.3× (dense) over it in the paper.
"""

import pytest

from repro.bench import format_speedup_table, run_bulk_exchange, speedup_matrix
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, proposed_factory
from repro.obs import entries_from_grid

CASES = {
    "specfem3D_cm": [250, 1000],  # sparse
    "MILC": [16, 32],             # dense
}
SCHEMES = {
    "SpectrumMPI": SCHEME_REGISTRY["SpectrumMPI"],
    "OpenMPI": SCHEME_REGISTRY["OpenMPI"],
    "MVAPICH2-GDR": SCHEME_REGISTRY["MVAPICH2-GDR"],
    "Proposed": proposed_factory(),
}


def _grid(workload, dims):
    out = {name: {} for name in SCHEMES}
    for dim in dims:
        spec = WORKLOADS[workload](dim)
        for name, factory in SCHEMES.items():
            out[name][dim] = run_bulk_exchange(
                LASSEN, factory, spec, nbuffers=16,
                iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
            )
    return out


def test_fig14_production_libraries(benchmark, report, artifact):
    chunks = []
    grids = {}
    entries = []
    for workload, dims in CASES.items():
        grids[workload] = _grid(workload, dims)
        entries.extend(
            entries_from_grid(
                grids[workload], column="dim", key_prefix=workload, run=RUN_PARAMS
            )
        )
        chunks.append(
            format_speedup_table(
                grids[workload],
                "SpectrumMPI",
                title=(
                    f"Fig. 14 — vs production libraries, {workload} on Lassen "
                    "(normalized to SpectrumMPI, higher is better)"
                ),
            )
        )
    artifact("fig14_production", entries)
    report("fig14_production", "\n\n".join(chunks))

    sparse = speedup_matrix(grids["specfem3D_cm"], "SpectrumMPI")
    dense = speedup_matrix(grids["MILC"], "SpectrumMPI")

    # Orders of magnitude over the naive per-block production path on
    # sparse layouts (paper: "thousand times faster").
    assert max(sparse["Proposed"].values()) > 500
    # OpenMPI's slightly leaner copy path still loses by orders too.
    assert max(sparse["OpenMPI"].values()) < 2
    # Dense layouts have ~100x fewer blocks, so the gap shrinks but
    # stays large.
    assert max(dense["Proposed"].values()) > 50

    # Versus the optimized MVAPICH2-GDR: several-fold, sparse > dense
    # (paper: 8.8x sparse, 4.3x dense).
    def vs_mvapich(grid):
        return max(
            grid["MVAPICH2-GDR"][d].mean_latency / grid["Proposed"][d].mean_latency
            for d in grid["Proposed"]
        )

    sparse_factor = vs_mvapich(grids["specfem3D_cm"])
    dense_factor = vs_mvapich(grids["MILC"])
    assert sparse_factor > 2.5
    assert dense_factor > 2.0
    assert sparse_factor > dense_factor

    benchmark.pedantic(
        lambda: run_bulk_exchange(
            LASSEN, SCHEMES["MVAPICH2-GDR"], WORKLOADS["MILC"](16),
            nbuffers=16, iterations=1, warmup=1, data_plane=False,
        ),
        rounds=1,
    )
