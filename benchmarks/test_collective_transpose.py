"""Extension — datatype-typed alltoall (FFT transpose) under fusion.

Not a paper figure: the paper's bulk scenario ("multiple non-contiguous
data transfers to multiple neighbors") arises most naturally from
collectives, so this bench runs a matrix-transpose ``MPI_Alltoall`` of
resized column-block datatypes across 4 ranks (2 nodes × 2 GPUs) and
compares schemes.  Every rank packs P-1 strided column blocks and
unpacks P-1 row blocks per call — 6 fusable kernels per rank here,
which the proposed framework batches into a handful of launches.
"""


from repro.datatypes import DOUBLE, Contiguous, Resized, Vector
from repro.mpi import Runtime, alltoall
from repro.net import Cluster, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.sim import Simulator

from conftest import proposed_factory

SIZE = 4
N = 256  # local matrix N x N doubles


def _transpose_latency(scheme_factory) -> tuple:
    sim = Simulator()
    cluster = Cluster(sim, LASSEN, nodes=2, ranks_per_node=2, functional=False)
    rt = Runtime(sim, cluster, scheme_factory)
    colw = N // SIZE
    col = Resized(Vector(N, colw, N, DOUBLE), 0, colw * 8).commit()
    row = Contiguous(N * colw, DOUBLE).commit()
    bufs = {
        r: (rt.rank(r).device.alloc(N * N * 8), rt.rank(r).device.alloc(N * N * 8))
        for r in range(SIZE)
    }

    def prog(r):
        yield from alltoall(rt.rank(r), bufs[r][0], col, bufs[r][1], row)

    procs = [sim.process(prog(r)) for r in range(SIZE)]
    sim.run(sim.all_of(procs))
    scheme0 = rt.rank(0).scheme
    stats = getattr(scheme0, "scheduler", None)
    return sim.now, stats.stats if stats else None


def test_transpose_alltoall(benchmark, report):
    schemes = {
        "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
        "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
        "CPU-GPU-Hybrid": SCHEME_REGISTRY["CPU-GPU-Hybrid"],
        "Proposed": proposed_factory(),
    }
    rows = []
    latency = {}
    for name, factory in schemes.items():
        lat, stats = _transpose_latency(factory)
        latency[name] = lat
        extra = (
            f"  ({stats.launches} fused kernels, mean batch {stats.mean_batch:.1f})"
            if stats
            else ""
        )
        rows.append(f"  {name:<16}{lat * 1e6:>10.2f}us{extra}")
    report(
        "collective_transpose",
        f"Extension — {N}x{N} transpose alltoall, {SIZE} ranks "
        "(2 nodes x 2 GPUs, Lassen)\n" + "\n".join(rows),
    )

    assert latency["Proposed"] == min(latency.values())
    assert latency["GPU-Sync"] / latency["Proposed"] > 1.5

    benchmark.pedantic(
        lambda: _transpose_latency(schemes["Proposed"]), rounds=1
    )
