"""Fig. 12 — all four workloads across sizes on Lassen (32 ops).

The paper's main per-system evaluation: 3-D-halo-style bulk exchanges
(16 nonblocking sends + 16 nonblocking receives per rank) for every
workload layout across dimension sizes, on the Lassen configuration.

Expected shape (paper):

* (a,b) sparse specfem3D layouts: the proposed design significantly
  outperforms every baseline at every size — up to 8.5× / 7.1× / 8.9×
  over Hybrid / GPU-Sync / GPU-Async;
* (c) MILC: the one exception — CPU-GPU-Hybrid wins the *small* dense
  sizes (GDRCopy, zero driver overhead);
* (d) NAS_MG: proposed wins 1.4–5.8× with the factor shrinking as the
  wire time starts to dominate at large faces.

``Proposed-Tuned`` uses the per-workload best threshold from the
figure's tuning phase (the paper's manually tuned variant) — the sweep
engine runs those shards first and expands the main grid from their
outcome.
"""


from repro.bench import format_latency_table
from repro.bench.figures import FIG12_SWEEPS as SWEEPS
from repro.bench.figures import fig12_tables

from conftest import best_speedup


def check_figure_shape(tables, *, sparse_min_speedup):
    """Assertions shared by figures 12 and 13."""
    # (a, b): sparse layouts — proposed dominates everywhere.
    for workload in ("specfem3D_oc", "specfem3D_cm"):
        grid = tables[workload]
        for dim in SWEEPS[workload]:
            prop = grid["Proposed-Tuned"][dim].mean_latency
            for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
                assert prop < grid[other][dim].mean_latency, (workload, other, dim)
        for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
            assert best_speedup(grid, "Proposed-Tuned", other) > sparse_min_speedup, (
                workload, other,
            )

    # (c): MILC small dense — hybrid is the winner (the one exception):
    # it beats the proposed design outright at the smallest size and
    # stays competitive at the next, before losing to fusion.
    milc = tables["MILC"]
    smallest, second = SWEEPS["MILC"][0], SWEEPS["MILC"][1]
    assert (
        milc["CPU-GPU-Hybrid"][smallest].mean_latency
        < milc["Proposed"][smallest].mean_latency
    )
    assert (
        milc["CPU-GPU-Hybrid"][second].mean_latency
        < 1.3 * milc["Proposed"][second].mean_latency
    )
    # At larger MILC sizes the proposal takes over.
    big = SWEEPS["MILC"][-1]
    assert (
        milc["Proposed-Tuned"][big].mean_latency
        <= milc["CPU-GPU-Hybrid"][big].mean_latency
    )

    # (d): NAS — proposed wins with a shrinking factor at large faces.
    nas = tables["NAS_MG"]
    for dim in SWEEPS["NAS_MG"]:
        assert (
            nas["Proposed-Tuned"][dim].mean_latency
            <= nas["GPU-Sync"][dim].mean_latency
        )
    small_gap = (
        nas["GPU-Sync"][32].mean_latency / nas["Proposed-Tuned"][32].mean_latency
    )
    big_gap = (
        nas["GPU-Sync"][256].mean_latency / nas["Proposed-Tuned"][256].mean_latency
    )
    assert small_gap > big_gap > 1.0


def emit_tables(report, name, system_label, tables):
    chunks = []
    for workload, grid in tables.items():
        chunks.append(
            format_latency_table(
                grid,
                title=f"{name} — {workload} on {system_label} (32 nonblocking ops)",
                baseline="GPU-Sync",
            )
        )
    report(name.lower().replace(". ", "").replace(" ", "_"), "\n\n".join(chunks))


def test_fig12_lassen(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig12")
    tables = fig12_tables(run.views)
    artifact(run)
    emit_tables(report, "Fig12", "Lassen", tables)
    check_figure_shape(tables, sparse_min_speedup=3.0)

    from repro.bench import ExperimentSpec

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig12", dim=1000, iterations=1
        ).run_result(),
        rounds=1,
    )
