"""Fig. 12 — all four workloads across sizes on Lassen (32 ops).

The paper's main per-system evaluation: 3-D-halo-style bulk exchanges
(16 nonblocking sends + 16 nonblocking receives per rank) for every
workload layout across dimension sizes, on the Lassen configuration.

Expected shape (paper):

* (a,b) sparse specfem3D layouts: the proposed design significantly
  outperforms every baseline at every size — up to 8.5× / 7.1× / 8.9×
  over Hybrid / GPU-Sync / GPU-Async;
* (c) MILC: the one exception — CPU-GPU-Hybrid wins the *small* dense
  sizes (GDRCopy, zero driver overhead);
* (d) NAS_MG: proposed wins 1.4–5.8× with the factor shrinking as the
  wire time starts to dominate at large faces.

``Proposed-Tuned`` uses the per-workload best threshold from a small
sweep (the paper's manually tuned variant).
"""

import pytest

from repro.bench import format_latency_table, run_bulk_exchange
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, best_speedup, proposed_factory
from repro.obs import entries_from_grid

KiB = 1024
SWEEPS = {
    "specfem3D_oc": [500, 1000, 2000, 4000, 8000],
    "specfem3D_cm": [250, 500, 1000, 2000, 4000],
    "MILC": [2, 4, 8, 16, 32],
    "NAS_MG": [32, 64, 128, 256],
}
TUNE_CANDIDATES = [128 * KiB, 256 * KiB, 512 * KiB]


def _run(system, factory, workload, dim, nbuffers=16):
    return run_bulk_exchange(
        system, factory, WORKLOADS[workload](dim), nbuffers=nbuffers,
        iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
    )


def tuned_threshold(system, workload, dim):
    """Pick the best fusion threshold from a small sweep (tuning run)."""
    best, best_lat = None, float("inf")
    for threshold in TUNE_CANDIDATES:
        lat = _run(system, proposed_factory(threshold), workload, dim).mean_latency
        if lat < best_lat:
            best, best_lat = threshold, lat
    return best


def run_figure(system):
    """Shared by Fig. 12 (Lassen) and Fig. 13 (ABCI)."""
    tables = {}
    for workload, dims in SWEEPS.items():
        mid = dims[len(dims) // 2]
        tuned = tuned_threshold(system, workload, mid)
        schemes = {
            "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
            "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
            "CPU-GPU-Hybrid": SCHEME_REGISTRY["CPU-GPU-Hybrid"],
            "Proposed": proposed_factory(),
            "Proposed-Tuned": proposed_factory(tuned, name="Proposed-Tuned"),
        }
        grid = {name: {} for name in schemes}
        for dim in dims:
            for name, factory in schemes.items():
                grid[name][dim] = _run(system, factory, workload, dim)
        tables[workload] = grid
    return tables


def check_figure_shape(tables, *, sparse_min_speedup):
    """Assertions shared by figures 12 and 13."""
    # (a, b): sparse layouts — proposed dominates everywhere.
    for workload in ("specfem3D_oc", "specfem3D_cm"):
        grid = tables[workload]
        for dim in SWEEPS[workload]:
            prop = grid["Proposed-Tuned"][dim].mean_latency
            for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
                assert prop < grid[other][dim].mean_latency, (workload, other, dim)
        for other in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid"):
            assert best_speedup(grid, "Proposed-Tuned", other) > sparse_min_speedup, (
                workload, other,
            )

    # (c): MILC small dense — hybrid is the winner (the one exception):
    # it beats the proposed design outright at the smallest size and
    # stays competitive at the next, before losing to fusion.
    milc = tables["MILC"]
    smallest, second = SWEEPS["MILC"][0], SWEEPS["MILC"][1]
    assert (
        milc["CPU-GPU-Hybrid"][smallest].mean_latency
        < milc["Proposed"][smallest].mean_latency
    )
    assert (
        milc["CPU-GPU-Hybrid"][second].mean_latency
        < 1.3 * milc["Proposed"][second].mean_latency
    )
    # At larger MILC sizes the proposal takes over.
    big = SWEEPS["MILC"][-1]
    assert (
        milc["Proposed-Tuned"][big].mean_latency
        <= milc["CPU-GPU-Hybrid"][big].mean_latency
    )

    # (d): NAS — proposed wins with a shrinking factor at large faces.
    nas = tables["NAS_MG"]
    for dim in SWEEPS["NAS_MG"]:
        assert (
            nas["Proposed-Tuned"][dim].mean_latency
            <= nas["GPU-Sync"][dim].mean_latency
        )
    small_gap = (
        nas["GPU-Sync"][32].mean_latency / nas["Proposed-Tuned"][32].mean_latency
    )
    big_gap = (
        nas["GPU-Sync"][256].mean_latency / nas["Proposed-Tuned"][256].mean_latency
    )
    assert small_gap > big_gap > 1.0


def emit_tables(report, name, system_label, tables):
    chunks = []
    for workload, grid in tables.items():
        chunks.append(
            format_latency_table(
                grid,
                title=f"{name} — {workload} on {system_label} (32 nonblocking ops)",
                baseline="GPU-Sync",
            )
        )
    report(name.lower().replace(". ", "").replace(" ", "_"), "\n\n".join(chunks))


def figure_entries(tables):
    """Artifact entries for a fig-12/13 per-workload table set."""
    entries = []
    for workload, grid in tables.items():
        entries.extend(
            entries_from_grid(
                grid, column="dim", key_prefix=workload, run=RUN_PARAMS
            )
        )
    return entries


def test_fig12_lassen(benchmark, report, artifact):
    tables = run_figure(LASSEN)
    artifact("fig12", figure_entries(tables))
    emit_tables(report, "Fig12", "Lassen", tables)
    check_figure_shape(tables, sparse_min_speedup=3.0)
    benchmark.pedantic(
        lambda: _run(LASSEN, proposed_factory(), "specfem3D_cm", 1000), rounds=1
    )
