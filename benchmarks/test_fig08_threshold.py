"""Fig. 8 — performance effect of the fused-kernel launch threshold.

specfem3D_cm (sparse, MPI indexed family) with 32 continuous
``MPI_Isend``/``MPI_Irecv`` operations (16 buffers each way), sweeping
the fusion byte threshold from 16 KB to 4 MB at several input sizes,
exactly like the figure's series.

Expected shape (paper, §IV-C): a U-curve per input size —

* *under-fused* at low thresholds (16 KB): the scheduler launches on
  almost every enqueue, the design degenerates toward per-op launches,
  and "the execution time remains high";
* a sweet spot around a few hundred KB (the paper reports that fusing
  ~512 KB works best across its workloads/systems);
* *over-fused* above ~1 MB: everything waits for the sync-point flush,
  communication is delayed past the overlap window, and the larger
  inputs regress.
"""


from repro.bench import ExperimentSpec
from repro.bench.figures import FIG08_DIMS as DIMS
from repro.bench.figures import FIG08_THRESHOLDS as THRESHOLDS
from repro.bench.figures import fig08_views

KiB = 1024


def test_fig08_threshold_sweep(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig08")
    views = fig08_views(run.views)
    grid = {
        dim: {thr: view.mean_latency for thr, view in row.items()}
        for dim, row in views.items()
    }
    stats = {
        dim: {thr: view.scheduler_stats for thr, view in row.items()}
        for dim, row in views.items()
    }
    artifact(run)

    header = f"{'threshold':>12}" + "".join(f"{'dim=' + str(d):>14}" for d in DIMS) + \
        f"{'launches(d=%d)' % DIMS[-1]:>16}"
    lines = [header, "-" * len(header)]
    for thr in THRESHOLDS:
        cells = "".join(f"{grid[d][thr] * 1e6:>12.2f}us" for d in DIMS)
        lines.append(f"{thr // KiB:>10}KB{cells}{stats[DIMS[-1]][thr].launches:>16}")
    report(
        "fig08_threshold",
        "Fig. 8 — fusion threshold sweep (specfem3D_cm, 32 ops, Lassen)\n"
        "==============================================================\n"
        + "\n".join(lines),
    )

    for dim in DIMS:
        best_thr = min(grid[dim], key=grid[dim].get)
        best = grid[dim][best_thr]
        # The sweet spot sits in the paper's 100s-of-KB band.
        assert 64 * KiB <= best_thr <= 1024 * KiB, (dim, best_thr)
        # Under-fused: noticeably more kernel launches...
        assert stats[dim][16 * KiB].launches > 1.4 * stats[dim][best_thr].launches
        # ...and measurably slower where the wire does not dominate
        # (at the largest input the per-message wire time hides most of
        # the extra launches — the same flattening Fig. 8 shows).
        if dim <= 2000:
            assert grid[dim][16 * KiB] > 1.3 * best, dim
        else:
            assert grid[dim][16 * KiB] > best, dim

    # Over-fused: the larger inputs regress behind the delayed
    # communication once everything waits for one giant flush.
    best_2000 = min(grid[2000].values())
    assert grid[2000][4096 * KiB] > 1.2 * best_2000
    best_4000 = min(grid[4000].values())
    assert grid[4000][4096 * KiB] > 1.05 * best_4000

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic",
            key="fig08",
            config={"threshold_bytes": 512 * KiB},
            dim=2000,
            iterations=1,
        ).run_result(),
        rounds=1,
    )
