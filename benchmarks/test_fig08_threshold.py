"""Fig. 8 — performance effect of the fused-kernel launch threshold.

specfem3D_cm (sparse, MPI indexed family) with 32 continuous
``MPI_Isend``/``MPI_Irecv`` operations (16 buffers each way), sweeping
the fusion byte threshold from 16 KB to 4 MB at several input sizes,
exactly like the figure's series.

Expected shape (paper, §IV-C): a U-curve per input size —

* *under-fused* at low thresholds (16 KB): the scheduler launches on
  almost every enqueue, the design degenerates toward per-op launches,
  and "the execution time remains high";
* a sweet spot around a few hundred KB (the paper reports that fusing
  ~512 KB works best across its workloads/systems);
* *over-fused* above ~1 MB: everything waits for the sync-point flush,
  communication is delayed past the overlap window, and the larger
  inputs regress.
"""

import pytest

from repro.bench import run_bulk_exchange
from repro.net import LASSEN
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, proposed_factory
from repro.obs import result_entry

KiB = 1024
THRESHOLDS = [16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
              1024 * KiB, 2048 * KiB, 4096 * KiB]
DIMS = [500, 2000, 4000]  # ~18 KB / 70 KB / 140 KB per message


def _run(dim, threshold):
    return run_bulk_exchange(
        LASSEN,
        proposed_factory(threshold_bytes=threshold),
        WORKLOADS["specfem3D_cm"](dim),
        nbuffers=16,
        iterations=ITERATIONS,
        warmup=WARMUP,
        data_plane=False,
    )


def test_fig08_threshold_sweep(benchmark, report, artifact):
    grid = {dim: {} for dim in DIMS}
    stats = {dim: {} for dim in DIMS}
    entries = []
    for dim in DIMS:
        for threshold in THRESHOLDS:
            r = _run(dim, threshold)
            grid[dim][threshold] = r.mean_latency
            stats[dim][threshold] = r.scheduler_stats
            entries.append(
                result_entry(
                    r,
                    key=f"thr={threshold // KiB}KB/dim={dim}",
                    config={"threshold_bytes": threshold},
                    run=RUN_PARAMS,
                )
            )
    artifact("fig08_threshold", entries)

    header = f"{'threshold':>12}" + "".join(f"{'dim=' + str(d):>14}" for d in DIMS) + \
        f"{'launches(d=%d)' % DIMS[-1]:>16}"
    lines = [header, "-" * len(header)]
    for thr in THRESHOLDS:
        cells = "".join(f"{grid[d][thr] * 1e6:>12.2f}us" for d in DIMS)
        lines.append(f"{thr // KiB:>10}KB{cells}{stats[DIMS[-1]][thr].launches:>16}")
    report(
        "fig08_threshold",
        "Fig. 8 — fusion threshold sweep (specfem3D_cm, 32 ops, Lassen)\n"
        "==============================================================\n"
        + "\n".join(lines),
    )

    for dim in DIMS:
        best_thr = min(grid[dim], key=grid[dim].get)
        best = grid[dim][best_thr]
        # The sweet spot sits in the paper's 100s-of-KB band.
        assert 64 * KiB <= best_thr <= 1024 * KiB, (dim, best_thr)
        # Under-fused: noticeably more kernel launches...
        assert stats[dim][16 * KiB].launches > 1.4 * stats[dim][best_thr].launches
        # ...and measurably slower where the wire does not dominate
        # (at the largest input the per-message wire time hides most of
        # the extra launches — the same flattening Fig. 8 shows).
        if dim <= 2000:
            assert grid[dim][16 * KiB] > 1.3 * best, dim
        else:
            assert grid[dim][16 * KiB] > best, dim

    # Over-fused: the larger inputs regress behind the delayed
    # communication once everything waits for one giant flush.
    best_2000 = min(grid[2000].values())
    assert grid[2000][4096 * KiB] > 1.2 * best_2000
    best_4000 = min(grid[4000].values())
    assert grid[4000][4096 * KiB] > 1.05 * best_4000

    benchmark.pedantic(lambda: _run(2000, 512 * KiB), rounds=1)
