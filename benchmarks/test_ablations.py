"""Ablations — isolating the design choices behind the fusion framework.

Not a paper figure: these benches vary one design knob at a time to
show *why* the framework is built the way §IV describes.

1. **Rendezvous sub-protocol** (§IV-B1): RPUT sends RTS before packing
   so the handshake overlaps the pack; RGET serializes pack → RTS →
   read.  RPUT should win for the bulk pattern.
2. **Sync-point linger** (§IV-C scenario 1): flushing the instant the
   progress engine polls (linger 0) defeats batching and degenerates
   toward per-op launches.
3. **Request-list capacity** (§IV-A2): a tiny circular list forces the
   negative-UID fallback path, costing baseline-like per-op overhead.
4. **Cooperative grid size** (§IV-A3): a fused grid too small to
   saturate the memory system stretches the fused kernel.
5. **Model-based launch policy** (the paper's stated future work):
   launching when the estimated fused time exceeds the launch overhead
   should be competitive with the hand-tuned byte threshold.
6. **GPU-Async pipelining depth** [23]: more chunks = more launches;
   on modern GPUs deeper pipelining only hurts.
"""


from repro.bench import run_bulk_exchange
from repro.core import KernelFusionScheme, ModelBasedPolicy
from repro.net import LASSEN
from repro.schemes import GPUAsyncScheme, SCHEME_REGISTRY
from repro.sim import us
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, WARMUP, proposed_factory

KiB = 1024
SPEC = ("specfem3D_cm", 2000)


def _run(factory, *, rendezvous="rput", workload=SPEC[0], dim=SPEC[1], nbuffers=16):
    return run_bulk_exchange(
        LASSEN, factory, WORKLOADS[workload](dim), nbuffers=nbuffers,
        iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
        rendezvous_protocol=rendezvous,
    )


def _fusion_factory(**kwargs):
    def factory(site, trace):
        return KernelFusionScheme(site, trace, **kwargs)

    return factory


def test_ablation_rput_overlaps_handshake(benchmark, report):
    rput = _run(proposed_factory(), rendezvous="rput")
    rget = _run(proposed_factory(), rendezvous="rget")
    report(
        "ablation_rendezvous",
        "Ablation — rendezvous sub-protocol (proposed, specfem3D_cm)\n"
        f"  RPUT (RTS before packing): {rput.mean_latency * 1e6:9.2f}us\n"
        f"  RGET (pack, RTS, read)  : {rget.mean_latency * 1e6:9.2f}us",
    )
    assert rput.mean_latency < rget.mean_latency
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_sync_point_linger(benchmark, report):
    eager_flush = _run(_fusion_factory(idle_linger=0.0))
    lingered = _run(_fusion_factory(idle_linger=us(6.0)))
    report(
        "ablation_linger",
        "Ablation — sync-point flush linger (proposed, specfem3D_cm)\n"
        f"  linger 0us (flush every poll): {eager_flush.mean_latency * 1e6:9.2f}us, "
        f"{eager_flush.scheduler_stats.launches} launches\n"
        f"  linger 6us (idle-triggered)  : {lingered.mean_latency * 1e6:9.2f}us, "
        f"{lingered.scheduler_stats.launches} launches",
    )
    assert lingered.scheduler_stats.launches < eager_flush.scheduler_stats.launches
    assert lingered.mean_latency <= eager_flush.mean_latency * 1.02
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_request_list_capacity(benchmark, report):
    big = _run(_fusion_factory(capacity=256))
    tiny = _run(_fusion_factory(capacity=2))
    report(
        "ablation_capacity",
        "Ablation — circular request list capacity (proposed)\n"
        f"  capacity 256: {big.mean_latency * 1e6:9.2f}us\n"
        f"  capacity   2: {tiny.mean_latency * 1e6:9.2f}us "
        "(fallbacks engage the GPU-Sync path)",
    )
    assert tiny.mean_latency > big.mean_latency
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_cooperative_grid(benchmark, report):
    def grid_factory(grid_blocks):
        def factory(site, trace):
            scheme = KernelFusionScheme(site, trace)
            scheme.scheduler.grid_blocks = grid_blocks
            return scheme

        return factory

    full = _run(grid_factory(None))  # saturation grid
    starved = _run(grid_factory(8))
    report(
        "ablation_grid",
        "Ablation — fused-kernel grid size (proposed)\n"
        f"  saturation grid (160 blocks): {full.mean_latency * 1e6:9.2f}us\n"
        f"  starved grid (8 blocks)     : {starved.mean_latency * 1e6:9.2f}us",
    )
    assert starved.mean_latency > full.mean_latency
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_model_based_policy(benchmark, report):
    def model_factory(site, trace):
        policy = ModelBasedPolicy(
            arch=site.device.arch, threshold_bytes=1 << 40, launch_cost_multiple=2.0
        )
        return KernelFusionScheme(site, trace, policy=policy)

    rows = []
    ok = True
    for workload, dim in (("specfem3D_cm", 2000), ("MILC", 16), ("NAS_MG", 64)):
        tuned = _run(proposed_factory(), workload=workload, dim=dim)
        model = _run(model_factory, workload=workload, dim=dim)
        rows.append(
            f"  {workload:<14} heuristic={tuned.mean_latency * 1e6:9.2f}us  "
            f"model-based={model.mean_latency * 1e6:9.2f}us"
        )
        ok = ok and model.mean_latency < 1.5 * tuned.mean_latency
    report(
        "ablation_model_policy",
        "Ablation — model-based launch policy (paper future work)\n" + "\n".join(rows),
    )
    # The untuned model-based policy stays within 1.5x of the tuned
    # heuristic everywhere — no per-system byte threshold needed.
    assert ok
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_async_pipeline_depth(benchmark, report):
    def async_factory(chunks):
        def factory(site, trace):
            return GPUAsyncScheme(site, trace, pipeline_chunks=chunks)

        return factory

    lat = {c: _run(async_factory(c)).mean_latency for c in (1, 2, 4)}
    report(
        "ablation_async_chunks",
        "Ablation — GPU-Async pipeline depth (chunks = launches/op)\n"
        + "\n".join(f"  {c} chunk(s): {v * 1e6:9.2f}us" for c, v in lat.items()),
    )
    # On modern GPUs deeper pipelining only multiplies launch overhead.
    assert lat[1] < lat[2] < lat[4]
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_layout_cache(benchmark, report):
    """Table I's 'Layout Cache' column [24]: without it, every message
    re-extracts the datatype layout — a per-block tree walk that grows
    with sparsity and lands straight on the critical path."""
    from repro.bench import run_bulk_exchange
    from repro.net import LASSEN
    from repro.workloads import WORKLOADS

    rows = []
    effects = {}
    for workload, dim in (("specfem3D_cm", 4000), ("MILC", 16)):
        spec = WORKLOADS[workload](dim)
        cached = run_bulk_exchange(
            LASSEN, proposed_factory(), spec, nbuffers=16,
            iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
        )
        uncached = run_bulk_exchange(
            LASSEN, proposed_factory(), spec, nbuffers=16,
            iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
            layout_cache_enabled=False,
        )
        effects[workload] = uncached.mean_latency / cached.mean_latency
        rows.append(
            f"  {workload:<14} cached={cached.mean_latency * 1e6:9.2f}us  "
            f"uncached={uncached.mean_latency * 1e6:9.2f}us  "
            f"({effects[workload]:.2f}x)"
        )
    report(
        "ablation_layout_cache",
        "Ablation — datatype layout cache [24] (proposed scheme)\n"
        + "\n".join(rows),
    )
    # The cache matters, and matters *more* for sparse layouts (their
    # per-message flatten walks tens of thousands of blocks).
    assert effects["specfem3D_cm"] > 1.1
    assert effects["specfem3D_cm"] > effects["MILC"]
    benchmark.pedantic(lambda: None, rounds=1)


def test_ablation_pipeline_chunk_size(benchmark, report):
    """The classic staged-pipeline tuning curve: chunk size trades
    per-chunk latency (too small) against lost stage overlap (too
    large).  This is the large-message transport the production
    MVAPICH stack uses where GPUDirect RDMA underperforms; its optimum
    chunk lands in the classic few-hundred-KB band."""
    from repro.datatypes import DataLayout
    from repro.mpi import Runtime
    from repro.net import ABCI, Cluster
    from repro.sim import Simulator

    PAYLOAD = 4 << 20  # 4 MB, contiguous: isolates the transport

    def staged_latency(chunk_bytes):
        sim = Simulator()
        cluster = Cluster(sim, ABCI, nodes=2, functional=False)
        rt = Runtime(
            sim, cluster, SCHEME_REGISTRY["GPU-Sync"],
            host_staging_threshold=1, pipeline_chunk_bytes=chunk_bytes,
        )
        lay = DataLayout.contiguous(PAYLOAD)
        r0, r1 = rt.rank(0), rt.rank(1)
        sbuf, rbuf = r0.device.alloc(PAYLOAD), r1.device.alloc(PAYLOAD)

        def sender():
            yield from r0.send(sbuf, lay, 1, dest=1)

        def receiver():
            yield from r1.recv(rbuf, lay, 1, source=0)

        procs = [sim.process(sender()), sim.process(receiver())]
        sim.run(sim.all_of(procs))
        return sim.now

    chunks = [16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB, 4096 * KiB]
    curve = {c: staged_latency(c) for c in chunks}
    rows = [
        f"  chunk {c // KiB:>5} KB: {t * 1e6:9.1f}us" for c, t in curve.items()
    ]
    report(
        "ablation_pipeline_chunks",
        "Ablation — host-staged pipeline chunk size (4 MB payload, ABCI)\n"
        + "\n".join(rows),
    )
    best = min(curve, key=curve.get)
    assert 64 * KiB <= best <= 1024 * KiB
    assert curve[16 * KiB] > curve[best]
    assert curve[4096 * KiB] > curve[best]
    benchmark.pedantic(lambda: None, rounds=1)
