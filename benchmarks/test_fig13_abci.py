"""Fig. 13 — all four workloads across sizes on ABCI (32 ops).

The ABCI counterpart of Fig. 12.  ABCI's V100s sit behind PCIe Gen3
switches: every CUDA driver interaction (launch, sync, event ops) costs
more than on Lassen's NVLink-attached POWER9, and GPUDirect RDMA must
cross the switch hierarchy, so the wire path is slower too.

Expected shape (paper):

* the proposed design's advantage *grows* relative to Lassen — the
  baselines pay the inflated per-operation driver costs hundreds of
  times, the fused design a handful (paper: up to 19× sparse, 14.7×
  dense);
* GPU-Async recovers relative to GPU-Sync compared with Lassen: the
  slower effective interconnect widens the overlap window its
  pipelining can exploit (Fig. 13c/d).

The cross-system claims use dedicated Lassen shards carried inside the
Fig. 13 sweep (keys ``lassen/...`` / ``lassen_milc/...``), so the
whole figure — ABCI grid plus comparison points — is one cacheable
shard plane.
"""


from repro.bench import ExperimentSpec
from repro.bench.figures import FIG12_SWEEPS as SWEEPS
from repro.bench.figures import fig12_tables, fig13_lassen_views

from conftest import best_speedup
from test_fig12_lassen import check_figure_shape, emit_tables


def test_fig13_abci(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig13")
    tables = fig12_tables(run.views)
    artifact(run)
    emit_tables(report, "Fig13", "ABCI", tables)
    check_figure_shape(tables, sparse_min_speedup=3.5)

    lassen_sparse, lassen_milc = fig13_lassen_views(run.views)

    # Cross-system claim: the win over GPU-Sync on sparse layouts is
    # larger on ABCI than on Lassen (paper: ~19x vs ~8.5x).
    lassen_gap = best_speedup(lassen_sparse, "Proposed", "GPU-Sync")
    abci_gap = best_speedup(
        {k: {d: tables["specfem3D_cm"][k][d] for d in SWEEPS["specfem3D_cm"][:2]}
         for k in ("Proposed", "GPU-Sync")},
        "Proposed",
        "GPU-Sync",
    )
    assert abci_gap > lassen_gap

    # GPU-Async vs GPU-Sync narrows (or flips) on ABCI's slower path
    # relative to Lassen for the dense workloads.
    def async_ratio(tables_, wl, dim):
        return (
            tables_[wl]["GPU-Async"][dim].mean_latency
            / tables_[wl]["GPU-Sync"][dim].mean_latency
        )

    lassen_ratio = (
        lassen_milc["GPU-Async"][16].mean_latency
        / lassen_milc["GPU-Sync"][16].mean_latency
    )
    assert async_ratio(tables, "MILC", 16) < lassen_ratio * 1.05

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig13", system="ABCI", dim=1000,
            iterations=1,
        ).run_result(),
        rounds=1,
    )
