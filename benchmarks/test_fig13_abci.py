"""Fig. 13 — all four workloads across sizes on ABCI (32 ops).

The ABCI counterpart of Fig. 12.  ABCI's V100s sit behind PCIe Gen3
switches: every CUDA driver interaction (launch, sync, event ops) costs
more than on Lassen's NVLink-attached POWER9, and GPUDirect RDMA must
cross the switch hierarchy, so the wire path is slower too.

Expected shape (paper):

* the proposed design's advantage *grows* relative to Lassen — the
  baselines pay the inflated per-operation driver costs hundreds of
  times, the fused design a handful (paper: up to 19× sparse, 14.7×
  dense);
* GPU-Async recovers relative to GPU-Sync compared with Lassen: the
  slower effective interconnect widens the overlap window its
  pipelining can exploit (Fig. 13c/d).
"""

import pytest

from repro.net import ABCI, LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, WARMUP, best_speedup, proposed_factory
from repro.bench import run_bulk_exchange
from test_fig12_lassen import (
    SWEEPS, check_figure_shape, emit_tables, figure_entries, run_figure, _run,
)


def test_fig13_abci(benchmark, report, artifact):
    tables = run_figure(ABCI)
    artifact("fig13", figure_entries(tables))
    emit_tables(report, "Fig13", "ABCI", tables)
    check_figure_shape(tables, sparse_min_speedup=3.5)

    # Cross-system claim: the win over GPU-Sync on sparse layouts is
    # larger on ABCI than on Lassen (paper: ~19x vs ~8.5x).
    lassen_grid = {
        name: {
            dim: _run(LASSEN, factory, "specfem3D_cm", dim)
            for dim in SWEEPS["specfem3D_cm"][:2]
        }
        for name, factory in {
            "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
            "Proposed": proposed_factory(),
        }.items()
    }
    lassen_gap = best_speedup(lassen_grid, "Proposed", "GPU-Sync")
    abci_gap = best_speedup(
        {k: {d: tables["specfem3D_cm"][k][d] for d in SWEEPS["specfem3D_cm"][:2]}
         for k in ("Proposed", "GPU-Sync")},
        "Proposed",
        "GPU-Sync",
    )
    assert abci_gap > lassen_gap

    # GPU-Async vs GPU-Sync narrows (or flips) on ABCI's slower path
    # relative to Lassen for the dense workloads.
    def async_ratio(tables_, wl, dim):
        return (
            tables_[wl]["GPU-Async"][dim].mean_latency
            / tables_[wl]["GPU-Sync"][dim].mean_latency
        )

    lassen_milc = {
        name: {16: _run(LASSEN, SCHEME_REGISTRY[name], "MILC", 16)}
        for name in ("GPU-Sync", "GPU-Async")
    }
    lassen_ratio = (
        lassen_milc["GPU-Async"][16].mean_latency
        / lassen_milc["GPU-Sync"][16].mean_latency
    )
    assert async_ratio(tables, "MILC", 16) < lassen_ratio * 1.05

    benchmark.pedantic(
        lambda: _run(ABCI, proposed_factory(), "specfem3D_cm", 1000), rounds=1
    )
