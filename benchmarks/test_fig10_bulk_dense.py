"""Fig. 10 — bulk inter-node transfer, dense layout (MILC), Lassen.

Same bulk-size sweep as Fig. 9 but with the MILC nested-vector layout.

Expected shape (paper):

* **CPU-GPU-Hybrid can win for small dense messages** — its GDRCopy
  path has zero GPU driver overhead, which beats even the fused design
  when the messages are a couple of KB;
* the proposed design still beats GPU-Sync and GPU-Async everywhere;
* **GPU-Async performs worse than GPU-Sync** on Lassen: the per-op
  event records/queries outweigh the overlap they buy on a fast
  interconnect (§V-B).
"""


from repro.bench import ExperimentSpec, format_latency_table
from repro.bench.figures import BULK_NBUFFERS as NBUFFERS
from repro.bench.figures import FIG10_DIM as DIM
from repro.bench.figures import FIG10_DIM_SMALL as DIM_SMALL
from repro.bench.figures import fig10_results


def test_fig10_bulk_dense_lassen(benchmark, report, artifact, sweep_run):
    run = sweep_run("fig10")
    big, small = fig10_results(run.views)
    artifact(run)
    text = format_latency_table(
        big,
        title=f"Fig. 10 — bulk dense (MILC dim={DIM}) on Lassen, 1-16 buffers",
        column_label="nbuf",
        baseline="Proposed",
    ) + "\n\n" + format_latency_table(
        small,
        title=f"Fig. 10 (inset) — small dense (MILC dim={DIM_SMALL})",
        column_label="nbuf",
        baseline="Proposed",
    )
    report("fig10_bulk_dense", text)

    for nbuf in NBUFFERS:
        # Proposed beats both GPU-driven baselines at every bulk size.
        prop = big["Proposed"][nbuf].mean_latency
        assert prop < big["GPU-Sync"][nbuf].mean_latency
        assert prop < big["GPU-Async"][nbuf].mean_latency
        # GPU-Async loses to plain GPU-Sync on Lassen (§V-B).
        if nbuf >= 4:
            assert (
                big["GPU-Async"][nbuf].mean_latency
                > big["GPU-Sync"][nbuf].mean_latency
            )

    # Hybrid's zero-driver-overhead CPU path wins for small dense
    # messages (it beats even the fused design until enough kernels
    # accumulate for fusion to amortize — the Fig. 12(c) exception).
    for nbuf in NBUFFERS:
        assert (
            small["CPU-GPU-Hybrid"][nbuf].mean_latency
            < small["GPU-Sync"][nbuf].mean_latency
        )
    for nbuf in (1, 2, 4, 8):
        assert (
            small["CPU-GPU-Hybrid"][nbuf].mean_latency
            < small["Proposed"][nbuf].mean_latency
        ), nbuf

    benchmark.pedantic(
        lambda: ExperimentSpec(
            experiment="pedantic", key="fig10", workload="MILC", dim=DIM,
            iterations=1,
        ).run_result(),
        rounds=1,
    )
