"""Fig. 10 — bulk inter-node transfer, dense layout (MILC), Lassen.

Same bulk-size sweep as Fig. 9 but with the MILC nested-vector layout.

Expected shape (paper):

* **CPU-GPU-Hybrid can win for small dense messages** — its GDRCopy
  path has zero GPU driver overhead, which beats even the fused design
  when the messages are a couple of KB;
* the proposed design still beats GPU-Sync and GPU-Async everywhere;
* **GPU-Async performs worse than GPU-Sync** on Lassen: the per-op
  event records/queries outweigh the overlap they buy on a fast
  interconnect (§V-B).
"""

import pytest

from repro.bench import format_latency_table, run_bulk_exchange
from repro.net import LASSEN
from repro.schemes import SCHEME_REGISTRY
from repro.workloads import WORKLOADS

from conftest import ITERATIONS, RUN_PARAMS, WARMUP, proposed_factory
from repro.obs import entries_from_grid

DIM_SMALL = 4   # ~1.5 KB messages: hybrid's GDRCopy sweet spot
DIM = 16        # ~96 KB messages
NBUFFERS = [1, 2, 4, 8, 16]
SCHEMES = {
    "GPU-Sync": SCHEME_REGISTRY["GPU-Sync"],
    "GPU-Async": SCHEME_REGISTRY["GPU-Async"],
    "CPU-GPU-Hybrid": SCHEME_REGISTRY["CPU-GPU-Hybrid"],
    "Proposed": proposed_factory(),
}


def _grid(dim):
    spec = WORKLOADS["MILC"](dim)
    results = {name: {} for name in SCHEMES}
    for nbuf in NBUFFERS:
        for name, factory in SCHEMES.items():
            results[name][nbuf] = run_bulk_exchange(
                LASSEN, factory, spec, nbuffers=nbuf,
                iterations=ITERATIONS, warmup=WARMUP, data_plane=False,
            )
    return results


def test_fig10_bulk_dense_lassen(benchmark, report, artifact):
    big = _grid(DIM)
    small = _grid(DIM_SMALL)
    artifact(
        "fig10_bulk_dense",
        entries_from_grid(big, column="nbuf", run=RUN_PARAMS)
        + entries_from_grid(
            small, column="nbuf", key_prefix=f"dim={DIM_SMALL}", run=RUN_PARAMS
        ),
    )
    text = format_latency_table(
        big,
        title=f"Fig. 10 — bulk dense (MILC dim={DIM}) on Lassen, 1-16 buffers",
        column_label="nbuf",
        baseline="Proposed",
    ) + "\n\n" + format_latency_table(
        small,
        title=f"Fig. 10 (inset) — small dense (MILC dim={DIM_SMALL})",
        column_label="nbuf",
        baseline="Proposed",
    )
    report("fig10_bulk_dense", text)

    for nbuf in NBUFFERS:
        # Proposed beats both GPU-driven baselines at every bulk size.
        prop = big["Proposed"][nbuf].mean_latency
        assert prop < big["GPU-Sync"][nbuf].mean_latency
        assert prop < big["GPU-Async"][nbuf].mean_latency
        # GPU-Async loses to plain GPU-Sync on Lassen (§V-B).
        if nbuf >= 4:
            assert (
                big["GPU-Async"][nbuf].mean_latency
                > big["GPU-Sync"][nbuf].mean_latency
            )

    # Hybrid's zero-driver-overhead CPU path wins for small dense
    # messages (it beats even the fused design until enough kernels
    # accumulate for fusion to amortize — the Fig. 12(c) exception).
    for nbuf in NBUFFERS:
        assert (
            small["CPU-GPU-Hybrid"][nbuf].mean_latency
            < small["GPU-Sync"][nbuf].mean_latency
        )
    for nbuf in (1, 2, 4, 8):
        assert (
            small["CPU-GPU-Hybrid"][nbuf].mean_latency
            < small["Proposed"][nbuf].mean_latency
        ), nbuf

    benchmark.pedantic(
        lambda: run_bulk_exchange(
            LASSEN, SCHEMES["Proposed"], WORKLOADS["MILC"](DIM),
            nbuffers=16, iterations=1, warmup=1, data_plane=False,
        ),
        rounds=1,
    )
