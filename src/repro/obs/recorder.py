"""Unified span/event recorder.

One stream for everything that *happens* during a run: the Fig.-11 cost
buckets charged by schemes (absorbed from
:class:`~repro.sim.trace.Trace`), per-request fusion lifecycle spans
(enqueue → fuse → launch → complete), RTS/CTS rendezvous handshakes,
and fault/recovery actions.  PR 1 left these in three disjoint places
(``Trace`` spans, chrome-trace re-rendering, ad-hoc recovery
dataclasses); the recorder is the single stream they all flow into.

Events carry a *track* (rendered as a Chrome-trace process row — one
per rank or per scheme/rank) and a *category* (rendered as a thread
row).  Exports:

* :meth:`Recorder.export_chrome_trace` — ``chrome://tracing`` /
  Perfetto JSON, spans as complete ('X') events, instants as 'i';
* :meth:`Recorder.export_jsonl` — one JSON object per line, the
  stream-processing-friendly form;

A :class:`NullRecorder` (the default on every simulator) turns every
recording call into a constant-time no-op: with telemetry disabled the
instrumented hot paths allocate nothing and never touch the event
calendar, so the simulated timeline is bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["ObsEvent", "Recorder", "NullRecorder"]


@dataclass(frozen=True)
class ObsEvent:
    """One recorded occurrence (span or instant), times in seconds."""

    name: str
    category: str
    ts: float
    #: span duration; 0.0 and ``instant=True`` for point events
    dur: float = 0.0
    instant: bool = False
    #: process row in the Chrome export (e.g. "rank0", "Proposed/rank1")
    track: str = ""
    #: free-form context (uid, peer, attempt number, ...)
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def end(self) -> float:
        """Span end time (== ``ts`` for instants)."""
        return self.ts + self.dur


class Recorder:
    """Append-only event stream with Chrome-trace and JSONL export."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    # -- recording ---------------------------------------------------------
    def span(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        track: str = "",
        **args: object,
    ) -> None:
        """Record a completed interval ``[start, end]``."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: {start}..{end}")
        self.events.append(
            ObsEvent(
                name=name,
                category=category,
                ts=start,
                dur=end - start,
                track=track,
                args=tuple(args.items()),
            )
        )

    def instant(
        self, category: str, name: str, ts: float, track: str = "", **args: object
    ) -> None:
        """Record a point event at time ``ts``."""
        self.events.append(
            ObsEvent(
                name=name,
                category=category,
                ts=ts,
                instant=True,
                track=track,
                args=tuple(args.items()),
            )
        )

    def absorb_trace(self, track: str, trace) -> int:
        """Fold a :class:`~repro.sim.trace.Trace`'s spans into the stream.

        Returns the number of spans absorbed.  ``trace`` is duck-typed
        (anything with ``.spans`` of category/start/end/label) so this
        module stays import-free of :mod:`repro.sim`.
        """
        n = 0
        for span in trace.spans:
            self.span(
                str(span.category),
                span.label or str(span.category),
                span.start,
                span.end,
                track=track,
            )
            n += 1
        return n

    def clear(self) -> None:
        """Drop every recorded event."""
        self.events.clear()

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def iter_category(self, category: str) -> Iterator[ObsEvent]:
        """Events of one category in record order."""
        return (e for e in self.events if e.category == category)

    def tracks(self) -> List[str]:
        """Distinct track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    # -- exports -----------------------------------------------------------
    def chrome_trace_events(self) -> List[dict]:
        """Chrome ``traceEvents`` list (times in µs, sorted by ``ts``).

        Tracks map to process rows, categories to thread rows; metadata
        events name both.  Span events are emitted in non-decreasing
        ``ts`` order (asserted by the round-trip tests).
        """
        pids = {track: i for i, track in enumerate(self.tracks())}
        tids: Dict[Tuple[int, str], int] = {}
        out: List[dict] = []
        for track, pid in pids.items():
            out.append(
                {"name": "process_name", "ph": "M", "pid": pid,
                 "args": {"name": track or "events"}}
            )
        for event in self.events:
            pid = pids[event.track]
            tid_key = (pid, event.category)
            if tid_key not in tids:
                tid = sum(1 for (p, _c) in tids if p == pid)
                tids[tid_key] = tid
                out.append(
                    {"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": event.category}}
                )
        for event in sorted(self.events, key=lambda e: (e.ts, e.dur)):
            pid = pids[event.track]
            record = {
                "name": event.name,
                "cat": event.category,
                "ph": "i" if event.instant else "X",
                "ts": event.ts * 1e6,
                "pid": pid,
                "tid": tids[(pid, event.category)],
            }
            if event.instant:
                record["s"] = "t"  # thread-scoped instant
            else:
                record["dur"] = event.dur * 1e6
            if event.args:
                record["args"] = dict(event.args)
            out.append(record)
        return out

    def export_chrome_trace(self, path: str) -> int:
        """Write a Chrome trace JSON file; returns the event count."""
        events = self.chrome_trace_events()
        with open(path, "w") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
        return sum(1 for e in events if e.get("ph") in ("X", "i"))

    def to_jsonl_lines(self) -> List[str]:
        """One compact JSON object per event, in record order."""
        lines = []
        for event in self.events:
            record = {
                "name": event.name,
                "cat": event.category,
                "ts": event.ts,
                "track": event.track,
            }
            if event.instant:
                record["instant"] = True
            else:
                record["dur"] = event.dur
            if event.args:
                record["args"] = dict(event.args)
            lines.append(json.dumps(record, sort_keys=True))
        return lines

    def export_jsonl(self, path: str) -> int:
        """Write the stream as JSON Lines; returns the event count."""
        lines = self.to_jsonl_lines()
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)


class NullRecorder(Recorder):
    """Disabled recorder: every recording call is a constant-time no-op."""

    enabled = False

    def span(self, category, name, start, end, track="", **args) -> None:
        return None

    def instant(self, category, name, ts, track="", **args) -> None:
        return None

    def absorb_trace(self, track, trace) -> int:
        return 0
