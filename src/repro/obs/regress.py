"""Perf-regression gate: compare a run against a stored baseline.

``repro regress --baseline benchmarks/results/BENCH_fig08.json``
re-runs every entry of the baseline artifact (the simulator is
deterministic, so an unchanged tree reproduces the numbers exactly)
and fails — nonzero exit code — when any watched metric regresses past
its tolerance.  ``--candidate`` skips the re-run and compares two
artifact files instead, which is what CI does after the benchmark
suite has refreshed ``benchmarks/results/``.

A latency-like metric *regresses* when ``candidate > baseline × (1 +
tolerance)``; improvements are reported but never fail the gate.
Entries present in the baseline but missing from the candidate fail
the gate too — a silently dropped measurement is how perf coverage
rots.

This module imports the benchmark runner, so import it directly
(``from repro.obs import regress``) rather than from the package
root — ``repro.obs``'s core stays importable before the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .artifact import experiment_artifact, result_entry

__all__ = [
    "DEFAULT_TOLERANCE",
    "MetricCheck",
    "RegressionReport",
    "compare_artifacts",
    "rerun_entry",
    "rerun_artifact",
]

DEFAULT_TOLERANCE = 0.10
#: artifact metrics the gate watches by default (latency-like: lower is
#: better, regression = candidate above baseline by > tolerance)
DEFAULT_METRICS = ("mean_latency",)


@dataclass(frozen=True)
class MetricCheck:
    """One (entry, metric) comparison."""

    key: str
    metric: str
    baseline: float
    candidate: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """candidate / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.candidate > 0 else 1.0
        return self.candidate / self.baseline

    @property
    def regressed(self) -> bool:
        """True when the candidate is worse than tolerance allows."""
        return self.candidate > self.baseline * (1.0 + self.tolerance)

    @property
    def improved(self) -> bool:
        """True when the candidate beat the baseline by > tolerance."""
        return self.candidate < self.baseline * (1.0 - self.tolerance)


@dataclass
class RegressionReport:
    """Outcome of one baseline/candidate comparison."""

    experiment: str
    checks: List[MetricCheck] = field(default_factory=list)
    #: baseline keys absent from the candidate (each fails the gate)
    missing: List[str] = field(default_factory=list)
    #: candidate keys absent from the baseline (informational)
    extra: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        """Checks that exceeded their tolerance."""
        return [c for c in self.checks if c.regressed]

    @property
    def improvements(self) -> List[MetricCheck]:
        """Checks that beat the baseline by more than the tolerance."""
        return [c for c in self.checks if c.improved]

    @property
    def ok(self) -> bool:
        """Gate verdict: no regressions and no dropped entries."""
        return not self.regressions and not self.missing

    def describe(self) -> str:
        """Multi-line report for the CLI / CI log."""
        lines = [
            f"regression gate — {self.experiment}: "
            f"{len(self.checks)} checks, {len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, {len(self.missing)} missing"
        ]
        width = max([12] + [len(c.key) for c in self.checks]) + 2
        for check in self.checks:
            if check.regressed:
                status = "REGRESSED"
            elif check.improved:
                status = "improved"
            else:
                status = "ok"
            lines.append(
                f"  {check.key:<{width}}{check.metric:<14}"
                f"{check.baseline * 1e6:>10.2f}us ->{check.candidate * 1e6:>10.2f}us"
                f"  {check.ratio:>6.3f}x  (tol {check.tolerance:.0%})  {status}"
            )
        for key in self.missing:
            lines.append(f"  {key:<{width}}MISSING from candidate — gate fails")
        for key in self.extra:
            lines.append(f"  {key:<{width}}new in candidate (not gated)")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_artifacts(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    metrics: Sequence[str] = DEFAULT_METRICS,
    tolerances: Optional[Mapping[str, float]] = None,
) -> RegressionReport:
    """Check every baseline entry's metrics against the candidate.

    ``tolerances`` overrides the global ``tolerance`` per metric name
    (e.g. ``{"min_latency": 0.05}``).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    report = RegressionReport(experiment=str(baseline.get("experiment", "?")))
    base_entries = {e["key"]: e for e in baseline.get("entries", [])}
    cand_entries = {e["key"]: e for e in candidate.get("entries", [])}
    report.extra = sorted(set(cand_entries) - set(base_entries))
    for key, base in base_entries.items():
        cand = cand_entries.get(key)
        if cand is None:
            report.missing.append(key)
            continue
        for metric in metrics:
            base_value = _metric_value(base, metric)
            cand_value = _metric_value(cand, metric)
            if base_value is None or cand_value is None:
                continue
            tol = tolerance if tolerances is None else tolerances.get(metric, tolerance)
            report.checks.append(
                MetricCheck(
                    key=key,
                    metric=metric,
                    baseline=base_value,
                    candidate=cand_value,
                    tolerance=tol,
                )
            )
    report.missing.sort()
    return report


def _metric_value(entry: Mapping[str, Any], metric: str) -> Optional[float]:
    """Resolve a watched metric inside an entry.

    Plain names read top-level scalars (``mean_latency``); a
    ``breakdown.<bucket>`` path reads one Fig.-11 cost bucket.
    """
    if metric.startswith("breakdown."):
        value = entry.get("breakdown", {}).get(metric.split(".", 1)[1])
    else:
        value = entry.get(metric)
    if isinstance(value, (int, float)) and value == value:  # excludes NaN
        return float(value)
    return None


# -- re-running baseline entries ------------------------------------------------


def rerun_entry(entry: Mapping[str, Any], obs=None):
    """Re-run one artifact entry; returns a fresh ``ExperimentResult``.

    Reconstructs the experiment through the sweep engine's picklable
    :class:`~repro.bench.sweep.ExperimentSpec` — registry schemes by
    name, fusion variants through ``config.threshold_bytes`` /
    ``config.capacity`` / ``config.name`` — so the gate and the
    parallel sweep plane rebuild measurements identically.
    """
    from ..bench.sweep import ExperimentSpec

    try:
        spec = ExperimentSpec.from_entry("rerun", entry)
        return spec.run_result(obs=obs)
    except KeyError as exc:
        raise KeyError(
            f"entry {entry.get('key')!r}: cannot re-run ({exc})"
        ) from exc


def rerun_artifact(
    baseline: Mapping[str, Any], *, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Re-run every entry of ``baseline``; returns a candidate artifact."""
    entries = []
    for entry in baseline.get("entries", []):
        result = rerun_entry(entry)
        entries.append(
            result_entry(
                result,
                key=entry["key"],
                config=entry.get("config"),
                run=entry.get("run"),
            )
        )
    return experiment_artifact(
        str(baseline.get("experiment", "?")),
        entries,
        meta=dict(meta or {"rerun_of": baseline.get("meta", {})}),
    )
