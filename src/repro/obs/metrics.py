"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The registry half of :mod:`repro.obs` — a small, dependency-free metric
system in the spirit of the Prometheus client libraries:

* a :class:`MetricsRegistry` owns named *families*; each family has a
  kind (counter / gauge / histogram), a help string, and label names;
* ``family.labels(link="ib0")`` returns the labeled *child* instrument
  (created on first use), so hot paths update one dict entry per call;
* :meth:`MetricsRegistry.snapshot` freezes every series into a
  :class:`MetricsSnapshot` that supports :meth:`~MetricsSnapshot.diff`
  (what happened between two points), JSON serialization
  (:meth:`~MetricsSnapshot.as_dict`), and the Prometheus text
  exposition format (:meth:`~MetricsSnapshot.to_prometheus_text`).

Everything here is plain arithmetic on host objects — no simulator
interaction whatsoever — which is what makes the observability layer
timing-neutral by construction (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: seconds-scale buckets suited to simulated kernel/queue latencies
#: (1 us .. 100 ms, roughly logarithmic)
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 1e-1,
)
#: power-of-two buckets for batch sizes / counts
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labelnames: Sequence[str], labels: Mapping[str, object]) -> LabelsKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class Counter:
    """Monotonically increasing value (events, bytes, retries)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Instantaneous value that can go both ways (ring occupancy)."""

    __slots__ = ("value", "peak")
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0
        #: high-water mark since creation (not part of the Prometheus
        #: exposition; read through snapshots / artifacts)
        self.peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets, +Inf implicit)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        #: per-bucket (non-cumulative) counts; last entry is the +Inf bucket
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of observed values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


@dataclass
class MetricFamily:
    """One named metric with labeled children."""

    name: str
    kind: str
    help: str = ""
    labelnames: Tuple[str, ...] = ()
    buckets: Optional[Tuple[float, ...]] = None
    _children: Dict[LabelsKey, Any] = field(default_factory=dict)

    def labels(self, **labels: object):
        """The child instrument for one label combination."""
        key = _labels_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        if self.kind == "histogram":
            return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)
        raise ValueError(f"unknown metric kind {self.kind!r}")

    def series(self) -> Dict[LabelsKey, Any]:
        """All live children keyed by their label tuples."""
        return dict(self._children)


class MetricsRegistry:
    """Owner of every metric family of one observation scope."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- declaration -------------------------------------------------------
    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            return family
        family = MetricFamily(
            name=name,
            kind=kind,
            help=help,
            labelnames=tuple(labelnames),
            buckets=tuple(buckets) if buckets else None,
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        """Declare (or fetch) a fixed-bucket histogram family."""
        return self._declare(name, "histogram", help, labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        """Family by name, or ``None``."""
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        """All families in declaration order."""
        return self._families.values()

    # -- export ------------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the current value of every series."""
        data: Dict[str, dict] = {}
        for family in self._families.values():
            series: Dict[LabelsKey, Any] = {}
            for key, child in family.series().items():
                if family.kind == "histogram":
                    series[key] = {
                        "bounds": list(child.bounds),
                        "buckets": list(child.bucket_counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                elif family.kind == "gauge":
                    series[key] = {"value": child.value, "peak": child.peak}
                else:
                    series[key] = child.value
            data[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": family.labelnames,
                "series": series,
            }
        return MetricsSnapshot(data)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition of the current state."""
        return self.snapshot().to_prometheus_text()


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelsKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


class MetricsSnapshot:
    """Immutable point-in-time copy of a registry's series.

    The canonical machine-readable form: benchmark artifacts embed
    :meth:`as_dict`, the regression gate diffs snapshots, and
    :meth:`to_prometheus_text` renders the scrape format.
    """

    def __init__(self, data: Dict[str, dict]):
        self._data = data

    # -- access ------------------------------------------------------------
    def names(self) -> List[str]:
        """Metric family names in declaration order."""
        return list(self._data)

    def family(self, name: str) -> Optional[dict]:
        """Raw family record (kind/help/labelnames/series) or ``None``."""
        return self._data.get(name)

    def value(self, name: str, **labels: object) -> Any:
        """One series' value (scalar, gauge dict, or histogram dict)."""
        family = self._data.get(name)
        if family is None:
            raise KeyError(name)
        key = _labels_key(family["labelnames"], labels)
        return family["series"][key]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets.

        Missing families count as zero — recovery counters simply do
        not exist until the first recovery action, and histograms
        contribute their observation count.
        """
        family = self._data.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for value in family["series"].values():
            if family["kind"] == "histogram":
                total += value["count"]
            elif family["kind"] == "gauge":
                total += value["value"]
            else:
                total += value
        return total

    # -- transforms --------------------------------------------------------
    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``older``.

        Counters and histogram buckets subtract; gauges keep their
        current value (an instantaneous reading has no meaningful
        delta); series absent from ``older`` pass through unchanged.
        """
        out: Dict[str, dict] = {}
        for name, family in self._data.items():
            old_family = older._data.get(name)
            old_series = old_family["series"] if old_family else {}
            series: Dict[LabelsKey, Any] = {}
            for key, value in family["series"].items():
                old = old_series.get(key)
                if old is None or family["kind"] == "gauge":
                    series[key] = value
                elif family["kind"] == "histogram":
                    series[key] = {
                        "bounds": list(value["bounds"]),
                        "buckets": [
                            n - o
                            for n, o in zip(value["buckets"], old["buckets"])
                        ],
                        "sum": value["sum"] - old["sum"],
                        "count": value["count"] - old["count"],
                    }
                else:
                    series[key] = value - old
            out[name] = {
                "kind": family["kind"],
                "help": family["help"],
                "labelnames": family["labelnames"],
                "series": series,
            }
        return MetricsSnapshot(out)

    def as_dict(self) -> Dict[str, dict]:
        """JSON-serializable form (labels become string dicts)."""
        out: Dict[str, dict] = {}
        for name, family in self._data.items():
            out[name] = {
                "kind": family["kind"],
                "help": family["help"],
                "series": [
                    {"labels": dict(key), "value": value}
                    for key, value in family["series"].items()
                ],
            }
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, dict]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        rebuilt: Dict[str, dict] = {}
        for name, family in data.items():
            series: Dict[LabelsKey, Any] = {}
            labelnames: Tuple[str, ...] = ()
            for entry in family["series"]:
                labels = entry["labels"]
                labelnames = tuple(labels)
                series[tuple(labels.items())] = entry["value"]
            rebuilt[name] = {
                "kind": family["kind"],
                "help": family.get("help", ""),
                "labelnames": labelnames,
                "series": series,
            }
        return cls(rebuilt)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (escaped, histogram-aware)."""
        lines: List[str] = []
        for name, family in self._data.items():
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for key, value in family["series"].items():
                if family["kind"] == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        list(value["bounds"]) + [float("inf")], value["buckets"]
                    ):
                        cumulative += count
                        bucket_key = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_format_value(value['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {value['count']}"
                    )
                elif family["kind"] == "gauge":
                    lines.append(
                        f"{name}{_format_labels(key)} {_format_value(value['value'])}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"
