"""repro.obs — unified telemetry, metrics, and perf-regression subsystem.

One observability layer for the whole reproduction:

* :mod:`repro.obs.metrics`  — counters / gauges / fixed-bucket
  histograms with labeled children, snapshot/diff, Prometheus text;
* :mod:`repro.obs.recorder` — unified span/event stream (cost buckets,
  request lifecycles, handshakes, recovery actions) exportable as
  Chrome ``trace.json`` and JSONL;
* :mod:`repro.obs.observer` — the ``sim.obs`` facade; a
  :class:`NullObserver` keeps disabled telemetry a strict no-op on the
  simulated timeline;
* :mod:`repro.obs.artifact` — the versioned ``BENCH_<experiment>.json``
  benchmark-artifact schema;
* :mod:`repro.obs.regress`  — the perf-regression gate behind
  ``python -m repro regress``.

``regress`` is loaded lazily (PEP 562): it imports the benchmark
runner, while everything else here must stay importable *before* the
simulator packages (``repro.sim.engine`` attaches the default
:data:`NULL_OBSERVER` at simulator construction).
"""

from .artifact import (
    SCHEMA,
    SCHEMA_VERSION,
    artifact_path,
    entries_from_grid,
    experiment_artifact,
    load_bench_artifact,
    result_entry,
    write_bench_artifact,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
)
from .observer import METRIC_CATALOG, NULL_OBSERVER, NullObserver, Observer
from .recorder import NullRecorder, ObsEvent, Recorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsEvent",
    "Recorder",
    "NullRecorder",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "METRIC_CATALOG",
    "SCHEMA",
    "SCHEMA_VERSION",
    "artifact_path",
    "entries_from_grid",
    "experiment_artifact",
    "load_bench_artifact",
    "result_entry",
    "write_bench_artifact",
    "regress",
]


def __getattr__(name):
    if name == "regress":
        import importlib

        return importlib.import_module(".regress", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
