"""Versioned benchmark artifacts: the ``BENCH_<experiment>.json`` schema.

Every benchmark figure serializes its measured grid into one JSON file
next to the human-readable ``.txt`` table, giving the repo a
machine-readable perf trajectory that the regression gate
(:mod:`repro.obs.regress`) and CI can diff across commits.

Schema (``repro.obs/bench-artifact`` version 1)::

    {
      "schema": "repro.obs/bench-artifact",
      "version": 1,
      "experiment": "fig08_threshold",
      "meta": {"seed": 42, ...},          # free-form provenance
      "entries": [                         # one per measured config
        {
          "key": "thr=512KB/dim=2000",    # unique within the artifact
          "scheme": "Proposed", "workload": "specfem3D_cm",
          "system": "Lassen", "nbuffers": 16, "dim": 2000,
          "message_bytes": 70224,
          "mean_latency": 1.2e-4, "min_latency": 1.1e-4,
          "latencies": [...],              # seconds, post-warm-up
          "breakdown": {"pack": ..., "launch": ..., ...},
          "scheduler": {"launches": ..., "mean_batch": ...},  # fusion runs
          "metrics": {...},                # MetricsSnapshot.as_dict()
          "config": {"threshold_bytes": 524288},  # scheme overrides
          "run": {"iterations": 2, "warmup": 1, "data_plane": false,
                  "rendezvous_protocol": "rput"}
        }, ...
      ],
      "data": {...}                        # free-form, for figures that
    }                                      # are not bulk-exchange grids

``entries`` carry everything needed to *re-run* the measurement
(:func:`repro.obs.regress.rerun_entry`); ``data`` covers figures like
Fig. 1 that tabulate cost-model constants rather than exchanges.

This module is deliberately import-light (stdlib + duck-typed results)
so ``repro.obs`` can load before the simulator packages.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "result_entry",
    "entries_from_grid",
    "experiment_artifact",
    "write_bench_artifact",
    "load_bench_artifact",
    "artifact_path",
]

SCHEMA = "repro.obs/bench-artifact"
SCHEMA_VERSION = 1


def result_entry(
    result: Any,
    *,
    key: Optional[str] = None,
    config: Optional[Mapping[str, Any]] = None,
    run: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize one ``ExperimentResult``-like object into an entry.

    ``result`` is duck-typed: anything with the runner's result fields
    works.  ``config`` records scheme-constructor overrides (e.g. the
    fusion threshold) and ``run`` the harness parameters needed to
    reproduce the number.
    """
    entry: Dict[str, Any] = {
        "key": key or f"{result.scheme}/dim={result.dim}/nbuf={result.nbuffers}",
        "scheme": result.scheme,
        "workload": result.workload,
        "system": result.system,
        "nbuffers": result.nbuffers,
        "dim": result.dim,
        "message_bytes": result.message_bytes,
        "mean_latency": result.mean_latency,
        "min_latency": result.min_latency,
        "latencies": [float(v) for v in result.latencies],
        "breakdown": {str(cat): float(v) for cat, v in result.breakdown.items()},
    }
    stats = getattr(result, "scheduler_stats", None)
    if stats is not None:
        entry["scheduler"] = {
            "enqueued": stats.enqueued,
            "launches": stats.launches,
            "fused_requests": stats.fused_requests,
            "flush_launches": stats.flush_launches,
            "threshold_launches": stats.threshold_launches,
            "fallbacks": stats.fallbacks,
            "mean_batch": stats.mean_batch,
        }
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        entry["metrics"] = metrics.as_dict() if hasattr(metrics, "as_dict") else metrics
    if config:
        entry["config"] = dict(config)
    if run:
        entry["run"] = dict(run)
    return entry


def entries_from_grid(
    results: Mapping[str, Mapping[Any, Any]],
    *,
    column: str = "col",
    run: Optional[Mapping[str, Any]] = None,
    key_prefix: str = "",
) -> List[Dict[str, Any]]:
    """Entries for a ``results[scheme][column_value]`` benchmark grid.

    The shape every figure benchmark produces (``run_grid`` and
    friends).  Keys become ``[prefix/]scheme/<column>=<value>``.
    """
    entries = []
    for scheme, per_column in results.items():
        for value, result in per_column.items():
            key = f"{scheme}/{column}={value}"
            if key_prefix:
                key = f"{key_prefix}/{key}"
            entries.append(result_entry(result, key=key, run=run))
    return entries


def experiment_artifact(
    experiment: str,
    entries: Sequence[Mapping[str, Any]] = (),
    *,
    data: Optional[Mapping[str, Any]] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned artifact document."""
    keys = [e["key"] for e in entries]
    if len(keys) != len(set(keys)):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate entry keys in {experiment}: {dupes}")
    artifact: Dict[str, Any] = {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "experiment": experiment,
        "meta": dict(meta or {}),
        "entries": [dict(e) for e in entries],
    }
    if data is not None:
        artifact["data"] = dict(data)
    return artifact


def artifact_path(directory: str, experiment: str) -> str:
    """Canonical artifact filename for an experiment."""
    return os.path.join(directory, f"BENCH_{experiment}.json")


def write_bench_artifact(path: str, artifact: Mapping[str, Any]) -> str:
    """Write an artifact (pretty-printed, stable key order); returns path."""
    if artifact.get("schema") != SCHEMA:
        raise ValueError(f"not a bench artifact: schema={artifact.get('schema')!r}")
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def load_bench_artifact(path: str) -> Dict[str, Any]:
    """Load and validate an artifact written by :func:`write_bench_artifact`."""
    with open(path) as fh:
        artifact = json.load(fh)
    if artifact.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a bench artifact (schema={artifact.get('schema')!r})")
    version = artifact.get("version")
    if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported artifact version {version!r}")
    artifact.setdefault("entries", [])
    artifact.setdefault("meta", {})
    return artifact
