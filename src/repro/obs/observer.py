"""The telemetry facade the hot paths talk to.

Every instrumented component (scheduler, request list, links, wire
protocols, schemes) reaches observability through one object:
``sim.obs``.  By default that is :data:`NULL_OBSERVER`, whose every
method is a constant-time no-op — disabled telemetry is a strict no-op
on the simulated timeline (DESIGN.md §6).  Attaching a real
:class:`Observer` (``run_bulk_exchange(..., obs=Observer())`` or the
CLI ``--metrics`` / ``--trace-out`` flags) turns the same call sites
into live metric updates and recorded events, still without consuming
a single simulated nanosecond: observation never touches the event
calendar.

The metric catalog (names, kinds, help strings, buckets) is declared
here in :data:`METRIC_CATALOG` so that every Observer exposes the same
series and ``docs/observability.md`` has one authoritative source.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)
from .recorder import NullRecorder, Recorder

__all__ = ["METRIC_CATALOG", "Observer", "NullObserver", "NULL_OBSERVER"]

#: name -> (kind, help, labelnames, buckets-or-None).  The single
#: authoritative list of every series the instrumentation emits.
METRIC_CATALOG: Dict[str, Tuple[str, str, Tuple[str, ...], Optional[Tuple[float, ...]]]] = {
    # -- fusion framework --------------------------------------------------
    "fusion_enqueued_total": (
        "counter", "Requests accepted into the circular request list", (), None),
    "fusion_launches_total": (
        "counter", "Fused kernel launches by trigger", ("reason",), None),
    "fusion_fused_requests_total": (
        "counter", "Requests carried by committed fused kernels", (), None),
    "fusion_batch_size": (
        "histogram", "Requests per committed fused kernel", (),
        DEFAULT_SIZE_BUCKETS),
    "fusion_queue_latency_seconds": (
        "histogram", "Enqueue-to-launch wait per fused request", (),
        DEFAULT_LATENCY_BUCKETS),
    "fusion_ring_occupancy": (
        "gauge", "Occupied circular-request-list slots", (), None),
    "fusion_ring_rejections_total": (
        "counter", "Enqueues rejected by a full request list", (), None),
    # -- scheduler recovery ladder (only nonzero under fault injection) ----
    "sched_launch_failures_total": (
        "counter", "Fused-kernel launches that failed at the driver", (), None),
    "sched_relaunches_total": (
        "counter", "Ladder rung 1: same-batch relaunches", (), None),
    "sched_batch_splits_total": (
        "counter", "Ladder rung 2: batch halvings", (), None),
    "sched_sync_fallbacks_total": (
        "counter", "Ladder rung 3: degraded launch-and-wait requests", (), None),
    "sched_deadline_hits_total": (
        "counter", "Requests caught incomplete past their deadline", (), None),
    "sched_deadline_relaunches_total": (
        "counter", "Solo relaunches issued by deadline watchdogs", (), None),
    "sched_ring_fallbacks_total": (
        "counter", "Enqueues pushed onto the negative-UID fallback path", (), None),
    # -- wire protocols ----------------------------------------------------
    "proto_rts_sent_total": (
        "counter", "RTS control packets sent (first transmissions)", (), None),
    "rts_retransmits_total": (
        "counter", "RTS packets re-sent by sender control watchdogs", (), None),
    "cts_resends_total": (
        "counter", "CTS offers repeated after a duplicate RTS", (), None),
    # -- links -------------------------------------------------------------
    "link_transfers_total": (
        "counter", "Completed payload transfers per link", ("link",), None),
    "link_bytes_total": (
        "counter", "Payload bytes carried per link", ("link",), None),
    "link_retransmits_total": (
        "counter", "Transfers retransmitted after injected failures", ("link",), None),
    "link_fault_delay_seconds_total": (
        "counter", "Simulated seconds lost to link faults", ("link",), None),
    # -- schemes -----------------------------------------------------------
    "kernel_launches_total": (
        "counter", "Per-operation kernel-launch driver calls", ("scheme",), None),
    "scheme_launch_retries_total": (
        "counter", "Per-operation launches retried after injected failures",
        ("scheme",), None),
    # -- sweep engine (host-side, repro.bench.sweep) -----------------------
    "sweep_shards_total": (
        "counter",
        "Sweep shards by outcome (hit=served from cache, run=executed)",
        ("outcome",), None),
    "sweep_failures_total": (
        "counter", "Sweep shards that raised inside a worker", (), None),
    "sweep_jobs": (
        "gauge", "Worker processes used by the most recent sweep", (), None),
    "sweep_wall_seconds_total": (
        "counter", "Host wall-clock seconds spent executing sweep shards",
        (), None),
    # -- simulation engine (host-side, repro.sim.engine) -------------------
    "engine_events_total": (
        "counter", "Calendar events fired by the simulation engine", (), None),
    "engine_wall_seconds_total": (
        "counter", "Host wall-clock seconds spent inside Simulator.run", (), None),
    "engine_events_per_second": (
        "gauge", "Events/sec of the most recent Simulator.run drain", (), None),
}


class Observer:
    """Live telemetry: a metric registry plus an event recorder.

    ``const_labels`` are appended to every metric update — the CLI uses
    this to tag each scheme's run, which keeps merged Prometheus output
    from colliding.
    """

    enabled = True

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[Recorder] = None,
        const_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else Recorder()
        self.const_labels = dict(const_labels or {})
        for name, (kind, help_, labelnames, buckets) in METRIC_CATALOG.items():
            names = tuple(labelnames) + tuple(self.const_labels)
            if kind == "counter":
                self.metrics.counter(name, help_, names)
            elif kind == "gauge":
                self.metrics.gauge(name, help_, names)
            else:
                self.metrics.histogram(name, help_, names, buckets)

    # -- metric updates ----------------------------------------------------
    def _family(self, name: str, kind: str, labels: Mapping[str, object]):
        family = self.metrics.get(name)
        if family is None:
            # Undeclared metric: register on first use so ad-hoc
            # instrumentation (tests, extensions) just works.
            names = tuple(labels) + tuple(
                k for k in self.const_labels if k not in labels
            )
            family = self.metrics._declare(name, kind, "", names)
        merged = dict(self.const_labels)
        merged.update(labels)
        return family.labels(**merged)

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment a counter series."""
        self._family(name, "counter", labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series."""
        self._family(name, "gauge", labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Observe a histogram sample."""
        self._family(name, "histogram", labels).observe(value)

    # -- event recording ---------------------------------------------------
    def span(
        self, category: str, name: str, start: float, end: float,
        track: str = "", **args: object,
    ) -> None:
        """Record a completed interval on the event stream."""
        self.recorder.span(category, name, start, end, track=track, **args)

    def instant(
        self, category: str, name: str, ts: float, track: str = "", **args: object
    ) -> None:
        """Record a point event on the event stream."""
        self.recorder.instant(category, name, ts, track=track, **args)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry (shorthand for ``obs.metrics.snapshot()``)."""
        return self.metrics.snapshot()


class NullObserver(Observer):
    """Disabled observer: every call is a constant-time no-op.

    The default ``sim.obs`` on every simulator.  Its registry and
    recorder stay permanently empty, and none of the update methods
    allocate, so instrumented hot paths cost one attribute lookup and
    one no-op call when telemetry is off.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.recorder = NullRecorder()
        self.const_labels: Dict[str, str] = {}

    def count(self, name, amount=1.0, **labels) -> None:
        return None

    def gauge_set(self, name, value, **labels) -> None:
        return None

    def observe(self, name, value, **labels) -> None:
        return None

    def span(self, category, name, start, end, track="", **args) -> None:
        return None

    def instant(self, category, name, ts, track="", **args) -> None:
        return None


#: process-wide disabled observer shared by every simulator by default
NULL_OBSERVER = NullObserver()
