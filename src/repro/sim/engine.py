"""Discrete-event simulation kernel.

This module provides the virtual-clock substrate on which every timed
component of the reproduction runs: GPU streams, network links, MPI
progress engines, and the kernel-fusion scheduler.  It is a small,
dependency-free engine in the style of SimPy:

* :class:`Simulator` owns a binary-heap event calendar and the virtual
  clock (``now``, in **seconds**).
* :class:`Event` is a one-shot occurrence that callbacks can attach to.
* :class:`Process` wraps a Python generator; the generator *yields*
  events (or other processes) and is resumed when they fire, which gives
  ordinary sequential-looking code for concurrent behaviour.
* :class:`AllOf` / :class:`AnyOf` compose events.

Determinism
-----------
Events scheduled for the same timestamp fire in FIFO order of their
scheduling (a monotonically increasing sequence number breaks ties), so
a simulation is fully deterministic given deterministic process code.
This property is relied on by the regression tests and by the benchmark
harness, which compares scheme timings without noise.

Hot path
--------
The per-event cost of this kernel *is* the wall-clock cost of every
sweep (exactly the per-request overhead disease the paper diagnoses one
level down, in kernel launches), so the dominant patterns are kept
allocation-lean:

* every calendar object is ``__slots__``-only;
* callback storage is lazy — ``None`` until the first subscriber, a
  bare callable for the overwhelmingly common single-waiter case, and a
  list only beyond that (:meth:`Event.add_callback`);
* the ``yield sim.timeout(dt)`` resume path allocates one
  :class:`Timeout` and one heap entry, nothing else: the process's
  resume callback is a cached bound method, event names are built
  lazily by ``__repr__``, and :meth:`Simulator.run` drains the calendar
  with the step body inlined.

The *semantics* are identical on every path; clients additionally guard
closed-form shortcuts (e.g. :meth:`repro.net.link.Link.transmit`)
behind :func:`fastpath_enabled`, which the ``REPRO_SIM_FASTPATH``
environment variable (default on) controls so CI can prove virtual-time
equivalence of fast and generic paths.

Units
-----
The clock is a float in seconds.  Helpers :func:`us` and :func:`ns`
convert the microsecond/nanosecond constants used throughout the GPU
and network cost models.
"""

from __future__ import annotations

import itertools
import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from ..obs.observer import NULL_OBSERVER

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "fastpath_enabled",
    "set_fastpath",
    "us",
    "ns",
    "ms",
]


def us(value: float) -> float:
    """Convert microseconds to simulator seconds."""
    return value * 1e-6


def ns(value: float) -> float:
    """Convert nanoseconds to simulator seconds."""
    return value * 1e-9


def ms(value: float) -> float:
    """Convert milliseconds to simulator seconds."""
    return value * 1e-3


#: closed-form client fast paths on/off (the engine's own lean paths are
#: unconditional — they are exactly equivalent by construction)
_FASTPATH: bool = os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


def fastpath_enabled() -> bool:
    """Whether clients may take their closed-form no-fault fast paths.

    Controlled by ``REPRO_SIM_FASTPATH`` (default on; set to ``0`` to
    force every component down its generic path).  The CI equivalence
    job runs the full figure plane both ways and byte-compares the
    artifacts — fast paths must never change virtual time.
    """
    return _FASTPATH


def set_fastpath(enabled: bool) -> bool:
    """Toggle client fast paths at runtime; returns the previous value.

    Intended for tests that prove fast/generic equivalence in-process.
    """
    global _FASTPATH
    previous = _FASTPATH
    _FASTPATH = bool(enabled)
    return previous


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: sentinel distinguishing "no value yet" from a ``None`` value
_PENDING = object()

Callback = Callable[["Event"], None]
#: lazy callback storage: nothing / one subscriber / many subscribers
_Callbacks = Union[None, Callback, List[Callback]]


class Event:
    """A one-shot occurrence on the simulation calendar.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it to fire at the current simulation time;
    when it fires, all registered callbacks run with the event as the
    sole argument.  Processes yield events to suspend until they fire.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_triggered", "_processed", "name")

    #: kept as a class attribute for backwards compatibility
    _PENDING = _PENDING

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: _Callbacks = None
        self._value: Any = _PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- callback storage --------------------------------------------------
    def add_callback(self, callback: Callback) -> None:
        """Subscribe ``callback`` to run (with this event) when it fires.

        The storage is lazy: no container is allocated for the first
        subscriber.  This is the hot-path API; the :attr:`callbacks`
        list view exists for introspection and external composition.
        """
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = callback
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self._callbacks = [cbs, callback]

    def discard_callback(self, callback: Callback) -> None:
        """Unsubscribe ``callback`` if present (no-op otherwise)."""
        cbs = self._callbacks
        if cbs is None:
            return
        if type(cbs) is list:
            if callback in cbs:
                cbs.remove(callback)
        elif cbs == callback:
            self._callbacks = None

    @property
    def callbacks(self) -> List[Callback]:
        """Mutable list of subscribed callbacks.

        Accessing it materializes the lazy storage into a real list
        that *is* the storage from then on, so ``ev.callbacks.append``
        keeps working exactly as before the lazy representation.
        """
        cbs = self._callbacks
        if type(cbs) is list:
            return cbs
        cbs = [] if cbs is None else [cbs]
        self._callbacks = cbs
        return cbs

    @callbacks.setter
    def callbacks(self, value: List[Callback]) -> None:
        self._callbacks = value

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event was failed with an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heappush(sim._heap, (sim._now + delay, next(sim._seq), self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heappush(sim._heap, (sim._now + delay, next(sim._seq), self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Straight-line slot assignment: this is the single hottest
        # constructor in the system (one per `yield sim.timeout(dt)`),
        # so it bypasses Event.__init__ and builds no name string.
        self.sim = sim
        self.name = ""
        self._callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        heappush(sim._heap, (sim._now + delay, next(sim._seq), self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else "triggered"
        return f"<Timeout({self.delay:g}) {state}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    A constituent event counts toward satisfaction once it has been
    *processed* (its callbacks ran), not merely scheduled — a freshly
    created ``Timeout(5)`` is already triggered but must not satisfy an
    ``AnyOf`` until the clock reaches it.
    """

    __slots__ = ("events", "_done_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: Tuple[Event, ...] = tuple(events)
        self._done_count = 0
        observe = self._observe
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot compose events of different simulators")
            if ev._processed:
                observe(ev)
            else:
                ev.add_callback(observe)
        # An empty condition resolves immediately.
        if not self._triggered and self._satisfied():
            self.succeed(self._collect())

    # subclass hooks -------------------------------------------------------
    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev.value for ev in self.events if ev._processed or ev is self}

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._done_count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when *all* constituent events have been processed.

    Its value is a dict mapping each event to its value.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done_count >= len(self.events)


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event is processed.

    Its value is a dict of the events processed by trigger time.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done_count >= 1 or not self.events


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-driven concurrent activity.

    The wrapped generator yields :class:`Event` objects; the process
    sleeps until each fires and is resumed with the event's value (or
    has the failure exception thrown into it).  A process is itself an
    event that fires with the generator's return value, so processes can
    wait on each other.
    """

    __slots__ = ("generator", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "Process requires a generator; did you forget to call the "
                "generator function?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        #: bound once — appending a method per yield would allocate
        self._resume_cb: Callback = self._resume
        bootstrap = Event(sim)
        bootstrap._callbacks = self._resume_cb
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        carrier = Event(self.sim, name=f"interrupt:{self.name}")
        carrier._callbacks = self._resume_cb
        carrier.fail(Interrupt(cause))

    # internal -------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        # Detach from a previous target if we were interrupted while
        # waiting (trigger is then the interrupt carrier, not the
        # target; when a target fires normally it IS the trigger and
        # its callback storage was already cleared by the calendar).
        target = self._target
        if target is not None and target is not trigger:
            target.discard_callback(self._resume_cb)
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger._ok:
                value = trigger._value
                target = self.generator.send(None if value is _PENDING else value)
            else:
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        sim._active_process = None

        if target is self:
            raise SimulationError("a process cannot wait on itself")
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
        if target._processed:
            # The event already fired; resume on a fresh zero-delay carrier
            # so resumption still goes through the calendar (keeps ordering
            # deterministic and stack depth bounded).
            carrier = Event(sim)
            carrier._callbacks = self._resume_cb
            if target._ok:
                carrier.succeed(target._value)
            else:
                carrier.fail(target._value)
            self._target = carrier
        else:
            target.add_callback(self._resume_cb)
            self._target = target


class Simulator:
    """Owner of the virtual clock and the event calendar."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: calendar events fired so far (the obs ``engine_events_total``
        #: series and the wallclock microbench read this)
        self.events_processed: int = 0
        #: optional multiplicative jitter applied by streams and links
        #: (see :mod:`repro.sim.noise`); None = exact determinism
        self.noise: Optional[Any] = None
        #: optional seeded fault-injection plan consulted by links,
        #: protocols, and the fusion scheduler (see
        #: :mod:`repro.sim.faults`); None = a perfect fabric and GPU
        self.faults: Optional[Any] = None
        #: telemetry sink consulted by instrumented hot paths (see
        #: :mod:`repro.obs`); the default NullObserver makes every
        #: observation a constant-time no-op that never touches the
        #: event calendar, so disabled telemetry cannot perturb timing
        self.obs: Any = NULL_OBSERVER

    def __reduce__(self):
        # Live simulations hold generator-based processes, which cannot
        # cross a process boundary; without this guard pickle fails
        # deep inside the event heap with an opaque error.
        raise TypeError(
            "Simulator is not picklable: ship a picklable "
            "repro.bench.sweep.ExperimentSpec to the worker and rebuild "
            "the simulation there instead"
        )

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heappush(self._heap, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def _fire(self, event: Event) -> None:
        """Run one popped event's callbacks (the shared step body)."""
        event._processed = True
        cbs = event._callbacks
        if cbs is not None:
            event._callbacks = None
            if type(cbs) is list:
                for callback in cbs:
                    callback(event)
            else:
                cbs(event)
        elif not event._ok:
            # A failed event (or crashed process) nobody was waiting on
            # would silently swallow the error — and often turn into a
            # livelock downstream; surface it instead.
            raise event._value

    def step(self) -> None:
        """Fire exactly one event (the earliest scheduled)."""
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        when, _, event = heappop(self._heap)
        self._now = when
        self.events_processed += 1
        self._fire(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to calendar exhaustion), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires, returning its value / raising its failure).

        The drain loops inline the :meth:`step` body — one Python-level
        call per event would be a measurable share of sweep wall time.
        """
        heap = self._heap
        fire = self._fire
        fired = 0
        if until is None:
            try:
                while heap:
                    when, _, event = heappop(heap)
                    self._now = when
                    fired += 1
                    fire(event)
            finally:
                self.events_processed += fired
            return None
        if isinstance(until, Event):
            try:
                while not until._processed:
                    if not heap:
                        raise SimulationError(
                            f"simulation ran out of events before {until!r} fired "
                            "(deadlock?)"
                        )
                    when, _, event = heappop(heap)
                    self._now = when
                    fired += 1
                    fire(event)
            finally:
                self.events_processed += fired
            if until._ok:
                return until._value
            raise until._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now ({self._now})")
        try:
            while heap and heap[0][0] <= horizon:
                when, _, event = heappop(heap)
                self._now = when
                fired += 1
                fire(event)
        finally:
            self.events_processed += fired
        self._now = horizon
        return None
