"""Discrete-event simulation kernel.

This module provides the virtual-clock substrate on which every timed
component of the reproduction runs: GPU streams, network links, MPI
progress engines, and the kernel-fusion scheduler.  It is a small,
dependency-free engine in the style of SimPy:

* :class:`Simulator` owns a binary-heap event calendar and the virtual
  clock (``now``, in **seconds**).
* :class:`Event` is a one-shot occurrence that callbacks can attach to.
* :class:`Process` wraps a Python generator; the generator *yields*
  events (or other processes) and is resumed when they fire, which gives
  ordinary sequential-looking code for concurrent behaviour.
* :class:`AllOf` / :class:`AnyOf` compose events.

Determinism
-----------
Events scheduled for the same timestamp fire in FIFO order of their
scheduling (a monotonically increasing sequence number breaks ties), so
a simulation is fully deterministic given deterministic process code.
This property is relied on by the regression tests and by the benchmark
harness, which compares scheme timings without noise.

Units
-----
The clock is a float in seconds.  Helpers :func:`us` and :func:`ns`
convert the microsecond/nanosecond constants used throughout the GPU
and network cost models.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.observer import NULL_OBSERVER

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "us",
    "ns",
    "ms",
]


def us(value: float) -> float:
    """Convert microseconds to simulator seconds."""
    return value * 1e-6


def ns(value: float) -> float:
    """Convert nanoseconds to simulator seconds."""
    return value * 1e-9


def ms(value: float) -> float:
    """Convert milliseconds to simulator seconds."""
    return value * 1e-3


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation calendar.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it to fire at the current simulation time;
    when it fires, all registered callbacks run with the event as the
    sole argument.  Processes yield events to suspend until they fire.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "name")

    #: sentinel distinguishing "no value yet" from a ``None`` value
    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event was failed with an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        if self._value is Event._PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._enqueue(delay, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._enqueue(delay, self)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    A constituent event counts toward satisfaction once it has been
    *processed* (its callbacks ran), not merely scheduled — a freshly
    created ``Timeout(5)`` is already triggered but must not satisfy an
    ``AnyOf`` until the clock reaches it.
    """

    __slots__ = ("events", "_done_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._done_count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot compose events of different simulators")
            if ev.processed:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)
        # An empty condition resolves immediately.
        if not self._triggered and self._satisfied():
            self.succeed(self._collect())

    # subclass hooks -------------------------------------------------------
    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev.value for ev in self.events if ev.processed or ev is self}

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._done_count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when *all* constituent events have been processed.

    Its value is a dict mapping each event to its value.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done_count >= len(self.events)


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event is processed.

    Its value is a dict of the events processed by trigger time.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done_count >= 1 or not self.events


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-driven concurrent activity.

    The wrapped generator yields :class:`Event` objects; the process
    sleeps until each fires and is resumed with the event's value (or
    has the failure exception thrown into it).  A process is itself an
    event that fires with the generator's return value, so processes can
    wait on each other.
    """

    __slots__ = ("generator", "_target")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "Process requires a generator; did you forget to call the "
                "generator function?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        bootstrap = Event(sim, name=f"init:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        carrier = Event(self.sim, name=f"interrupt:{self.name}")
        carrier.callbacks.append(self._resume)
        carrier.fail(Interrupt(cause))

    # internal -------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        # Detach from a previous target if we were interrupted while waiting.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self.sim._active_process = self
        try:
            if trigger.ok:
                target = self.generator.send(trigger._value if trigger._value is not Event._PENDING else None)
            else:
                target = self.generator.throw(trigger.value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        self.sim._active_process = None

        if isinstance(target, Process) and target is self:
            raise SimulationError("a process cannot wait on itself")
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
        self._target = target
        if target.processed:
            # The event already fired; resume on a fresh zero-delay carrier
            # so resumption still goes through the calendar (keeps ordering
            # deterministic and stack depth bounded).
            carrier = Event(self.sim)
            carrier.callbacks.append(self._resume)
            if target.ok:
                carrier.succeed(target.value)
            else:
                carrier.fail(target.value)
            self._target = carrier
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Owner of the virtual clock and the event calendar."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: optional multiplicative jitter applied by streams and links
        #: (see :mod:`repro.sim.noise`); None = exact determinism
        self.noise = None
        #: optional seeded fault-injection plan consulted by links,
        #: protocols, and the fusion scheduler (see
        #: :mod:`repro.sim.faults`); None = a perfect fabric and GPU
        self.faults = None
        #: telemetry sink consulted by instrumented hot paths (see
        #: :mod:`repro.obs`); the default NullObserver makes every
        #: observation a constant-time no-op that never touches the
        #: event calendar, so disabled telemetry cannot perturb timing
        self.obs = NULL_OBSERVER

    def __reduce__(self):
        # Live simulations hold generator-based processes, which cannot
        # cross a process boundary; without this guard pickle fails
        # deep inside the event heap with an opaque error.
        raise TypeError(
            "Simulator is not picklable: ship a picklable "
            "repro.bench.sweep.ExperimentSpec to the worker and rebuild "
            "the simulation there instead"
        )

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Fire exactly one event (the earliest scheduled)."""
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # A failed event (or crashed process) nobody was waiting on
            # would silently swallow the error — and often turn into a
            # livelock downstream; surface it instead.
            raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to calendar exhaustion), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires, returning its value / raising its failure).
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {until!r} fired "
                        "(deadlock?)"
                    )
                self.step()
            if until.ok:
                return until.value
            raise until.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now ({self._now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
