"""Time-breakdown accounting (reproduces the cost taxonomy of Fig. 11).

The paper decomposes the end-to-end cost of a bulk non-contiguous
transfer into five buckets:

1. ``PACK``   — time spent inside packing/unpacking GPU kernels (or CPU
   copy loops for the hybrid scheme),
2. ``LAUNCH`` — GPU kernel-launch driver overhead,
3. ``SCHED``  — scheduling work: ``cudaEventRecord``-style bookkeeping
   for GPU-Async, enqueue/dequeue of fusion requests for the proposed
   scheme,
4. ``SYNC``   — CPU<->GPU synchronization (``cudaStreamSynchronize``,
   ``cudaEventQuery`` polling, or the fusion scheduler's flag polling),
5. ``COMM``   — *observed* communication time, i.e. wire time that was
   not hidden behind packing/unpacking.

Schemes charge time to buckets explicitly through a :class:`Trace`
carried by the benchmark harness; the harness prints per-bucket totals
in the same shape as the paper's stacked bars.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Category", "Span", "Trace"]


class Category(str, enum.Enum):
    """The five cost buckets of Fig. 11 (plus a catch-all)."""

    PACK = "pack"
    LAUNCH = "launch"
    SCHED = "sched"
    SYNC = "sync"
    COMM = "comm"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Span:
    """A single charged interval.

    ``start``/``end`` are simulation times in seconds; ``label`` is a
    free-form tag (e.g. the workload buffer index) used by tests.
    """

    category: Category
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")


@dataclass
class Trace:
    """Accumulator of charged :class:`Span` intervals.

    A fresh trace is attached per benchmark iteration; totals are read
    through :meth:`total` / :meth:`breakdown`.
    """

    spans: List[Span] = field(default_factory=list)
    enabled: bool = True

    def charge(
        self,
        category: Category,
        start: float,
        end: float,
        label: str = "",
    ) -> None:
        """Record a charged interval ``[start, end]`` in ``category``."""
        if not self.enabled:
            return
        self.spans.append(Span(category, start, end, label))

    def charge_duration(
        self, category: Category, now: float, duration: float, label: str = ""
    ) -> None:
        """Record ``duration`` seconds ending at simulation time ``now``."""
        self.charge(category, now - duration, now, label)

    def total(self, category: Optional[Category] = None) -> float:
        """Sum of charged durations, optionally restricted to a category."""
        if category is None:
            return sum(s.duration for s in self.spans)
        return sum(s.duration for s in self.spans if s.category is category)

    def breakdown(self) -> Dict[Category, float]:
        """Per-category totals for every category (zeros included)."""
        out = {cat: 0.0 for cat in Category}
        for span in self.spans:
            out[span.category] += span.duration
        return out

    def count(self, category: Optional[Category] = None) -> int:
        """Number of charged spans, optionally per category."""
        if category is None:
            return len(self.spans)
        return sum(1 for s in self.spans if s.category is category)

    def iter_category(self, category: Category) -> Iterator[Span]:
        """Iterate spans of one category in charge order."""
        return (s for s in self.spans if s.category is category)

    def merge(self, others: Iterable["Trace"]) -> "Trace":
        """Fold other traces' spans into this one (returns self)."""
        for other in others:
            self.spans.extend(other.spans)
        return self

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans.clear()

    def scaled(self, factor: float) -> Dict[Category, float]:
        """Breakdown with every total multiplied by ``factor``.

        Used to convert per-run totals into per-iteration averages.
        """
        return {cat: tot * factor for cat, tot in self.breakdown().items()}
