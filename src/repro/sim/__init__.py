"""Discrete-event simulation substrate.

Everything timed in the reproduction — GPU streams, network links, MPI
progress engines, the fusion scheduler — runs on this small SimPy-style
kernel.  See :mod:`repro.sim.engine` for the execution model.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    fastpath_enabled,
    ms,
    ns,
    set_fastpath,
    us,
)
from .resources import Channel, Resource, Store
from .chrometrace import chrome_trace_events, export_chrome_trace
from .faults import FAULT_PRESETS, FaultError, FaultPlan, FaultSpec, FaultStats
from .noise import NoiseModel
from .timeline import render_timeline
from .trace import Category, Span, Trace

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "fastpath_enabled",
    "set_fastpath",
    "Resource",
    "Store",
    "Channel",
    "Category",
    "Span",
    "Trace",
    "render_timeline",
    "chrome_trace_events",
    "NoiseModel",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "FaultError",
    "FAULT_PRESETS",
    "export_chrome_trace",
    "us",
    "ns",
    "ms",
]
