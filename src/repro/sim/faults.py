"""Seeded, deterministic fault injection (the chaos plan).

Real deployments of the fusion framework live inside an MPI progress
engine that must survive an imperfect world: fabric latency spikes,
flapping links, lost RTS/CTS control packets, RDMA transfers that die
mid-flight, kernel launches the driver rejects, straggling thread
blocks, and request-list pressure.  A :class:`FaultPlan` models all of
these as *seeded, reproducible* adversities that attach to a
:class:`~repro.sim.engine.Simulator` exactly the way
:class:`~repro.sim.noise.NoiseModel` does::

    sim = Simulator()
    sim.faults = FaultPlan(seed=7, spec=FAULT_PRESETS["moderate"])

Consumers (links, protocols, the fusion scheduler, the fused-kernel
launcher) query the plan at their decision points; each decision point
draws from its own named RNG stream, keyed by a *stable* hash
(``zlib.crc32``) of the channel name, so identical seeds produce
identical fault timelines across processes and across fresh
``Simulator`` instances — the property the chaos tests rely on.

The headline invariant (see DESIGN.md): **faults may cost time, never
correctness** — under any valid :class:`FaultSpec`, every scheme still
delivers byte-identical receive buffers; retries, watchdogs, and the
scheduler's graceful-degradation ladder absorb the damage and report it
through stats and the :class:`~repro.sim.trace.Trace`.

Retried fault kinds (``transfer_failure``, ``control_drop``,
``launch_failure``) are capped at :data:`MAX_RETRIED_PROBABILITY` so
every retry loop terminates almost surely; the recovery paths carry a
large hard attempt cap and raise :class:`FaultError` beyond it (a
diagnostic backstop, unreachable for valid specs).
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, fields
from typing import Dict

import numpy as np

__all__ = [
    "FaultError",
    "FaultSpec",
    "FaultStats",
    "FaultPlan",
    "FAULT_PRESETS",
    "MAX_RETRIED_PROBABILITY",
]

#: ceiling on the per-event probability of fault kinds that are healed
#: by retry loops — keeps at least a 10 % per-attempt success chance so
#: retransmission/relaunch terminates almost surely
MAX_RETRIED_PROBABILITY = 0.9

#: fault kinds healed by a retry loop (probability capped, see above)
_RETRIED_KINDS = ("transfer_failure", "control_drop", "launch_failure")
#: fault kinds that only delay (probability may reach 1.0)
_DELAY_KINDS = ("latency_spike", "link_flap", "straggler", "ring_pressure")


class FaultError(RuntimeError):
    """A recovery path exhausted its (very large) retry budget."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-event probabilities and magnitudes of one chaos profile.

    All ``*_probability``-style fields are per-decision probabilities in
    ``[0, 1]`` (retried kinds capped at
    :data:`MAX_RETRIED_PROBABILITY`); factors are multipliers >= 1.
    """

    #: P[a data transfer hits a fabric latency spike]
    latency_spike: float = 0.0
    #: duration multiplier while spiked
    spike_factor: float = 8.0
    #: P[the link is dark (flapped) when a transfer arrives at its port]
    link_flap: float = 0.0
    #: how long a flapped link stays dark, seconds
    flap_downtime: float = 200e-6
    #: P[a data transfer fails mid-flight and must be retransmitted]
    transfer_failure: float = 0.0
    #: P[an RTS/CTS control packet is lost on the wire]
    control_drop: float = 0.0
    #: P[a fused-kernel launch fails and enters the degradation ladder]
    launch_failure: float = 0.0
    #: P[one request's thread blocks straggle inside a fused kernel]
    straggler: float = 0.0
    #: completion-delay multiplier for a straggling request
    straggler_factor: float = 6.0
    #: P[a scheduler enqueue is rejected as if the request ring were full]
    ring_pressure: float = 0.0

    def __post_init__(self) -> None:
        for name in _DELAY_KINDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {p}")
        for name in _RETRIED_KINDS:
            p = getattr(self, name)
            if not 0.0 <= p <= MAX_RETRIED_PROBABILITY:
                raise ValueError(
                    f"{name} must be in [0, {MAX_RETRIED_PROBABILITY}] so the "
                    f"retry loop terminates, got {p}"
                )
        for name in ("spike_factor", "straggler_factor"):
            f = getattr(self, name)
            if f < 1.0:
                raise ValueError(f"{name} must be >= 1, got {f}")
        if self.flap_downtime < 0:
            raise ValueError(f"flap_downtime must be >= 0, got {self.flap_downtime}")

    @property
    def active(self) -> bool:
        """True when any fault kind has nonzero probability."""
        return any(getattr(self, name) > 0.0 for name in _RETRIED_KINDS + _DELAY_KINDS)


@dataclass
class FaultStats:
    """Counts of *injected* fault events, by kind."""

    latency_spikes: int = 0
    link_flaps: int = 0
    transfer_failures: int = 0
    control_drops: int = 0
    launch_failures: int = 0
    stragglers: int = 0
    ring_rejections: int = 0

    @property
    def total(self) -> int:
        """Total injected fault events."""
        return sum(asdict(self).values())

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable field order) for reports and tests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """A seeded source of fault decisions, attachable as ``sim.faults``.

    Each decision point queries a named channel (e.g. ``xfer:<link>``);
    channels draw from independent, reproducible RNG streams seeded by
    ``(seed, crc32(channel))``.  Because the simulation kernel is
    deterministic, the sequence of queries — and therefore the full
    fault timeline — is identical across runs with the same seed and
    spec.

    Every injected event is tallied in :attr:`stats`; the *recovery*
    actions it provokes are counted where they happen (link
    retransmits, runtime watchdog stats, scheduler stats).
    """

    def __init__(self, seed: int = 0, spec: FaultSpec | None = None):
        self.seed = seed
        self.spec = spec if spec is not None else FaultSpec()
        self.stats = FaultStats()
        self._rngs: Dict[str, np.random.Generator] = {}

    # -- the draw machinery ------------------------------------------------------
    def _rng(self, channel: str) -> np.random.Generator:
        rng = self._rngs.get(channel)
        if rng is None:
            rng = np.random.default_rng((self.seed, zlib.crc32(channel.encode("utf-8"))))
            self._rngs[channel] = rng
        return rng

    def _roll(self, channel: str, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return bool(self._rng(channel).random() < probability)

    # -- decision points ---------------------------------------------------------
    def link_down_time(self, link: str) -> float:
        """Seconds a transfer must wait out a link flap (0 = link up)."""
        if self._roll(f"flap:{link}", self.spec.link_flap):
            self.stats.link_flaps += 1
            return self.spec.flap_downtime
        return 0.0

    def latency_multiplier(self, link: str) -> float:
        """Duration multiplier for one data transfer (1 = no spike)."""
        if self._roll(f"spike:{link}", self.spec.latency_spike):
            self.stats.latency_spikes += 1
            return self.spec.spike_factor
        return 1.0

    def transfer_fails(self, link: str) -> bool:
        """Whether one data transfer dies mid-flight (must retransmit)."""
        if self._roll(f"xfer:{link}", self.spec.transfer_failure):
            self.stats.transfer_failures += 1
            return True
        return False

    def drop_control(self, kind: str) -> bool:
        """Whether one control packet (``kind`` = rts | cts) is lost."""
        if self._roll(f"ctl:{kind}", self.spec.control_drop):
            self.stats.control_drops += 1
            return True
        return False

    def launch_fails(self) -> bool:
        """Whether one fused-kernel launch fails at the driver."""
        if self._roll("launch", self.spec.launch_failure):
            self.stats.launch_failures += 1
            return True
        return False

    def straggler_multiplier(self) -> float:
        """Completion-delay multiplier for one fused request (1 = on time)."""
        if self._roll("straggler", self.spec.straggler):
            self.stats.stragglers += 1
            return self.spec.straggler_factor
        return 1.0

    def ring_rejects(self) -> bool:
        """Whether one scheduler enqueue is forced onto the fallback path."""
        if self._roll("ring", self.spec.ring_pressure):
            self.stats.ring_rejections += 1
            return True
        return False

    def describe(self) -> str:
        """One-line summary of the active fault kinds."""
        parts = [
            f"{name}={getattr(self.spec, name):g}"
            for name in _RETRIED_KINDS + _DELAY_KINDS
            if getattr(self.spec, name) > 0.0
        ]
        return f"FaultPlan(seed={self.seed}, {', '.join(parts) or 'inactive'})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


#: named chaos profiles for the CLI sweep and the benchmarks
FAULT_PRESETS: Dict[str, FaultSpec] = {
    "off": FaultSpec(),
    "light": FaultSpec(
        latency_spike=0.02,
        link_flap=0.01,
        transfer_failure=0.01,
        control_drop=0.02,
        launch_failure=0.01,
        straggler=0.02,
        ring_pressure=0.01,
    ),
    "moderate": FaultSpec(
        latency_spike=0.08,
        link_flap=0.04,
        transfer_failure=0.05,
        control_drop=0.08,
        launch_failure=0.05,
        straggler=0.08,
        ring_pressure=0.05,
    ),
    "heavy": FaultSpec(
        latency_spike=0.20,
        spike_factor=12.0,
        link_flap=0.10,
        flap_downtime=500e-6,
        transfer_failure=0.15,
        control_drop=0.20,
        launch_failure=0.15,
        straggler=0.20,
        straggler_factor=10.0,
        ring_pressure=0.15,
    ),
}
