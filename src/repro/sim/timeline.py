"""ASCII timeline rendering of trace spans (developer tooling).

Turns a :class:`~repro.sim.trace.Trace` into a per-category Gantt-style
text chart, so scheme behaviour is inspectable without a profiler:

    pack   |  ####      ##### |
    launch |##   ###          |
    comm   |      ============|

Used by the examples and handy when calibrating cost models; rendering
is deterministic so it is also asserted in tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .trace import Category, Trace

__all__ = ["render_timeline"]

_GLYPH = {
    Category.PACK: "#",
    Category.LAUNCH: "L",
    Category.SCHED: "s",
    Category.SYNC: "y",
    Category.COMM: "=",
    Category.OTHER: ".",
}


def render_timeline(
    trace: Trace,
    *,
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    categories: Optional[Iterable[Category]] = None,
) -> str:
    """Render ``trace`` as one text row per category.

    ``start``/``end`` default to the span extremes; spans shorter than
    a character cell still paint one glyph (so µs-scale costs remain
    visible on ms-scale charts).
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    spans = trace.spans
    if not spans:
        return "(empty trace)"
    lo = min(s.start for s in spans) if start is None else start
    hi = max(s.end for s in spans) if end is None else end
    if hi <= lo:
        hi = lo + 1e-9
    scale = width / (hi - lo)
    cats = list(categories) if categories is not None else [
        c for c in Category if any(s.category is c for s in spans)
    ]
    label_w = max(len(c.value) for c in cats) + 1

    rows = []
    for cat in cats:
        cells = [" "] * width
        for span in trace.iter_category(cat):
            a = max(0, min(width - 1, int((span.start - lo) * scale)))
            b = max(a, min(width - 1, int((span.end - lo) * scale - 1e-12)))
            for i in range(a, b + 1):
                cells[i] = _GLYPH[cat]
        rows.append(f"{cat.value:<{label_w}}|{''.join(cells)}|")
    header = (
        f"{'':<{label_w}} {lo * 1e6:.1f}us"
        f"{'':>{max(1, width - 16)}}{hi * 1e6:.1f}us"
    )
    return "\n".join([header] + rows)
