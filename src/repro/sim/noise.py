"""Optional execution-time noise (why the paper averages 500 runs).

Real GPU kernels and network transfers jitter — DVFS, ECC scrubbing,
fabric congestion — which is why §V-A averages 500 iterations.  The
simulator is noise-free by default (every assertion in the benchmark
suite relies on that), but attaching a :class:`NoiseModel` to a
:class:`~repro.sim.engine.Simulator` multiplies every GPU-operation and
wire duration by a seeded lognormal factor with unit mean, letting the
harness demonstrate variance, warm-up effects, and the value of
averaging — deterministically, given the seed.

Usage::

    sim = Simulator()
    sim.noise = NoiseModel(seed=7, cv=0.05)   # 5 % coefficient of variation
"""

from __future__ import annotations

import math
import zlib

import numpy as np

__all__ = ["NoiseModel"]


class NoiseModel:
    """Seeded multiplicative jitter with unit mean.

    Factors are drawn lognormal(µ, σ) with µ chosen so ``E[f] = 1``;
    ``cv`` is the coefficient of variation (0.05 = 5 % spread).
    Separate streams per ``channel`` keep GPU and network jitter
    independent yet reproducible.
    """

    def __init__(self, seed: int = 0, cv: float = 0.05):
        if cv < 0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv}")
        self.seed = seed
        self.cv = cv
        self._rngs: dict = {}
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = -sigma2 / 2.0  # unit mean

    def factor(self, channel: str = "default") -> float:
        """One jitter multiplier (> 0, mean 1) from ``channel``'s stream."""
        if self.cv == 0:
            return 1.0
        rng = self._rngs.get(channel)
        if rng is None:
            # crc32, not hash(): str hashing is salted by PYTHONHASHSEED,
            # which would break "deterministic given the seed" across
            # processes.
            rng = np.random.default_rng((self.seed, zlib.crc32(channel.encode("utf-8"))))
            self._rngs[channel] = rng
        return float(rng.lognormal(self._mu, self._sigma))
