"""Shared-resource primitives for the simulation kernel.

Three primitives cover every contention point in the reproduction:

* :class:`Resource` — a counted semaphore with FIFO queuing.  Used for
  GPU copy engines and the per-direction injection ports of network
  links.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects with
  blocking ``get``.  Used for message queues between simulated ranks and
  for the scheduler's work feed.
* :class:`Channel` — a convenience duplex pairing of two stores.

All waiters are served strictly FIFO, preserving the engine's
determinism guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "Channel"]


class Resource:
    """A counted, FIFO-fair resource (semaphore).

    Processes acquire with ``yield resource.request()`` and must release
    with ``resource.release()``.  The request event's value is the
    resource itself, which makes ``with``-less usage read naturally::

        yield link.request()
        try:
            yield sim.timeout(bytes / bw)
        finally:
            link.release()
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        # No per-event name: one of these is built per transfer, and the
        # f-string showed up in sweep profiles.
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one held slot, waking the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter: in_use stays put.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """FIFO store of arbitrary items with blocking ``get``.

    ``put`` never blocks unless a finite ``capacity`` was given, in
    which case the put event fires once space frees up.
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of currently stored items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; returns an event firing when accepted."""
        ev = Event(self.sim)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            # Space opened up: admit the oldest blocked putter, if any.
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed(pending)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop and return the oldest item, or ``None``."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            put_ev, pending = self._putters.popleft()
            self._items.append(pending)
            put_ev.succeed(pending)
        return item


class Channel:
    """A duplex message channel built from two stores.

    Endpoint ``a`` sends into the store endpoint ``b`` receives from and
    vice versa.  Used by tests and examples to wire toy protocols.
    """

    __slots__ = ("sim", "name", "_a_to_b", "_b_to_a")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._a_to_b = Store(sim, name=f"{name}:a->b")
        self._b_to_a = Store(sim, name=f"{name}:b->a")

    def endpoint_a(self) -> "ChannelEnd":
        """The ``a`` side of the channel."""
        return ChannelEnd(self._a_to_b, self._b_to_a)

    def endpoint_b(self) -> "ChannelEnd":
        """The ``b`` side of the channel."""
        return ChannelEnd(self._b_to_a, self._a_to_b)


class ChannelEnd:
    """One side of a :class:`Channel`."""

    __slots__ = ("_outbox", "_inbox")

    def __init__(self, outbox: Store, inbox: Store):
        self._outbox = outbox
        self._inbox = inbox

    def send(self, item: Any) -> Event:
        """Send ``item`` to the peer endpoint."""
        return self._outbox.put(item)

    def recv(self) -> Event:
        """Event firing with the next item from the peer endpoint."""
        return self._inbox.get()
