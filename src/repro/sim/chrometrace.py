"""Chrome-tracing export of cost traces.

Serializes one or more :class:`~repro.sim.trace.Trace` objects into the
Chrome Trace Event JSON format, viewable in ``chrome://tracing`` or
https://ui.perfetto.dev — each rank becomes a process row, each cost
category a thread row, each charged span a complete ('X') event.

Example::

    from repro.sim.chrometrace import export_chrome_trace
    export_chrome_trace({"rank0": r0.trace, "rank1": r1.trace},
                        "exchange.trace.json")
"""

from __future__ import annotations

import json
from typing import List, Mapping, Union

from .trace import Category, Trace

__all__ = ["chrome_trace_events", "export_chrome_trace"]

#: stable thread-row ordering for the category lanes
_TID = {cat: i for i, cat in enumerate(Category)}


def chrome_trace_events(traces: Mapping[str, Trace]) -> List[dict]:
    """Build the Chrome ``traceEvents`` list (times in µs)."""
    events: List[dict] = []
    for pid, (name, trace) in enumerate(traces.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
        for cat, tid in _TID.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": cat.value},
                }
            )
        for span in trace.spans:
            events.append(
                {
                    "name": span.label or span.category.value,
                    "cat": span.category.value,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": _TID[span.category],
                }
            )
    return events


def export_chrome_trace(
    traces: Union[Trace, Mapping[str, Trace]], path: str
) -> int:
    """Write a Chrome trace JSON file; returns the span-event count."""
    if isinstance(traces, Trace):
        traces = {"trace": traces}
    events = chrome_trace_events(traces)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return sum(1 for e in events if e.get("ph") == "X")
