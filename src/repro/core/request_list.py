"""The circular request list of the fusion framework (§IV-A1).

Each entry records exactly the fields the paper enumerates:

* **UID** — unique identifier handed back to the progress engine,
* **requested operation** — Packing, Unpacking, or DirectIPC (carried
  by the :class:`~repro.gpu.kernels.KernelOp`, which also holds the
  origin/target buffers and the cached data layout),
* **request status** — ``IDLE → PENDING → BUSY → COMPLETED``, written
  by the scheduler,
* **response status** — written *only by the GPU* (a thread block
  signals completion of its request), so the scheduler can detect
  completion by comparing the two statuses without any kernel-boundary
  synchronization (§IV-A2 ③).

The list is a fixed-capacity ring with Head/Tail indexes.  ``enqueue``
returns ``None`` when the ring is full — the scheduler then returns a
*negative UID* to the progress engine, which falls back to an alternate
scheme (§IV-A2 ①).  Completed entries are recycled by :meth:`reap`,
which advances Head past observed completions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..gpu.kernels import KernelOp
from ..sim.engine import Event, Simulator

__all__ = ["RequestStatus", "FusionRequest", "CircularRequestList"]


class RequestStatus(str, enum.Enum):
    """Lifecycle of a request-list entry."""

    IDLE = "idle"
    PENDING = "pending"
    BUSY = "busy"
    COMPLETED = "completed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class FusionRequest:
    """One occupied slot of the circular request list."""

    uid: int
    op: KernelOp
    slot: int
    sim: Simulator
    request_status: RequestStatus = RequestStatus.PENDING
    response_status: RequestStatus = RequestStatus.IDLE
    enqueued_at: float = 0.0
    completed_at: Optional[float] = None
    done_event: Event = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.done_event is None:
            self.done_event = Event(self.sim, name="fusion")

    @property
    def complete(self) -> bool:
        """Scheduler-side completion check: compare the two statuses."""
        return self.response_status is RequestStatus.COMPLETED

    def gpu_signal_complete(self) -> None:
        """Called at the request's simulated GPU completion instant.

        Models the thread block writing the response status; fires the
        ``done_event`` the progress engine's handle is waiting on.
        """
        self.response_status = RequestStatus.COMPLETED
        self.completed_at = self.sim.now
        if self.sim.obs.enabled:
            # The full request lifecycle (enqueue → ... → GPU complete)
            # as one span on the unified event stream.
            self.sim.obs.span(
                "request", f"uid{self.uid}", self.enqueued_at,
                self.completed_at, uid=self.uid, nbytes=self.op.nbytes,
            )
        if not self.done_event.triggered:
            self.done_event.succeed(self)


class CircularRequestList:
    """Fixed-capacity ring of :class:`FusionRequest` slots."""

    __slots__ = (
        "sim", "capacity", "_slots", "_head", "_tail", "_count",
        "_uids", "peak_occupancy", "rejections",
    )

    def __init__(self, sim: Simulator, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._slots: List[Optional[FusionRequest]] = [None] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self._uids = itertools.count()
        #: occupancy high-water mark (diagnostics)
        self.peak_occupancy = 0
        #: number of enqueues rejected because the ring was full
        self.rejections = 0

    # -- introspection -----------------------------------------------------------
    @property
    def head(self) -> int:
        """Index of the oldest occupied slot."""
        return self._head

    @property
    def tail(self) -> int:
        """Index where the next request will be inserted."""
        return self._tail

    @property
    def occupancy(self) -> int:
        """Number of occupied (non-IDLE) slots."""
        return self._count

    @property
    def is_full(self) -> bool:
        """True when no slot is available for enqueue."""
        return self._slots[self._tail] is not None

    def pending(self) -> List[FusionRequest]:
        """Occupied PENDING entries in FIFO (head→tail) order.

        Occupied slots are contiguous from Head (``reap`` only frees
        from the head), so the scan visits exactly ``occupancy`` slots —
        the scheduler calls this on every flush decision, and scanning
        the full 256-slot ring dominated its profile.
        """
        out: List[FusionRequest] = []
        slots = self._slots
        capacity = self.capacity
        i = self._head
        for _ in range(self._count):
            slot = slots[i]
            if slot is not None and slot.request_status is RequestStatus.PENDING:
                out.append(slot)
            i += 1
            if i == capacity:
                i = 0
        return out

    def pending_bytes(self) -> int:
        """Total payload bytes across PENDING entries."""
        return sum(r.op.nbytes for r in self.pending())

    # -- mutation -----------------------------------------------------------------
    def enqueue(self, op: KernelOp) -> Optional[FusionRequest]:
        """Insert at Tail; returns ``None`` when the ring is full."""
        if self._slots[self._tail] is not None:
            self.rejections += 1
            self.sim.obs.count("fusion_ring_rejections_total")
            return None
        request = FusionRequest(
            uid=next(self._uids),
            op=op,
            slot=self._tail,
            sim=self.sim,
            enqueued_at=self.sim.now,
        )
        self._slots[self._tail] = request
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        if self._count > self.peak_occupancy:
            self.peak_occupancy = self._count
        if self.sim.obs.enabled:
            self.sim.obs.gauge_set("fusion_ring_occupancy", self._count)
        return request

    def mark_busy(self, requests: List[FusionRequest]) -> None:
        """Transition entries to BUSY as they enter a fused kernel."""
        for request in requests:
            if request.request_status is not RequestStatus.PENDING:
                raise ValueError(f"uid {request.uid} is {request.request_status}, not pending")
            request.request_status = RequestStatus.BUSY

    def reap(self) -> int:
        """Recycle completed entries at the head; returns count reaped.

        Only contiguous completed entries starting at Head are freed
        (ring discipline); later completions wait for earlier ones to be
        observed, exactly like a hardware completion queue.
        """
        reaped = 0
        while True:
            slot = self._slots[self._head]
            if slot is None or not slot.complete:
                break
            slot.request_status = RequestStatus.IDLE
            self._slots[self._head] = None
            self._head = (self._head + 1) % self.capacity
            self._count -= 1
            reaped += 1
            if self._head == self._tail and self._slots[self._head] is None:
                break
        if reaped and self.sim.obs.enabled:
            self.sim.obs.gauge_set("fusion_ring_occupancy", self._count)
        return reaped

    def lookup(self, uid: int) -> Optional[FusionRequest]:
        """Find a live entry by UID (the §IV-A2 ④ status query)."""
        for slot in self._slots:
            if slot is not None and slot.uid == uid:
                return slot
        return None
