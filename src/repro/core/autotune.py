"""Threshold auto-tuning — operationalizing §IV-C and §VII.

The paper tunes the fusion threshold per system/workload by hand
("we use the above-mentioned heuristic method to find the optimal
threshold") and names model-based auto-tuning as future work.  This
module provides both halves:

* :func:`recommend_threshold` — the closed-form §IV-C principle: the
  smallest pooled byte count whose *estimated* fused execution time
  exceeds a multiple of the kernel-launch overhead, computed from the
  workload's block shape and the architecture cost model.  No runs
  needed.
* :func:`autotune_threshold` — the empirical method the paper actually
  used: run the bulk exchange across a candidate grid and return the
  argmin (plus the whole curve for reporting).

The ablation benchmark shows the closed-form recommendation lands
within a small factor of the empirical optimum — the paper's future
work, realized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..datatypes.layout import DataLayout
from ..gpu.archs import GPUArchitecture
from ..gpu.kernels import kernel_compute_time
from ..net.systems import SystemConfig
from ..workloads.base import WorkloadSpec

__all__ = ["recommend_threshold", "AutotuneResult", "autotune_threshold"]

KiB = 1024

#: default empirical candidate grid (the Fig. 8 sweep points)
DEFAULT_CANDIDATES = (
    32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB, 2048 * KiB,
)


def recommend_threshold(
    arch: GPUArchitecture,
    layout: DataLayout,
    *,
    launch_cost_multiple: float = 2.0,
    max_threshold: int = 4096 * KiB,
) -> int:
    """Closed-form threshold: pool messages until the fused kernel's
    estimated time exceeds ``launch_cost_multiple`` launch overheads.

    ``layout`` is one message's flattened layout; the returned value is
    a pooled byte count suitable for ``FusionPolicy.threshold_bytes``.
    """
    if layout.size <= 0:
        raise ValueError("layout must carry payload bytes")
    target = launch_cost_multiple * arch.kernel_launch_overhead
    for messages in range(1, 4097):
        pooled_bytes = messages * layout.size
        pooled_blocks = messages * layout.num_blocks
        estimate = kernel_compute_time(
            arch, pooled_bytes, pooled_blocks, layout.mean_block
        )
        if estimate >= target or pooled_bytes >= max_threshold:
            return min(pooled_bytes, max_threshold)
    return max_threshold


@dataclass
class AutotuneResult:
    """Outcome of an empirical threshold sweep."""

    best_threshold: int
    best_latency: float
    #: threshold -> mean latency (seconds) for every candidate
    curve: Dict[int, float] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable sweep summary."""
        lines = [
            f"{thr // KiB:>6} KB: {lat * 1e6:9.2f} us"
            + ("   <-- best" if thr == self.best_threshold else "")
            for thr, lat in sorted(self.curve.items())
        ]
        return "\n".join(lines)


def autotune_threshold(
    system: SystemConfig,
    spec: WorkloadSpec,
    *,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    nbuffers: int = 16,
    iterations: int = 2,
    warmup: int = 1,
) -> AutotuneResult:
    """Empirical §IV-C tuning: sweep candidates, return the argmin."""
    # Imported here: bench depends on core for the proposed scheme.
    from ..bench.runner import run_bulk_exchange
    from ..config import ExperimentConfig, HarnessCfg, SystemCfg, WorkloadCfg
    from ..net.systems import SYSTEMS
    from ..workloads import WORKLOADS

    if not candidates:
        raise ValueError("need at least one candidate threshold")

    base = None
    if system.name in SYSTEMS and spec.name in WORKLOADS:
        base = ExperimentConfig(
            system=SystemCfg(name=system.name),
            workload=WorkloadCfg(name=spec.name, dim=spec.dim, nbuffers=nbuffers),
            harness=HarnessCfg(
                iterations=iterations, warmup=warmup, data_plane=False
            ),
        )

    curve: Dict[int, float] = {}
    for threshold in candidates:
        if base is not None:
            cfg = base.with_overrides(
                {"scheme.fusion.threshold_bytes": threshold}
            )
            result = run_bulk_exchange(cfg)
        else:
            # Caller handed us out-of-registry system/workload objects the
            # config plane cannot name — go through the legacy shim.
            from .framework import KernelFusionScheme
            from .fusion_policy import FusionPolicy

            def factory(site, trace, _t=threshold):
                return KernelFusionScheme(
                    site, trace, policy=FusionPolicy(threshold_bytes=_t)
                )

            result = run_bulk_exchange(
                system, factory, spec, nbuffers=nbuffers,
                iterations=iterations, warmup=warmup, data_plane=False,
            )
        curve[threshold] = result.mean_latency
    best = min(curve, key=curve.get)
    return AutotuneResult(best_threshold=best, best_latency=curve[best], curve=curve)
