"""The fusion scheduler (§IV-A2).

One object per rank, co-located with the communication progress engine
(the configuration the paper implements and evaluates).  Its four
functions map directly onto the paper's Fig. 5 annotations:

① **enqueue** — take an operation from the progress engine, fill a
  request-list entry, return its UID (negative when the ring is full,
  signalling the engine to take its fallback path);
② **launch** — when the policy fires or a flush is requested, mark the
  pending run BUSY and launch one fused kernel over it;
③ **complete** — per-request completion arrives from the GPU via the
  response-status write (no CPU action needed at the kernel boundary);
④ **query** — the progress engine checks a UID by comparing request
  and response statuses (a host memory read, microseconds cheap).

The measured scheduling overhead of the real implementation is ~2 µs
per message (§V-B); ``enqueue_overhead`` + ``completion_overhead``
default to that figure.

Fault tolerance
---------------
Under an attached :class:`~repro.sim.faults.FaultPlan` a fused-kernel
launch can fail and individual requests can straggle.  The scheduler
survives both:

* a failed launch enters the **graceful-degradation ladder** —
  ① relaunch the same batch, ② split the batch in half and ladder each
  half, ③ degrade the lone request to a GPU-Sync-style
  launch-and-wait with capped exponential backoff;
* every successful launch arms a **per-request completion deadline**;
  requests still incomplete past it are relaunched solo (first
  completion wins — duplicate applies are suppressed by the fused
  kernel);
* the fault plan can also force request-list pressure, driving the
  §IV-A2 negative-UID fallback path.

Every recovery action is counted in :class:`SchedulerStats` and its CPU
time charged to the :class:`~repro.sim.trace.Trace`, so Fig.-11-style
breakdowns expose the cost of recovery.  None of these paths exist in
a fault-free run — the clean timeline is bit-identical to the
pre-fault-injection implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..gpu.coop import FusionPlan
from ..net.topology import RankSite
from ..gpu.kernels import KernelOp
from ..sim.engine import us
from ..sim.faults import FaultError
from ..sim.trace import Category, Trace
from .fused_kernel import launch_fused_kernel
from .fusion_policy import FusionPolicy
from .request_list import CircularRequestList, FusionRequest

__all__ = ["SchedulerStats", "FusionScheduler"]

#: hard cap on degraded single-request launch attempts — diagnostic
#: backstop, unreachable for valid fault specs
MAX_LAUNCH_ATTEMPTS = 10_000
#: degraded-launch backoff ceiling, in multiples of the launch overhead
LAUNCH_BACKOFF_CAP_FACTOR = 64
#: deadline watchdog escalation rounds before it just waits completion out
MAX_DEADLINE_ROUNDS = 8


@dataclass
class SchedulerStats:
    """Counters the benchmarks and ablations report."""

    enqueued: int = 0
    launches: int = 0
    fused_requests: int = 0
    flush_launches: int = 0
    threshold_launches: int = 0
    fallbacks: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    #: fused-kernel launches that failed (fault injection)
    launch_failures: int = 0
    #: ladder rung ①: same-batch relaunches after a failed launch
    relaunches: int = 0
    #: ladder rung ②: batch halvings after a repeated failure
    batch_splits: int = 0
    #: ladder rung ③: single requests degraded to launch-and-wait
    sync_fallbacks: int = 0
    #: requests caught incomplete past their completion deadline
    deadline_hits: int = 0
    #: solo relaunches issued by the deadline watchdog
    deadline_relaunches: int = 0

    @property
    def mean_batch(self) -> float:
        """Average number of requests per fused kernel."""
        return (
            sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0
        )

    @property
    def recoveries(self) -> int:
        """Total recovery actions the scheduler took (any ladder rung,
        deadline relaunch, or ring-full fallback)."""
        return (
            self.relaunches
            + self.batch_splits
            + self.sync_fallbacks
            + self.deadline_relaunches
            + self.fallbacks
        )


class FusionScheduler:
    """Scheduler + circular request list for one rank."""

    def __init__(
        self,
        site: RankSite,
        trace: Trace,
        policy: Optional[FusionPolicy] = None,
        *,
        capacity: int = 256,
        enqueue_overhead: float = us(1.2),
        completion_overhead: float = us(0.8),
        grid_blocks: Optional[int] = None,
        deadline_factor: float = 4.0,
        deadline_slack: float = us(50.0),
    ):
        self.site = site
        self.sim = site.device.sim
        self.trace = trace
        self.policy = policy if policy is not None else FusionPolicy()
        self.request_list = CircularRequestList(self.sim, capacity=capacity)
        self.enqueue_overhead = enqueue_overhead
        self.completion_overhead = completion_overhead
        self.grid_blocks = grid_blocks
        #: completion deadline = factor × expected batch duration + slack
        #: (armed per launch, only under fault injection)
        self.deadline_factor = deadline_factor
        self.deadline_slack = deadline_slack
        self.stream = site.device.default_stream
        self.stats = SchedulerStats()
        #: times of the two most recent enqueues (drive the idle-flush
        #: burst heuristic)
        self.last_enqueue_at = -float("inf")
        self.prev_enqueue_at = -float("inf")
        #: plans of every fused kernel launched (diagnostics/tests)
        self.plans: List[FusionPlan] = []

    # -- ① enqueue ---------------------------------------------------------------
    def enqueue(self, op: KernelOp, label: str = ""):
        """Generator: enqueue ``op``; returns the request or ``None``.

        ``None`` is the negative-UID answer — the ring is full and the
        progress engine must fall back (§IV-A2 ①).
        """
        yield from self._charge_sched(self.enqueue_overhead, label)
        self.request_list.reap()
        self.prev_enqueue_at = self.last_enqueue_at
        self.last_enqueue_at = self.sim.now
        faults = self.sim.faults
        obs = self.sim.obs
        if faults is not None and faults.ring_rejects():
            # Forced request-list pressure: behave exactly as if the
            # ring were full, driving the §IV-A2 negative-UID fallback.
            self.stats.fallbacks += 1
            obs.count("sched_ring_fallbacks_total")
            return None
        request = self.request_list.enqueue(op)
        if request is None:
            self.stats.fallbacks += 1
            obs.count("sched_ring_fallbacks_total")
            return None
        self.stats.enqueued += 1
        if obs.enabled:
            obs.count("fusion_enqueued_total")
            obs.instant(
                "fusion", "enqueue", self.sim.now,
                uid=request.uid, nbytes=op.nbytes, label=label,
            )
        # Scenario 2 of §IV-C: enough pooled work to out-run the launch
        # overhead → fuse and go.
        pending = self.request_list.pending()
        if self.policy.should_launch([r.op for r in pending]):
            self.stats.threshold_launches += 1
            obs.count("fusion_launches_total", reason="threshold")
            yield from self._launch(pending, label)
        return request

    # -- ② launch ------------------------------------------------------------------
    def flush(self, min_idle: float = 0.0):
        """Generator: scenario-1 launch — the engine hit a sync point.

        ``min_idle`` implements "the progress engine has no more
        operations to request": during a *burst* of enqueues (the last
        two arrived within ``min_idle`` of each other) pending requests
        are held while the newest is younger than ``min_idle``, so a
        progress loop that polls every microsecond does not defeat the
        fusion threshold by flushing each request the moment it is
        enqueued.  A *sporadic* request (no recent predecessor — e.g. a
        solver exchanging one buffer per iteration) launches at the
        first sync point with no linger at all.  Blocking call-sites
        (``MPI_Pack``, scheme ``wait``) pass 0 to force an immediate
        launch.
        """
        pending = self.request_list.pending()
        if not pending:
            return
        if min_idle > 0:
            burst = (self.last_enqueue_at - self.prev_enqueue_at) <= min_idle
            fresh = (self.sim.now - self.last_enqueue_at) < min_idle
            if burst and fresh:
                return
        self.stats.flush_launches += 1
        self.sim.obs.count("fusion_launches_total", reason="flush")
        yield from self._launch(pending, "flush")

    def _launch(self, pending: List[FusionRequest], label: str):
        self.request_list.mark_busy(pending)
        yield from self._launch_batch(list(pending), label)
        # Completion-side bookkeeping (dequeue/reap) for the batch.
        yield from self._charge_sched(self.completion_overhead, label)

    def _launch_batch(self, batch: List[FusionRequest], label: str):
        """Launch ``batch``, walking the degradation ladder on failure."""
        arch = self.site.device.arch
        faults = self.sim.faults
        relaunched = False
        while True:
            # One launch overhead for the whole batch — the entire point.
            start = self.sim.now
            yield self.sim.timeout(arch.kernel_launch_overhead)
            self.trace.charge(Category.LAUNCH, start, self.sim.now, label=label)
            if faults is not None and faults.launch_fails():
                self.stats.launch_failures += 1
                self.sim.obs.count("sched_launch_failures_total")
                if not relaunched:
                    # Rung ①: try the exact same batch once more.
                    relaunched = True
                    self.stats.relaunches += 1
                    self.sim.obs.count("sched_relaunches_total")
                    label = "relaunch"
                    continue
                if len(batch) > 1:
                    # Rung ②: halve the batch; each half re-enters the
                    # ladder with its relaunch credit restored.
                    self.stats.batch_splits += 1
                    self.sim.obs.count("sched_batch_splits_total")
                    mid = len(batch) // 2
                    yield from self._launch_batch(batch[:mid], "split")
                    yield from self._launch_batch(batch[mid:], "split")
                    return
                # Rung ③: one stubborn request — degrade to a
                # GPU-Sync-style launch-and-wait with backoff.
                yield from self._degraded_single(batch[0])
                return
            self._commit_launch(batch)
            return

    def _commit_launch(self, batch: List[FusionRequest]) -> None:
        arch = self.site.device.arch
        plan = launch_fused_kernel(
            self.sim, self.stream, arch, batch, grid_blocks=self.grid_blocks
        )
        self.plans.append(plan)
        self.stats.launches += 1
        self.stats.fused_requests += len(batch)
        self.stats.batch_sizes.append(len(batch))
        obs = self.sim.obs
        if obs.enabled:
            now = self.sim.now
            obs.count("fusion_fused_requests_total", len(batch))
            obs.observe("fusion_batch_size", len(batch))
            for request in batch:
                obs.observe(
                    "fusion_queue_latency_seconds", now - request.enqueued_at
                )
                obs.span(
                    "fusion", "queued", request.enqueued_at, now,
                    uid=request.uid,
                )
        self._arm_deadline(batch, plan)

    def _degraded_single(self, request: FusionRequest):
        """Ladder rung ③: launch one request and wait it out.

        Retries with capped exponential backoff until the launch
        sticks, then blocks until the request completes — the GPU-Sync
        semantics the paper's framework falls back to when fusion
        cannot make progress.
        """
        arch = self.site.device.arch
        faults = self.sim.faults
        self.stats.sync_fallbacks += 1
        self.sim.obs.count("sched_sync_fallbacks_total")
        backoff = arch.kernel_launch_overhead
        attempts = 0
        while True:
            start = self.sim.now
            yield self.sim.timeout(arch.kernel_launch_overhead)
            self.trace.charge(Category.LAUNCH, start, self.sim.now, label="degraded")
            if faults is None or not faults.launch_fails():
                break
            self.stats.launch_failures += 1
            self.sim.obs.count("sched_launch_failures_total")
            attempts += 1
            if attempts >= MAX_LAUNCH_ATTEMPTS:
                raise FaultError(
                    f"degraded launch of request uid={request.uid} still "
                    f"failing after {attempts} attempts"
                )
            start = self.sim.now
            yield self.sim.timeout(backoff)
            self.trace.charge(Category.SYNC, start, self.sim.now, label="backoff")
            backoff = min(
                backoff * 2.0,
                LAUNCH_BACKOFF_CAP_FACTOR * arch.kernel_launch_overhead,
            )
        self._commit_launch([request])
        start = self.sim.now
        yield request.done_event
        self.trace.charge(Category.SYNC, start, self.sim.now, label="degraded-sync")

    def _arm_deadline(self, batch: List[FusionRequest], plan: FusionPlan) -> None:
        """Watch ``batch`` for stragglers past a completion deadline.

        Armed only under fault injection; fault-free runs keep their
        exact event timeline.  Requests still incomplete at the
        deadline are relaunched solo; whichever copy finishes first
        wins (the fused kernel suppresses duplicate applies), so a
        straggler costs time, never correctness.
        """
        if self.sim.faults is None:
            return
        arch = self.site.device.arch
        deadline = (
            self.deadline_factor
            * max(plan.total_duration, arch.kernel_launch_overhead)
            + self.deadline_slack
        )

        def watchdog():
            wait_for = deadline
            rounds = 0
            while True:
                waiting = [r.done_event for r in batch if not r.complete]
                if not waiting:
                    return
                yield self.sim.any_of(
                    [self.sim.all_of(waiting), self.sim.timeout(wait_for)]
                )
                late = [r for r in batch if not r.complete]
                if not late:
                    return
                self.stats.deadline_hits += len(late)
                self.sim.obs.count("sched_deadline_hits_total", len(late))
                rounds += 1
                if rounds > MAX_DEADLINE_ROUNDS:
                    # Escalation exhausted — the relaunched copies are
                    # in flight; just wait them out.
                    yield self.sim.all_of([r.done_event for r in late])
                    return
                self.stats.deadline_relaunches += len(late)
                self.sim.obs.count("sched_deadline_relaunches_total", len(late))
                start = self.sim.now
                yield self.sim.timeout(arch.kernel_launch_overhead)
                self.trace.charge(
                    Category.LAUNCH, start, self.sim.now, label="deadline-relaunch"
                )
                # Relaunch the stragglers as their own fused kernel; do
                # not count it in launches/batch_sizes — recovery noise
                # would distort the mean-batch ablation metric.
                self.plans.append(
                    launch_fused_kernel(
                        self.sim, self.stream, arch, late,
                        grid_blocks=self.grid_blocks,
                    )
                )
                wait_for = min(wait_for * 2.0, 16.0 * deadline)

        self.sim.process(watchdog(), name="fusion-deadline")

    # -- ④ query --------------------------------------------------------------------
    def query(self, uid: int) -> bool:
        """Progress-engine status check by UID (host memory read)."""
        request = self.request_list.lookup(uid)
        if request is None:
            # Entry already reaped — it must have completed.
            return True
        return request.complete

    @property
    def pending_count(self) -> int:
        """Requests enqueued and not yet launched."""
        return len(self.request_list.pending())

    def _charge_sched(self, duration: float, label: str):
        if duration > 0:
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.trace.charge(Category.SCHED, start, self.sim.now, label=label)
