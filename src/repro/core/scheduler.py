"""The fusion scheduler (§IV-A2).

One object per rank, co-located with the communication progress engine
(the configuration the paper implements and evaluates).  Its four
functions map directly onto the paper's Fig. 5 annotations:

① **enqueue** — take an operation from the progress engine, fill a
  request-list entry, return its UID (negative when the ring is full,
  signalling the engine to take its fallback path);
② **launch** — when the policy fires or a flush is requested, mark the
  pending run BUSY and launch one fused kernel over it;
③ **complete** — per-request completion arrives from the GPU via the
  response-status write (no CPU action needed at the kernel boundary);
④ **query** — the progress engine checks a UID by comparing request
  and response statuses (a host memory read, microseconds cheap).

The measured scheduling overhead of the real implementation is ~2 µs
per message (§V-B); ``enqueue_overhead`` + ``completion_overhead``
default to that figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..gpu.coop import FusionPlan
from ..net.topology import RankSite
from ..gpu.kernels import KernelOp
from ..sim.engine import us
from ..sim.trace import Category, Trace
from .fused_kernel import launch_fused_kernel
from .fusion_policy import FusionPolicy
from .request_list import CircularRequestList, FusionRequest

__all__ = ["SchedulerStats", "FusionScheduler"]


@dataclass
class SchedulerStats:
    """Counters the benchmarks and ablations report."""

    enqueued: int = 0
    launches: int = 0
    fused_requests: int = 0
    flush_launches: int = 0
    threshold_launches: int = 0
    fallbacks: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        """Average number of requests per fused kernel."""
        return (
            sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0
        )


class FusionScheduler:
    """Scheduler + circular request list for one rank."""

    def __init__(
        self,
        site: RankSite,
        trace: Trace,
        policy: Optional[FusionPolicy] = None,
        *,
        capacity: int = 256,
        enqueue_overhead: float = us(1.2),
        completion_overhead: float = us(0.8),
        grid_blocks: Optional[int] = None,
    ):
        self.site = site
        self.sim = site.device.sim
        self.trace = trace
        self.policy = policy if policy is not None else FusionPolicy()
        self.request_list = CircularRequestList(self.sim, capacity=capacity)
        self.enqueue_overhead = enqueue_overhead
        self.completion_overhead = completion_overhead
        self.grid_blocks = grid_blocks
        self.stream = site.device.default_stream
        self.stats = SchedulerStats()
        #: times of the two most recent enqueues (drive the idle-flush
        #: burst heuristic)
        self.last_enqueue_at = -float("inf")
        self.prev_enqueue_at = -float("inf")
        #: plans of every fused kernel launched (diagnostics/tests)
        self.plans: List[FusionPlan] = []

    # -- ① enqueue ---------------------------------------------------------------
    def enqueue(self, op: KernelOp, label: str = ""):
        """Generator: enqueue ``op``; returns the request or ``None``.

        ``None`` is the negative-UID answer — the ring is full and the
        progress engine must fall back (§IV-A2 ①).
        """
        yield from self._charge_sched(self.enqueue_overhead, label)
        self.request_list.reap()
        self.prev_enqueue_at = self.last_enqueue_at
        self.last_enqueue_at = self.sim.now
        request = self.request_list.enqueue(op)
        if request is None:
            self.stats.fallbacks += 1
            return None
        self.stats.enqueued += 1
        # Scenario 2 of §IV-C: enough pooled work to out-run the launch
        # overhead → fuse and go.
        pending = self.request_list.pending()
        if self.policy.should_launch([r.op for r in pending]):
            self.stats.threshold_launches += 1
            yield from self._launch(pending, label)
        return request

    # -- ② launch ------------------------------------------------------------------
    def flush(self, min_idle: float = 0.0):
        """Generator: scenario-1 launch — the engine hit a sync point.

        ``min_idle`` implements "the progress engine has no more
        operations to request": during a *burst* of enqueues (the last
        two arrived within ``min_idle`` of each other) pending requests
        are held while the newest is younger than ``min_idle``, so a
        progress loop that polls every microsecond does not defeat the
        fusion threshold by flushing each request the moment it is
        enqueued.  A *sporadic* request (no recent predecessor — e.g. a
        solver exchanging one buffer per iteration) launches at the
        first sync point with no linger at all.  Blocking call-sites
        (``MPI_Pack``, scheme ``wait``) pass 0 to force an immediate
        launch.
        """
        pending = self.request_list.pending()
        if not pending:
            return
        if min_idle > 0:
            burst = (self.last_enqueue_at - self.prev_enqueue_at) <= min_idle
            fresh = (self.sim.now - self.last_enqueue_at) < min_idle
            if burst and fresh:
                return
        self.stats.flush_launches += 1
        yield from self._launch(pending, "flush")

    def _launch(self, pending: List[FusionRequest], label: str):
        self.request_list.mark_busy(pending)
        arch = self.site.device.arch
        # One launch overhead for the whole batch — the entire point.
        start = self.sim.now
        yield self.sim.timeout(arch.kernel_launch_overhead)
        self.trace.charge(Category.LAUNCH, start, self.sim.now, label=label)
        plan = launch_fused_kernel(
            self.sim, self.stream, arch, pending, grid_blocks=self.grid_blocks
        )
        self.plans.append(plan)
        self.stats.launches += 1
        self.stats.fused_requests += len(pending)
        self.stats.batch_sizes.append(len(pending))
        # Completion-side bookkeeping (dequeue/reap) for the batch.
        yield from self._charge_sched(self.completion_overhead, label)

    # -- ④ query --------------------------------------------------------------------
    def query(self, uid: int) -> bool:
        """Progress-engine status check by UID (host memory read)."""
        request = self.request_list.lookup(uid)
        if request is None:
            # Entry already reaped — it must have completed.
            return True
        return request.complete

    @property
    def pending_count(self) -> int:
        """Requests enqueued and not yet launched."""
        return len(self.request_list.pending())

    def _charge_sched(self, duration: float, label: str):
        if duration > 0:
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.trace.charge(Category.SCHED, start, self.sim.now, label=label)
