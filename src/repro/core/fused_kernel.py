"""Fused-kernel launch: one grid, many requests, per-request completion.

Implements §IV-A3 + Fig. 6: the fused kernel partitions its thread
blocks among the batch's requests with the cooperative-group
partitioner (:func:`repro.gpu.coop.partition`); each group performs its
request's operation (pack / unpack / DirectIPC device function),
synchronizes *within the group only*, and signals completion by writing
the request's response status — there is no synchronization at the
kernel boundary.

In the simulation this becomes: the stream is occupied for the plan's
total duration (max over groups), while each request's byte movement
and response-status write happen at its own group's completion offset.
The progress engine can therefore act on early requests (e.g. put their
packed bytes on the wire) while later groups are still running — the
overlap visible in Fig. 7.
"""

from __future__ import annotations

from typing import Sequence

from ..gpu.archs import GPUArchitecture
from ..gpu.coop import FusionPlan, partition
from ..gpu.stream import Stream
from ..sim.engine import Event, Simulator
from .request_list import FusionRequest

__all__ = ["launch_fused_kernel"]


def launch_fused_kernel(
    sim: Simulator,
    stream: Stream,
    arch: GPUArchitecture,
    requests: Sequence[FusionRequest],
    grid_blocks: int | None = None,
) -> FusionPlan:
    """Execute one fused kernel over ``requests`` on ``stream``.

    Returns the priced :class:`FusionPlan`.  Side effects, all at
    simulated GPU time:

    * the stream is busy from kernel start for ``plan.total_duration``,
    * each request's ``op.apply()`` runs at its group's completion
      offset and its ``gpu_signal_complete()`` fires then (response
      status write + ``done_event``).
    """
    if not requests:
        raise ValueError("cannot launch an empty fused kernel")
    plan = partition(arch, [r.op for r in requests], grid_blocks=grid_blocks)

    # Kernel start respects stream ordering and device occupancy.
    start = stream.next_start()
    # Occupy the stream for the full fused duration (no per-request
    # apply here — per-request timing is handled below).
    stream.enqueue_callable(plan.total_duration, None, value=plan)

    faults = sim.faults
    for request, part in zip(requests, plan.requests):
        delay = (start + part.completion_offset) - sim.now
        if faults is not None:
            # A straggling thread-block group stretches this request's
            # completion without delaying its batch-mates.
            delay *= faults.straggler_multiplier()
        trigger = sim.timeout(delay)

        def _complete(_ev: Event, req: FusionRequest = request) -> None:
            if req.complete:
                # Already finished by another copy (deadline-watchdog
                # relaunch racing a straggler).  Applying again could
                # write into a staging buffer that has since been
                # released and reused — first completion wins.
                return
            req.op.apply()
            req.gpu_signal_complete()

        trigger.add_callback(_complete)
    return plan
