"""The proposed scheme: dynamic kernel fusion as a packing scheme.

:class:`KernelFusionScheme` is the paper's contribution packaged behind
the common :class:`~repro.schemes.base.PackingScheme` interface, so the
unchanged MPI runtime can run it against every baseline:

* ``submit`` enqueues the operation with the
  :class:`~repro.core.scheduler.FusionScheduler` (~2 µs of scheduling
  per message, §V-B) and returns immediately — communication is
  *delayed*, not blocked (§IV-B1);
* the scheduler launches a fused kernel when the §IV-C policy fires or
  when ``flush`` (the progress engine's sync point) arrives;
* completion is observed by comparing request/response statuses — a
  host memory read per poll, no ``cudaStreamSynchronize`` ever;
* when the circular request list is full, the negative-UID fallback
  routes the operation through a configurable alternate scheme
  (GPU-Sync by default), exactly as §IV-A2 prescribes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..gpu.kernels import KernelOp
from ..net.topology import RankSite
from ..sim.engine import us
from ..sim.trace import Category, Trace
from ..schemes.base import OpHandle, PackingScheme, SchemeCapabilities, SchemeGen
from ..schemes.gpu_sync import GPUSyncScheme
from .fusion_policy import FusionPolicy
from .scheduler import FusionScheduler

__all__ = ["KernelFusionScheme"]


class KernelFusionScheme(PackingScheme):
    """Proposed: adaptive hybrid approach with dynamic kernel fusion."""

    name = "Proposed"
    capabilities = SchemeCapabilities(
        layout_cache=True,
        driver_overhead="low",
        latency="low",
        overlap="high",
    )

    def __init__(
        self,
        site: RankSite,
        trace: Optional[Trace] = None,
        *,
        policy: Optional[FusionPolicy] = None,
        capacity: int = 256,
        flag_poll_cost: float = us(0.05),
        poll_interval: float = us(1.0),
        idle_linger: float = us(6.0),
        fallback: Optional[PackingScheme] = None,
        name: Optional[str] = None,
    ):
        super().__init__(site, trace)
        self.scheduler = FusionScheduler(site, self.trace, policy, capacity=capacity)
        self.flag_poll_cost = flag_poll_cost
        self.poll_interval = poll_interval
        #: how long the progress engine must be enqueue-idle before a
        #: sync-point flush launches a below-threshold batch (§IV-C
        #: scenario 1: "no more operations to request")
        self.idle_linger = idle_linger
        self.fallback = fallback if fallback is not None else GPUSyncScheme(site, self.trace)
        self.fallback_count = 0
        if name is not None:
            self.name = name

    @property
    def policy(self) -> FusionPolicy:
        """The active launch policy."""
        return self.scheduler.policy

    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        request = yield from self.scheduler.enqueue(op, label)
        if request is None:
            # Negative UID: request list full → fallback path (§IV-A2).
            self.fallback_count += 1
            handle = yield from self.fallback.submit(op, label=label)
            handle.uid = -1
            return handle
        # Completion is discovered by the scheduler's response-flag
        # polling: half a poll tick plus one host flag read per
        # outstanding request — microseconds cheaper than CUDA event
        # queries, the design's whole advantage on the sync path.
        visible = self._discovered(
            request.done_event,
            lambda: 0.5 * self.poll_interval
            + len(self.outstanding) * self.flag_poll_cost,
        )
        return self._handle(op, visible, uid=request.uid, label=label)

    def flush(self) -> SchemeGen:
        """Progress-engine sync point: launch once enqueues go idle."""
        yield from self.scheduler.flush(min_idle=self.idle_linger)

    def wait(self, handles: Sequence[OpHandle]) -> SchemeGen:
        """Flush, then poll response flags until every handle completes.

        Blocking semantics: the batch launches immediately, idle or not.
        """
        yield from self.scheduler.flush()
        while True:
            pending = [h for h in handles if not h.done]
            if not pending:
                return
            # One response-status read per outstanding request.
            yield from self._charge(
                Category.SYNC, self.flag_poll_cost * len(pending), "flag-poll"
            )
            pending = [h for h in handles if not h.done]
            if not pending:
                return
            start = self.sim.now
            watch = [h.done_event for h in pending]
            watch.append(self.sim.timeout(self.poll_interval))
            yield self.sim.any_of(watch)
            self.trace.charge(Category.PACK, start, self.sim.now, label="wait")

    def progress_tick(self) -> SchemeGen:
        """One response-flag read per outstanding request.

        A host memory read per request — microseconds cheaper than the
        CUDA event queries of GPU-Async, which is why the proposed
        design's Sync. bar in Fig. 11 is near-invisible.
        """
        if self.outstanding:
            yield from self._charge(
                Category.SYNC,
                self.flag_poll_cost * len(self.outstanding),
                "flag-poll",
            )
