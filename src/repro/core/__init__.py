"""The paper's contribution: the dynamic kernel fusion framework.

Circular request list (§IV-A1), scheduler (§IV-A2), fused-kernel launch
with cooperative-group partitioning (§IV-A3), the §IV-C launch policy,
and the packing-scheme adapter that plugs it into the MPI runtime.
"""

from .autotune import AutotuneResult, autotune_threshold, recommend_threshold
from .framework import KernelFusionScheme
from .fused_kernel import launch_fused_kernel
from .fusion_policy import FusionPolicy, ModelBasedPolicy
from .request_list import CircularRequestList, FusionRequest, RequestStatus
from .scheduler import FusionScheduler, SchedulerStats

__all__ = [
    "KernelFusionScheme",
    "recommend_threshold",
    "autotune_threshold",
    "AutotuneResult",
    "FusionScheduler",
    "SchedulerStats",
    "FusionPolicy",
    "ModelBasedPolicy",
    "CircularRequestList",
    "FusionRequest",
    "RequestStatus",
    "launch_fused_kernel",
]
