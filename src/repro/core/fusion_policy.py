"""When to launch the fused kernel (§IV-C).

The scheduler launches in two scenarios:

1. the progress engine reached a synchronization point (``MPI_Waitall``)
   and requests an immediate flush — handled by the scheduler's
   ``flush``;
2. the pending batch has "enough work to do, e.g., the execution time
   can be longer than the kernel launch overhead" — decided here.

The paper uses a byte threshold found empirically (Fig. 8): too low and
the design is *under-fused* (frequent launches, launch-bound); too high
and it is *over-fused* (communication delayed past the overlap window).
Around **512 KB** of pooled data was best on both test systems.

:class:`FusionPolicy` implements that heuristic plus a request-count
cap (the fused grid serves at most ``max_batch_requests`` groups) and
an optional model-based mode (the paper's stated future work): launch
when the *estimated fused execution time* exceeds a multiple of the
launch overhead, computed from the cost model instead of a byte count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..gpu.archs import GPUArchitecture
from ..gpu.kernels import KernelOp, kernel_compute_time

__all__ = ["FusionPolicy", "ModelBasedPolicy"]

KiB = 1024


@dataclass
class FusionPolicy:
    """Threshold heuristic of §IV-C.

    ``threshold_bytes`` — launch when pooled pending payload reaches
    this (the Fig. 8 sweep axis; paper default ~512 KB).
    ``max_batch_requests`` — launch when this many requests are pending
    regardless of bytes (bounds the fused grid's partition count).
    ``min_batch_requests`` — never auto-launch below this count
    (default 1: a single request big enough to beat the threshold is
    worth launching on its own; raise it to force batching in
    ablations).
    """

    threshold_bytes: int = 512 * KiB
    max_batch_requests: int = 64
    min_batch_requests: int = 1

    def should_launch(self, pending: Sequence[KernelOp]) -> bool:
        """Scenario-2 decision: is the pending batch worth a launch now?"""
        if len(pending) >= self.max_batch_requests:
            return True
        if len(pending) < self.min_batch_requests:
            return False
        return sum(op.nbytes for op in pending) >= self.threshold_bytes

    def describe(self) -> str:
        """Summary string for benchmark headers."""
        return f"threshold={self.threshold_bytes // KiB}KB, max_batch={self.max_batch_requests}"


@dataclass
class ModelBasedPolicy(FusionPolicy):
    """Model-based launch criterion (the paper's stated future work).

    Launches when the *estimated* fused-kernel execution time exceeds
    ``launch_cost_multiple`` × the kernel launch overhead — a direct
    encoding of the §IV-C principle ("make sure the running time of the
    fused kernel is longer than the kernel launch overhead") with no
    per-system byte-threshold tuning.  Requires the architecture to
    price the estimate.
    """

    arch: Optional[GPUArchitecture] = None
    launch_cost_multiple: float = 2.0

    def should_launch(self, pending: Sequence[KernelOp]) -> bool:
        if self.arch is None:
            raise ValueError("ModelBasedPolicy requires an architecture")
        if len(pending) >= self.max_batch_requests:
            return True
        if len(pending) < self.min_batch_requests:
            return False
        total_bytes = sum(op.nbytes for op in pending)
        total_blocks = sum(op.num_blocks for op in pending)
        if total_bytes == 0:
            return False
        mean_block = total_bytes / max(1, total_blocks)
        estimate = kernel_compute_time(self.arch, total_bytes, total_blocks, mean_block)
        return estimate >= self.launch_cost_multiple * self.arch.kernel_launch_overhead
