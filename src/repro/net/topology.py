"""Cluster topology: nodes, GPUs, and the links between them.

A :class:`Cluster` instantiates one :class:`~repro.gpu.device.GPUDevice`
per MPI rank (the paper's experiments run one rank per GPU) and wires
the Table II links between them:

* ranks on the same node talk over the node's GPU–GPU link (NVLink-2),
* ranks on different nodes talk over per-node-pair inter-node links
  (GPUDirect-RDMA-capable InfiniBand),
* each rank's host path (staging, GDRCopy) uses the node's CPU–GPU
  link.

The benchmark experiments use ``nodes=2, ranks_per_node=1`` — "bulk
non-contiguous inter-node data transfer between two GPU nodes" — but
the topology supports arbitrary shapes for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..gpu.device import GPUDevice
from ..sim.engine import Simulator
from .link import Link
from .systems import SystemConfig

__all__ = ["RankSite", "Cluster"]


@dataclass
class RankSite:
    """Where one MPI rank lives: its node, GPU, and host links."""

    rank: int
    node: int
    device: GPUDevice
    #: CPU <-> GPU link of this rank's node (staging / GDRCopy path)
    cpu_gpu_link: Link


class Cluster:
    """A set of GPU nodes connected per a :class:`SystemConfig`."""

    def __init__(
        self,
        sim: Simulator,
        system: SystemConfig,
        nodes: int = 2,
        ranks_per_node: int = 1,
        functional: bool = True,
    ):
        if nodes < 1 or ranks_per_node < 1:
            raise ValueError("need at least one node and one rank per node")
        if ranks_per_node > system.gpus_per_node:
            raise ValueError(
                f"{system.name} has {system.gpus_per_node} GPUs per node; "
                f"cannot place {ranks_per_node} ranks"
            )
        self.sim = sim
        self.system = system
        self.nodes = nodes
        self.ranks_per_node = ranks_per_node
        #: when False, devices price operations but move no bytes
        self.functional = functional

        self.sites: List[RankSite] = []
        self._node_cpu_gpu: List[Link] = []
        self._node_gpu_gpu: List[Link] = []
        for node in range(nodes):
            self._node_cpu_gpu.append(
                Link(sim, system.cpu_gpu, name=f"n{node}:{system.cpu_gpu.name}")
            )
            self._node_gpu_gpu.append(
                Link(sim, system.gpu_gpu, name=f"n{node}:{system.gpu_gpu.name}")
            )
        for rank in range(nodes * ranks_per_node):
            node = rank // ranks_per_node
            device = GPUDevice(
                sim,
                arch=system.gpu_arch,
                name=f"r{rank}:{system.gpu_arch.name}",
                functional=functional,
            )
            self.sites.append(
                RankSite(
                    rank=rank,
                    node=node,
                    device=device,
                    cpu_gpu_link=self._node_cpu_gpu[node],
                )
            )
        self._internode: Dict[Tuple[int, int], Link] = {}

    @property
    def size(self) -> int:
        """Total number of ranks."""
        return len(self.sites)

    def site(self, rank: int) -> RankSite:
        """The placement record of ``rank``."""
        return self.sites[rank]

    def device(self, rank: int) -> GPUDevice:
        """The GPU of ``rank``."""
        return self.sites[rank].device

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node."""
        return self.sites[a].node == self.sites[b].node

    def data_link(self, src: int, dst: int) -> Tuple[Link, str]:
        """The payload link between two ranks and its direction key.

        Intra-node pairs ride the node's GPU–GPU link; inter-node pairs
        get a dedicated per-node-pair fabric link (dual-rail EDR is
        already folded into the spec's bandwidth).
        """
        if src == dst:
            raise ValueError("no link from a rank to itself")
        a, b = self.sites[src], self.sites[dst]
        if a.node == b.node:
            return self._node_gpu_gpu[a.node], f"{src}->{dst}"
        key = (min(a.node, b.node), max(a.node, b.node))
        link = self._internode.get(key)
        if link is None:
            link = Link(
                self.sim,
                self.system.internode,
                name=f"n{key[0]}-n{key[1]}:{self.system.internode.name}",
            )
            self._internode[key] = link
        return link, f"{src}->{dst}"

    def links(self):
        """Every live link of the cluster (node-local and inter-node).

        Used by the harness to aggregate byte counters and fault
        recovery statistics (retransmits) across the whole fabric.
        """
        yield from self._node_cpu_gpu
        yield from self._node_gpu_gpu
        yield from self._internode.values()

    def control_latency(self, src: int, dst: int) -> float:
        """One-way latency of a control packet (RTS/CTS) between ranks."""
        link, _ = self.data_link(src, dst)
        return link.control_delay()
