"""Wire-transfer helpers: RDMA reads/writes and staged host copies.

These generators are the payload-movement vocabulary of the MPI
protocols:

* :func:`rdma_write` / :func:`rdma_read` — one-sided GPUDirect-RDMA
  moves between two ranks' GPU memories (the RPUT / RGET data paths);
* :func:`staged_host_copy` — a device↔host staging move over a node's
  CPU–GPU link (used by the hybrid scheme's host-packed sends).

They advance the simulated clock only; the *byte* movement is performed
by the caller at completion (the runtime copies packed bytes between
simulated memories when the transfer event fires), keeping data state
consistent with simulated time.

All three helpers are failure-aware by construction: they ride
:meth:`~repro.net.link.Link.transmit`, which (under an attached
:class:`~repro.sim.faults.FaultPlan`) absorbs link flaps, latency
spikes, and mid-flight transfer failures via retransmission with capped
exponential backoff.  A helper therefore never returns until the bytes
have genuinely made it across — faults only inflate the elapsed time it
reports.
"""

from __future__ import annotations

from typing import Generator

from ..sim.engine import Event
from .topology import Cluster

__all__ = ["rdma_write", "rdma_read", "staged_host_copy"]


def rdma_write(
    cluster: Cluster, src: int, dst: int, nbytes: int
) -> Generator[Event, None, float]:
    """One-sided write of ``nbytes`` from ``src``'s GPU to ``dst``'s GPU.

    Returns elapsed seconds (including queueing on the link).
    """
    link, direction = cluster.data_link(src, dst)
    post = cluster.system.net_post_overhead
    yield cluster.sim.timeout(post)
    elapsed = yield from link.transmit(nbytes, direction)
    return post + elapsed


def rdma_read(
    cluster: Cluster, reader: int, target: int, nbytes: int
) -> Generator[Event, None, float]:
    """One-sided read by ``reader`` of ``nbytes`` from ``target``'s GPU.

    An RDMA-READ pays an extra one-way latency for the request
    traversal before data starts flowing back (the RGET protocol's
    well-known cost relative to RPUT).
    """
    link, direction = cluster.data_link(target, reader)
    post = cluster.system.net_post_overhead
    yield cluster.sim.timeout(post + link.control_delay())
    elapsed = yield from link.transmit(nbytes, direction)
    return post + link.control_delay() + elapsed


def staged_host_copy(
    cluster: Cluster, rank: int, nbytes: int, to_host: bool
) -> Generator[Event, None, float]:
    """Move ``nbytes`` between ``rank``'s GPU and its host staging area."""
    site = cluster.site(rank)
    direction = "d2h" if to_host else "h2d"
    elapsed = yield from site.cpu_gpu_link.transmit(nbytes, direction)
    return elapsed
