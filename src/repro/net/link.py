"""Interconnect link model.

A :class:`Link` is a duplex channel with a latency/bandwidth cost model
and per-direction serialization: transfers in the same direction queue
behind each other (one DMA engine / one injection port per direction),
transfers in opposite directions do not interfere — first-order
behaviour of NVLink bricks, PCIe lanes, and InfiniBand HCAs alike.

Transfer time for ``n`` bytes is ``latency + n / bandwidth`` plus any
queueing delay.  Small control packets (RTS/CTS of the rendezvous
protocols) use :meth:`Link.control_delay`, which pays latency only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..sim.engine import Event, Simulator
from ..sim.resources import Resource

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a link type.

    ``bandwidth`` is one-way bytes/s (the Table II numbers);
    ``latency`` is the one-way propagation + port traversal time.
    """

    name: str
    bandwidth: float
    latency: float

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded one-way time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth


class Link:
    """A live link instance bound to a simulator.

    Directions are keyed by arbitrary hashable endpoints pairs; each
    direction gets a capacity-1 :class:`Resource`, created lazily.
    """

    def __init__(self, sim: Simulator, spec: LinkSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._ports: Dict[object, Resource] = {}
        #: total payload bytes carried (both directions)
        self.bytes_carried = 0
        #: number of transfers completed
        self.transfer_count = 0

    def _port(self, direction: object) -> Resource:
        port = self._ports.get(direction)
        if port is None:
            port = Resource(self.sim, capacity=1, name=f"{self.name}:{direction}")
            self._ports[direction] = port
        return port

    def transmit(
        self, nbytes: int, direction: object = "fwd"
    ) -> Generator[Event, None, float]:
        """Process generator: move ``nbytes`` one way; returns the time spent.

        Queues on the direction's port, then occupies it for the full
        serialization time.  Intended to be driven with
        ``yield from link.transmit(...)`` inside a simulation process.
        """
        start = self.sim.now
        port = self._port(direction)
        yield port.request()
        try:
            duration = self.spec.transfer_time(nbytes)
            if self.sim.noise is not None:
                duration *= self.sim.noise.factor("net")
            yield self.sim.timeout(duration)
        finally:
            port.release()
        self.bytes_carried += nbytes
        self.transfer_count += 1
        return self.sim.now - start

    def control_delay(self) -> float:
        """One-way delay of a small control packet (RTS/CTS)."""
        return self.spec.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.spec.bandwidth / 1e9:.0f}GB/s "
            f"{self.spec.latency * 1e6:.2f}us>"
        )
