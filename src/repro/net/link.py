"""Interconnect link model.

A :class:`Link` is a duplex channel with a latency/bandwidth cost model
and per-direction serialization: transfers in the same direction queue
behind each other (one DMA engine / one injection port per direction),
transfers in opposite directions do not interfere — first-order
behaviour of NVLink bricks, PCIe lanes, and InfiniBand HCAs alike.

Transfer time for ``n`` bytes is ``latency + n / bandwidth`` plus any
queueing delay.  Small control packets (RTS/CTS of the rendezvous
protocols) use :meth:`Link.control_delay`, which pays latency only.

Fault tolerance
---------------
When a :class:`~repro.sim.faults.FaultPlan` is attached to the
simulator, :meth:`Link.transmit` becomes failure-aware: a transfer may
find the link flapped (it waits out the dark window), hit a latency
spike (the serialization time is multiplied), or die mid-flight — in
which case the full attempt time is lost and the transfer is
retransmitted after a capped exponential backoff.  Callers never see a
failure; they only see time pass.  Retransmissions are counted in
:attr:`Link.retransmits` and the wasted seconds in
:attr:`Link.fault_delay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from ..sim.engine import Event, Simulator, fastpath_enabled
from ..sim.faults import FaultError
from ..sim.resources import Resource

__all__ = ["LinkSpec", "Link"]

#: hard cap on retransmission attempts per transfer — a diagnostic
#: backstop, unreachable for valid FaultSpecs (per-attempt success
#: probability is at least 10 %)
MAX_TRANSMIT_ATTEMPTS = 10_000
#: exponential-backoff ceiling, in multiples of the link's base latency
BACKOFF_CAP_FACTOR = 64


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a link type.

    ``bandwidth`` is one-way bytes/s (the Table II numbers);
    ``latency`` is the one-way propagation + port traversal time.
    """

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        # Validate here instead of failing with ZeroDivisionError deep
        # inside transfer_time.
        if not self.bandwidth > 0:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded one-way time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth


class Link:
    """A live link instance bound to a simulator.

    Directions are keyed by arbitrary hashable endpoints pairs; each
    direction gets a capacity-1 :class:`Resource`, created lazily.
    """

    __slots__ = (
        "sim", "spec", "name", "_ports",
        "bytes_carried", "transfer_count", "retransmits", "fault_delay",
    )

    def __init__(self, sim: Simulator, spec: LinkSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._ports: Dict[object, Resource] = {}
        #: total payload bytes carried (both directions)
        self.bytes_carried = 0
        #: number of transfers completed
        self.transfer_count = 0
        #: retransmissions caused by injected transfer failures
        self.retransmits = 0
        #: seconds lost to faults (failed attempts, backoff, flap waits)
        self.fault_delay = 0.0

    def _port(self, direction: object) -> Resource:
        port = self._ports.get(direction)
        if port is None:
            port = Resource(self.sim, capacity=1, name=f"{self.name}:{direction}")
            self._ports[direction] = port
        return port

    def transmit(
        self, nbytes: int, direction: object = "fwd"
    ) -> Generator[Event, None, float]:
        """Process generator: move ``nbytes`` one way; returns the time spent.

        Queues on the direction's port, then occupies it for the full
        serialization time.  Intended to be driven with
        ``yield from link.transmit(...)`` inside a simulation process.

        With a fault plan attached, a transfer survives link flaps,
        latency spikes, and mid-flight failures by waiting, paying, and
        retransmitting (capped exponential backoff); the caller only
        ever observes elapsed time.
        """
        sim = self.sim
        start = sim.now
        port = self._port(direction)
        faults = sim.faults
        if faults is None and sim.noise is None and fastpath_enabled():
            # Closed-form fast path: with no fault plan and no noise the
            # generic loop below always runs exactly one attempt with no
            # flap wait and no retransmission, i.e. it degenerates to
            # request → timeout → release.  Emitting those same events
            # directly keeps the virtual-time trace byte-identical (the
            # CI equivalence job proves it) while skipping the per-chunk
            # bookkeeping that dominates the no-fault sweeps.
            yield port.request()
            try:
                yield sim.timeout(self.spec.transfer_time(nbytes))
            finally:
                port.release()
            self.bytes_carried += nbytes
            self.transfer_count += 1
            obs = sim.obs
            if obs.enabled:
                obs.count("link_transfers_total", link=self.name)
                obs.count("link_bytes_total", nbytes, link=self.name)
                obs.span(
                    "link", "transfer", start, sim.now,
                    track=self.name, nbytes=nbytes,
                )
            return sim.now - start
        backoff = self.spec.latency
        attempts = 0
        while True:
            failed = False
            attempt_start = self.sim.now
            yield port.request()
            try:
                if faults is not None:
                    downtime = faults.link_down_time(self.name)
                    if downtime > 0:
                        # Link flapped: hold the port while it is dark —
                        # nothing else can inject either.
                        yield self.sim.timeout(downtime)
                duration = self.spec.transfer_time(nbytes)
                if self.sim.noise is not None:
                    duration *= self.sim.noise.factor("net")
                if faults is not None:
                    duration *= faults.latency_multiplier(self.name)
                    failed = faults.transfer_fails(self.name)
                yield self.sim.timeout(duration)
            finally:
                port.release()
            if not failed:
                break
            # The attempt's wire time is lost; back off and retransmit.
            self.retransmits += 1
            self.sim.obs.count("link_retransmits_total", link=self.name)
            attempts += 1
            if attempts >= MAX_TRANSMIT_ATTEMPTS:
                raise FaultError(
                    f"{self.name}: {attempts} failed transmission attempts "
                    f"for {nbytes} B — fault plan leaves no headroom"
                )
            yield self.sim.timeout(backoff)
            backoff = min(backoff * 2.0, BACKOFF_CAP_FACTOR * self.spec.latency)
            lost = self.sim.now - attempt_start
            self.fault_delay += lost
            self.sim.obs.count(
                "link_fault_delay_seconds_total", lost, link=self.name
            )
        self.bytes_carried += nbytes
        self.transfer_count += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.count("link_transfers_total", link=self.name)
            obs.count("link_bytes_total", nbytes, link=self.name)
            obs.span(
                "link", "transfer", start, self.sim.now,
                track=self.name, nbytes=nbytes,
            )
        return self.sim.now - start

    def control_delay(self) -> float:
        """One-way delay of a small control packet (RTS/CTS)."""
        return self.spec.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.spec.bandwidth / 1e9:.0f}GB/s "
            f"{self.spec.latency * 1e6:.2f}us>"
        )
