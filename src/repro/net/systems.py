"""System configurations: the Table II machines.

Encodes the two evaluation platforms exactly as the paper's Table II
describes them:

========================  ======================  =====================
Spec                      LLNL Lassen             ABCI
========================  ======================  =====================
CPU                       2× POWER9, 44 c/socket  2× Xeon 6148, 20 c/s
GPU                       4× Tesla V100 16 GB     4× Tesla V100 16 GB
CPU–GPU interconnect      NVLink-2, 75 GB/s       PCIe Gen3, 32 GB/s
GPU–GPU interconnect      NVLink-2, 75 GB/s       NVLink-2, 50 GB/s
Inter-node                2× IB EDR, 25 GB/s      2× IB EDR, 25 GB/s
========================  ======================  =====================

The CPU–GPU link speed is the key architectural difference the paper
calls out: ABCI's slower PCIe widens the overlap window (GPU-Async can
beat GPU-Sync there, Fig. 13c/d) and amplifies the proposed design's
advantage (19× vs 8× on sparse layouts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.archs import GPUArchitecture, TESLA_V100, TESLA_V100_PCIE
from ..sim.engine import us
from .link import LinkSpec

__all__ = ["SystemConfig", "LASSEN", "ABCI", "SYSTEMS"]

GB = 1e9


@dataclass(frozen=True)
class SystemConfig:
    """One evaluation platform (a Table II column)."""

    name: str
    gpu_arch: GPUArchitecture
    gpus_per_node: int
    #: CPU <-> GPU link (NVLink-2 on Lassen, PCIe Gen3 on ABCI)
    cpu_gpu: LinkSpec
    #: GPU <-> GPU peer link within a node
    gpu_gpu: LinkSpec
    #: inter-node fabric (per-rank effective, GPUDirect-RDMA capable)
    internode: LinkSpec
    #: GDRCopy kernel module available (required by CPU-GPU-Hybrid [24])
    has_gdrcopy: bool = True
    #: per-message software overhead of posting a network operation, s
    net_post_overhead: float = us(0.7)
    #: eager/rendezvous switch-over point of the MPI runtime, bytes
    eager_threshold: int = 8192

    def describe(self) -> str:
        """One-line summary used by benchmark headers."""
        return (
            f"{self.name}: {self.gpus_per_node}x {self.gpu_arch.name}, "
            f"CPU-GPU {self.cpu_gpu.bandwidth / GB:.0f} GB/s, "
            f"GPU-GPU {self.gpu_gpu.bandwidth / GB:.0f} GB/s, "
            f"inter-node {self.internode.bandwidth / GB:.0f} GB/s"
        )


#: LLNL Lassen — POWER9 + V100, NVLink-2 everywhere, dual-rail IB EDR.
LASSEN = SystemConfig(
    name="Lassen",
    gpu_arch=TESLA_V100,
    gpus_per_node=4,
    cpu_gpu=LinkSpec("NVLink-2 (CPU-GPU)", bandwidth=75 * GB, latency=us(1.0)),
    gpu_gpu=LinkSpec("NVLink-2 (GPU-GPU)", bandwidth=75 * GB, latency=us(1.0)),
    internode=LinkSpec("2x IB EDR", bandwidth=25 * GB, latency=us(1.3)),
    has_gdrcopy=True,
)

#: ABCI — Xeon + V100, PCIe Gen3 to the CPU, NVLink-2 between GPUs.
#:
#: The inter-node spec is nominally the same dual-rail EDR as Lassen,
#: but GPUDirect RDMA must traverse the PCIe switches to reach GPU
#: memory, so the *effective* GPU-to-GPU inter-node path is slower and
#: longer-latency than on Lassen's NVLink-attached POWER9 — the paper's
#: explanation for why overlap matters more on ABCI (§V-C).
ABCI = SystemConfig(
    name="ABCI",
    gpu_arch=TESLA_V100_PCIE,
    gpus_per_node=4,
    cpu_gpu=LinkSpec("PCIe Gen3 x16", bandwidth=32 * GB, latency=us(1.8)),
    gpu_gpu=LinkSpec("NVLink-2 (GPU-GPU)", bandwidth=50 * GB, latency=us(1.0)),
    internode=LinkSpec("2x IB EDR via PCIe", bandwidth=12 * GB, latency=us(2.5)),
    has_gdrcopy=True,
    # The PCIe path adds per-message cost on the host side as well.
    net_post_overhead=us(0.9),
)

#: Name → config registry.
SYSTEMS = {s.name: s for s in (LASSEN, ABCI)}
