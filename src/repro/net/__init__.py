"""Interconnect and cluster substrate.

Link cost models, the Table II system configurations (Lassen, ABCI),
cluster topology wiring ranks to GPUs and links, and the RDMA/staging
transfer helpers the MPI protocols build on.
"""

from .link import Link, LinkSpec
from .systems import ABCI, LASSEN, SYSTEMS, SystemConfig
from .topology import Cluster, RankSite
from .transfer import rdma_read, rdma_write, staged_host_copy

__all__ = [
    "Link",
    "LinkSpec",
    "SystemConfig",
    "LASSEN",
    "ABCI",
    "SYSTEMS",
    "Cluster",
    "RankSite",
    "rdma_write",
    "rdma_read",
    "staged_host_copy",
]
