"""repro — reproduction of "Dynamic Kernel Fusion for Bulk Non-contiguous
Data Transfer on GPU Clusters" (Chu et al., IEEE CLUSTER 2020).

A pure-Python implementation of the paper's dynamic kernel-fusion
framework and every substrate it needs, built on a discrete-event
GPU-cluster simulator with a byte-exact NumPy data plane:

* :mod:`repro.sim`       — discrete-event simulation kernel
* :mod:`repro.datatypes` — MPI derived-datatype engine + layout cache
* :mod:`repro.gpu`       — simulated GPUs: cost model, streams, memory
* :mod:`repro.net`       — interconnects and the Lassen/ABCI systems
* :mod:`repro.mpi`       — MPI-like runtime (isend/irecv, protocols)
* :mod:`repro.schemes`   — baseline datatype-processing schemes
* :mod:`repro.core`      — the proposed dynamic kernel-fusion framework
* :mod:`repro.workloads` — ddtbench-style application layouts
* :mod:`repro.bench`     — experiment runner + reporting

Quickstart::

    from repro import quick_compare
    print(quick_compare())
"""

from . import bench, core, datatypes, gpu, mpi, net, schemes, sim, workloads
from .bench import ExperimentResult, run_bulk_exchange
from .core import FusionPolicy, KernelFusionScheme
from .mpi import Rank, Runtime
from .net import ABCI, LASSEN, Cluster
from .schemes import SCHEME_REGISTRY
from .sim import Simulator
from .workloads import WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "sim",
    "datatypes",
    "gpu",
    "net",
    "mpi",
    "schemes",
    "core",
    "workloads",
    "bench",
    "Simulator",
    "Cluster",
    "Runtime",
    "Rank",
    "LASSEN",
    "ABCI",
    "SCHEME_REGISTRY",
    "WORKLOADS",
    "KernelFusionScheme",
    "FusionPolicy",
    "run_bulk_exchange",
    "ExperimentResult",
    "quick_compare",
    "__version__",
]


def quick_compare(workload: str = "specfem3D_cm", dim: int = 2000, nbuffers: int = 16) -> str:
    """Run every scheme on one workload and return a latency table."""
    from .bench import format_latency_table
    from .net import LASSEN

    results = {}
    for name, factory in SCHEME_REGISTRY.items():
        r = run_bulk_exchange(
            LASSEN, factory, WORKLOADS[workload](dim), nbuffers=nbuffers,
            iterations=3, warmup=1,
        )
        results[name] = {dim: r}
    return format_latency_table(
        results,
        title=f"{workload} (dim={dim}, {nbuffers} buffers) on Lassen",
        baseline="GPU-Sync",
    )
