"""``repro.config`` — the unified experiment-config plane.

One canonical, validated, hashable :class:`ExperimentConfig` describes
every experiment; see :mod:`repro.config.tree` for the contracts and
``docs/configuration.md`` for the field catalog.
"""

from .tree import (
    CONFIG_SCHEMA,
    ExperimentConfig,
    FaultsCfg,
    FusionCfg,
    HarnessCfg,
    NoiseCfg,
    ObsCfg,
    ProtocolCfg,
    SchemeCfg,
    SystemCfg,
    WorkloadCfg,
    config_diff,
)

__all__ = [
    "CONFIG_SCHEMA",
    "ExperimentConfig",
    "SystemCfg",
    "WorkloadCfg",
    "FusionCfg",
    "SchemeCfg",
    "ProtocolCfg",
    "FaultsCfg",
    "NoiseCfg",
    "ObsCfg",
    "HarnessCfg",
    "config_diff",
]
