"""The canonical experiment-config plane: one frozen, validated tree.

Every experiment the repro can run — any (system, scheme, workload,
protocol, faults, noise, obs, harness) point of the paper's §V
evaluation space — is fully described by one :class:`ExperimentConfig`.
The tree is the single source of truth threaded through the runner
(:func:`repro.bench.runner.run_bulk_exchange`), the runtime
(:class:`repro.mpi.communicator.Runtime` consumes :class:`ProtocolCfg`),
the scheme registry (:func:`repro.schemes.make_scheme_factory` consumes
:class:`SchemeCfg`), the sweep engine
(:class:`repro.bench.sweep.ExperimentSpec` wraps a config), the figure
plans, and the CLI.

Contracts:

* **frozen + validated** — every sub-config checks its fields in
  ``__post_init__``, so a bad knob fails at construction with a clear
  message instead of deep inside the runtime;
* **JSON round-trip** — ``cfg == ExperimentConfig.from_dict(cfg.to_dict())``,
  and :meth:`ExperimentConfig.from_dict` rejects unknown keys by dotted
  path;
* **dotted-path overrides** —
  ``cfg.with_overrides({"scheme.fusion.threshold_bytes": 1 << 19})``
  returns a new validated config; unknown paths raise;
* **canonical hash** — :meth:`ExperimentConfig.content_hash` is a
  sha256 over the sorted-key canonical JSON, independent of
  ``PYTHONHASHSEED`` and process identity.  The sweep engine's
  content-addressed cache keys derive from it, and two runs with equal
  hashes produce byte-identical artifacts (DESIGN §7).

This module is deliberately import-light: nothing from the simulator
packages is imported at module level, so any layer (including
``repro.mpi``) can import the config types without cycles.  The
``build()`` / resolver helpers that need live registries import them
lazily.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "CONFIG_SCHEMA",
    "ExperimentConfig",
    "SystemCfg",
    "WorkloadCfg",
    "FusionCfg",
    "SchemeCfg",
    "ProtocolCfg",
    "FaultsCfg",
    "NoiseCfg",
    "ObsCfg",
    "HarnessCfg",
    "config_diff",
]

#: hash-domain tag folded into :meth:`ExperimentConfig.content_hash`;
#: bump only on a deliberate canonical-form change (the golden-hash pin
#: test fails loudly when the form drifts by accident)
CONFIG_SCHEMA = "repro.config/v1"

#: rendezvous protocol names (mirrors ``repro.mpi.protocols`` RPUT/RGET;
#: duplicated by value so this module stays import-light)
_RENDEZVOUS = ("rput", "rget")

#: scheme-constructor override keys routed to :class:`FusionCfg` (the
#: legacy artifact ``config`` block vocabulary)
_FUSION_KEYS = (
    "threshold_bytes",
    "max_batch_requests",
    "min_batch_requests",
    "capacity",
)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _check_int(name: str, value: Any, minimum: int) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        f"{name} must be an integer >= {minimum}, got {value!r}",
    )


def _check_opt_int(name: str, value: Any, minimum: int) -> None:
    if value is not None:
        _check_int(name, value, minimum)


# -- sub-configs ---------------------------------------------------------------


@dataclass(frozen=True)
class SystemCfg:
    """Which cluster model hosts the exchange."""

    #: registered system name (``repro.net.SYSTEMS``: Lassen, ABCI, …)
    name: str = "Lassen"
    nodes: int = 2
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str), "system.name must be a non-empty string")
        _check_int("system.nodes", self.nodes, 1)
        _check_int("system.ranks_per_node", self.ranks_per_node, 1)

    def resolve(self) -> Any:
        """The live :class:`~repro.net.systems.SystemConfig`."""
        from ..net.systems import SYSTEMS

        try:
            return SYSTEMS[self.name]
        except KeyError:
            raise ValueError(
                f"unknown system {self.name!r}; known: {sorted(SYSTEMS)}"
            ) from None


@dataclass(frozen=True)
class WorkloadCfg:
    """Which ddtbench workload datatype is exchanged, and how much."""

    #: registered workload generator (``repro.workloads.WORKLOADS``)
    name: str = "specfem3D_cm"
    #: workload dimension (the figure sweep axis)
    dim: int = 1000
    #: nonblocking send/recv pairs per rank per iteration (Fig. 8's
    #: "32 continuous operations" is 16)
    nbuffers: int = 16

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str), "workload.name must be a non-empty string")
        _check_int("workload.dim", self.dim, 1)
        _check_int("workload.nbuffers", self.nbuffers, 1)

    def resolve(self) -> Any:
        """The live :class:`~repro.workloads.base.WorkloadSpec`."""
        from ..workloads import WORKLOADS

        try:
            generator = WORKLOADS[self.name]
        except KeyError:
            raise ValueError(
                f"unknown workload {self.name!r}; known: {sorted(WORKLOADS)}"
            ) from None
        return generator(self.dim)


@dataclass(frozen=True)
class FusionCfg:
    """Kernel-fusion overrides (§IV-C policy + scheduler capacity).

    ``None`` everywhere means "registry defaults" — the scheme runs
    exactly as ``SCHEME_REGISTRY[name]`` builds it.  Setting any field
    (or :attr:`SchemeCfg.label`) switches the factory onto the
    :class:`~repro.core.framework.KernelFusionScheme` path with a
    :class:`~repro.core.fusion_policy.FusionPolicy` built from the
    non-``None`` fields.
    """

    threshold_bytes: Optional[int] = None
    max_batch_requests: Optional[int] = None
    min_batch_requests: Optional[int] = None
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        _check_opt_int("scheme.fusion.threshold_bytes", self.threshold_bytes, 0)
        _check_opt_int("scheme.fusion.max_batch_requests", self.max_batch_requests, 1)
        _check_opt_int("scheme.fusion.min_batch_requests", self.min_batch_requests, 1)
        _check_opt_int("scheme.fusion.capacity", self.capacity, 1)

    @property
    def configured(self) -> bool:
        """True when any override is set."""
        return any(
            getattr(self, f.name) is not None for f in dataclasses.fields(self)
        )

    def policy_kwargs(self) -> Dict[str, int]:
        """The set policy fields, as ``FusionPolicy`` keyword arguments."""
        return {
            name: value
            for name in ("threshold_bytes", "max_batch_requests", "min_batch_requests")
            if (value := getattr(self, name)) is not None
        }


@dataclass(frozen=True)
class SchemeCfg:
    """Which datatype-processing scheme packs/unpacks the messages."""

    #: registry name (``repro.schemes.SCHEME_REGISTRY``) or a display
    #: name for a fusion variant (e.g. ``Proposed-Tuned``)
    name: str = "Proposed"
    #: display-name override for fusion variants (``None`` = default)
    label: Optional[str] = None
    fusion: FusionCfg = field(default_factory=FusionCfg)
    #: extra constructor keywords for registry schemes (validated
    #: against the scheme's signature by ``make_scheme_factory``)
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str), "scheme.name must be a non-empty string")
        _require(
            self.label is None or (bool(self.label) and isinstance(self.label, str)),
            "scheme.label must be None or a non-empty string",
        )
        object.__setattr__(self, "options", dict(self.options))

    @property
    def fusion_configured(self) -> bool:
        """True when this config names a fusion variant (not a plain
        registry lookup) — any fusion override or an explicit label."""
        return self.fusion.configured or self.label is not None

    @classmethod
    def from_overrides(cls, name: str, overrides: Mapping[str, Any]) -> "SchemeCfg":
        """Build from a legacy artifact-entry ``config`` block.

        The block's vocabulary (``threshold_bytes`` / ``capacity`` /
        policy knobs / ``name``) maps onto :class:`FusionCfg` +
        :attr:`label`; anything else is a constructor option.
        """
        overrides = dict(overrides or {})
        fusion = FusionCfg(**{k: overrides.pop(k) for k in _FUSION_KEYS if k in overrides})
        label = overrides.pop("name", None)
        return cls(name=name, label=label, fusion=fusion, options=overrides)

    def overrides_dict(self) -> Dict[str, Any]:
        """The legacy ``config`` block this scheme config records into
        artifact entries (inverse of :meth:`from_overrides`)."""
        out: Dict[str, Any] = {
            k: v
            for k in _FUSION_KEYS
            if (v := getattr(self.fusion, k)) is not None
        }
        if self.label is not None:
            out["name"] = self.label
        out.update(self.options)
        return out


@dataclass(frozen=True)
class ProtocolCfg:
    """Point-to-point transport knobs consumed by the MPI runtime."""

    #: rendezvous flavour: sender-push ``rput`` or receiver-pull ``rget``
    rendezvous: str = "rput"
    #: messages strictly below this go eager (``None`` = system default)
    eager_threshold: Optional[int] = None
    #: allow same-node GPU peer-to-peer copies to bypass the NIC
    enable_direct_ipc: bool = False
    #: datatype layout cache of [24] (Table I ablation axis)
    layout_cache_enabled: bool = True
    #: progress-poll period, seconds
    poll_interval: float = 1e-6
    #: CPU cost of one layout extraction: base + per-block walk
    flatten_base_cost: float = 5e-7
    flatten_block_cost: float = 4e-9
    #: messages at/above this use the host-staged chunked pipeline
    #: (``None`` = never)
    host_staging_threshold: Optional[int] = None
    pipeline_chunk_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.rendezvous not in _RENDEZVOUS:
            raise ValueError(
                f"unknown rendezvous protocol {self.rendezvous!r} "
                f"(choose from {list(_RENDEZVOUS)})"
            )
        _check_opt_int("protocol.eager_threshold", self.eager_threshold, 0)
        _check_opt_int("protocol.host_staging_threshold", self.host_staging_threshold, 0)
        _require(self.poll_interval > 0, f"protocol.poll_interval must be > 0, got {self.poll_interval!r}")
        _require(self.flatten_base_cost >= 0, "protocol.flatten_base_cost must be >= 0")
        _require(self.flatten_block_cost >= 0, "protocol.flatten_block_cost must be >= 0")
        if not (isinstance(self.pipeline_chunk_bytes, int) and self.pipeline_chunk_bytes >= 1):
            raise ValueError("pipeline_chunk_bytes must be positive")

    #: legacy ``Runtime.__init__`` keyword → config field
    _LEGACY_KWARGS = {
        "rendezvous_protocol": "rendezvous",
        "eager_threshold": "eager_threshold",
        "enable_direct_ipc": "enable_direct_ipc",
        "layout_cache_enabled": "layout_cache_enabled",
        "poll_interval": "poll_interval",
        "flatten_base_cost": "flatten_base_cost",
        "flatten_block_cost": "flatten_block_cost",
        "host_staging_threshold": "host_staging_threshold",
        "pipeline_chunk_bytes": "pipeline_chunk_bytes",
    }

    @classmethod
    def from_kwargs(cls, **legacy: Any) -> "ProtocolCfg":
        """Build from the legacy ``Runtime``/``run_bulk_exchange``
        keyword vocabulary (``rendezvous_protocol=...``)."""
        unknown = set(legacy) - set(cls._LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"unknown protocol keyword(s): {sorted(unknown)}"
            )
        return cls(**{cls._LEGACY_KWARGS[k]: v for k, v in legacy.items()})


@dataclass(frozen=True)
class FaultsCfg:
    """Fault-injection plan: a preset name and/or spec overrides.

    ``preset=None, spec=None`` (the default) runs on a perfect fabric
    with no plan attached.  ``seed=None`` derives the plan seed from
    :attr:`HarnessCfg.seed`, keeping one seed knob per experiment.
    """

    preset: Optional[str] = None
    #: field overrides layered onto the preset's ``FaultSpec``
    spec: Optional[Mapping[str, Any]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.preset is not None:
            from ..sim.faults import FAULT_PRESETS

            _require(
                self.preset in FAULT_PRESETS,
                f"unknown fault preset {self.preset!r}; known: {sorted(FAULT_PRESETS)}",
            )
        if self.spec is not None:
            from ..sim.faults import FaultSpec

            known = {f.name for f in dataclasses.fields(FaultSpec)}
            unknown = set(self.spec) - known
            _require(
                not unknown,
                f"unknown fault spec field(s): {sorted(unknown)}",
            )
            object.__setattr__(self, "spec", dict(self.spec))
        _check_opt_int("faults.seed", self.seed, 0)

    @property
    def enabled(self) -> bool:
        return self.preset is not None or self.spec is not None

    def build(self, default_seed: int) -> Optional[Any]:
        """The live :class:`~repro.sim.faults.FaultPlan` (or ``None``)."""
        if not self.enabled:
            return None
        from ..sim.faults import FAULT_PRESETS, FaultSpec

        base = FAULT_PRESETS[self.preset] if self.preset is not None else FaultSpec()
        if self.spec:
            base = dataclasses.replace(base, **dict(self.spec))
        from ..sim.faults import FaultPlan

        return FaultPlan(
            seed=self.seed if self.seed is not None else default_seed, spec=base
        )


@dataclass(frozen=True)
class NoiseCfg:
    """Execution-noise model: seeded multiplicative jitter."""

    #: coefficient of variation (0 = deterministic, no model attached)
    cv: float = 0.0
    #: ``None`` derives the stream seed from :attr:`HarnessCfg.seed`
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.cv >= 0, f"noise.cv must be >= 0, got {self.cv!r}")
        _check_opt_int("noise.seed", self.seed, 0)

    def build(self, default_seed: int) -> Optional[Any]:
        """The live :class:`~repro.sim.noise.NoiseModel` (or ``None``)."""
        if self.cv <= 0.0:
            return None
        from ..sim.noise import NoiseModel

        return NoiseModel(
            seed=self.seed if self.seed is not None else default_seed, cv=self.cv
        )


@dataclass(frozen=True)
class ObsCfg:
    """Telemetry switches (observation never moves virtual time)."""

    #: collect counters/gauges/histograms into a registry
    metrics: bool = False
    #: record the span/event stream (Chrome-trace exportable)
    trace: bool = False

    def build(self) -> Optional[Any]:
        """A live :class:`~repro.obs.Observer`, or ``None`` when every
        switch is off (the runner then skips observation entirely)."""
        if not (self.metrics or self.trace):
            return None
        from ..obs.observer import Observer
        from ..obs.recorder import NullRecorder, Recorder

        return Observer(recorder=Recorder() if self.trace else NullRecorder())


@dataclass(frozen=True)
class HarnessCfg:
    """Measurement-methodology knobs (§V-A)."""

    iterations: int = 5
    warmup: int = 1
    #: byte-exactness check of every delivered buffer (forced off when
    #: the data plane is off)
    verify: bool = True
    #: move real bytes (False prices operations without NumPy copies)
    data_plane: bool = True
    #: seeds the payload RNG and, by default, fault/noise draws
    seed: int = 42

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError("need iterations >= 1 and warmup >= 0")
        _check_int("harness.iterations", self.iterations, 1)
        _check_int("harness.warmup", self.warmup, 0)
        _check_int("harness.seed", self.seed, 0)


# -- the root ------------------------------------------------------------------

_NESTED: Dict[type, Dict[str, type]] = {}


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment, fully described (DESIGN §7 invariant).

    Equal canonical hashes ⇒ byte-identical artifacts: the simulation is
    deterministic, and every knob any layer reads lives in this tree.
    """

    system: SystemCfg = field(default_factory=SystemCfg)
    workload: WorkloadCfg = field(default_factory=WorkloadCfg)
    scheme: SchemeCfg = field(default_factory=SchemeCfg)
    protocol: ProtocolCfg = field(default_factory=ProtocolCfg)
    faults: FaultsCfg = field(default_factory=FaultsCfg)
    noise: NoiseCfg = field(default_factory=NoiseCfg)
    obs: ObsCfg = field(default_factory=ObsCfg)
    harness: HarnessCfg = field(default_factory=HarnessCfg)

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The documented defaults (see ``docs/configuration.md``)."""
        return cls()

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict form (JSON-safe, mapping fields key-sorted)."""
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``
        naming the dotted path."""
        return _from_dict(cls, data, path="")

    def canonical_json(self) -> str:
        """Sorted-key, minimal-separator JSON — the hashed form."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Canonical sha256 content hash of this config.

        Stable across processes and ``PYTHONHASHSEED`` values (built
        from sorted canonical JSON, never from Python ``hash()``), and
        the root of the sweep engine's cache keys.
        """
        digest = hashlib.sha256()
        digest.update(CONFIG_SCHEMA.encode())
        digest.update(b"\0")
        digest.update(self.canonical_json().encode())
        return digest.hexdigest()

    # -- overrides ---------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentConfig":
        """A new config with dotted-path overrides applied.

        ``cfg.with_overrides({"scheme.fusion.threshold_bytes": 1 << 19})``
        — every path must name an existing field (free-form mapping
        fields ``scheme.options.*`` and ``faults.spec.*`` accept new
        keys); the result re-validates from scratch.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            _apply_override(data, path, value)
        return type(self).from_dict(data)

    def diff(self, other: "ExperimentConfig") -> Dict[str, Tuple[Any, Any]]:
        """Dotted path → ``(self_value, other_value)`` for every leaf
        where the two configs disagree."""
        return config_diff(self.to_dict(), other.to_dict())


_NESTED[SchemeCfg] = {"fusion": FusionCfg}
_NESTED[ExperimentConfig] = {
    "system": SystemCfg,
    "workload": WorkloadCfg,
    "scheme": SchemeCfg,
    "protocol": ProtocolCfg,
    "faults": FaultsCfg,
    "noise": NoiseCfg,
    "obs": ObsCfg,
    "harness": HarnessCfg,
}

#: dotted prefixes whose children are free-form mapping keys, not fields
_FREEFORM_PATHS = ("scheme.options", "faults.spec")


def _to_dict(obj: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out[f.name] = _to_dict(value)
        elif isinstance(value, Mapping):
            out[f.name] = {k: value[k] for k in sorted(value)}
        else:
            out[f.name] = value
    return out


def _from_dict(cls: type, data: Mapping[str, Any], path: str) -> Any:
    if not isinstance(data, Mapping):
        where = path or "config"
        raise ValueError(f"{where} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        shown = ", ".join(f"{path}{k}" for k in unknown)
        raise ValueError(f"unknown config key(s): {shown}")
    nested = _NESTED.get(cls, {})
    kwargs: Dict[str, Any] = {}
    for name in known:
        if name not in data:
            continue
        value = data[name]
        if name in nested:
            value = _from_dict(nested[name], value, path=f"{path}{name}.")
        kwargs[name] = value
    return cls(**kwargs)


def _apply_override(data: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    if not all(parts):
        raise ValueError(f"malformed override path {path!r}")
    node: Dict[str, Any] = data
    for depth, part in enumerate(parts[:-1]):
        if part not in node or not isinstance(node[part], dict):
            prefix = ".".join(parts[: depth + 1])
            raise ValueError(f"unknown config path {prefix!r} in override {path!r}")
        node = node[part]
    leaf = parts[-1]
    parent = ".".join(parts[:-1])
    if leaf not in node and parent not in _FREEFORM_PATHS:
        raise ValueError(f"unknown config path {path!r}")
    if isinstance(node.get(leaf), dict) and not isinstance(value, Mapping):
        raise ValueError(
            f"override {path!r} targets a config section; set its leaves "
            f"(e.g. {path}.<field>) or pass a mapping"
        )
    node[leaf] = value


def config_diff(
    a: Mapping[str, Any], b: Mapping[str, Any], prefix: str = ""
) -> Dict[str, Tuple[Any, Any]]:
    """Dotted path → ``(a_value, b_value)`` over two nested dicts."""
    out: Dict[str, Tuple[Any, Any]] = {}
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        in_a, in_b = key in a, key in b
        va, vb = a.get(key), b.get(key)
        if isinstance(va, Mapping) and isinstance(vb, Mapping):
            out.update(config_diff(va, vb, prefix=f"{path}."))
        elif not in_a or not in_b or va != vb:
            out[path] = (va if in_a else None, vb if in_b else None)
    return out
