"""The MPI-like runtime: ranks, nonblocking point-to-point, progress.

:class:`Runtime` owns a :class:`~repro.net.topology.Cluster` and one
:class:`Rank` per MPI process.  A rank exposes the communication API
the paper's three usage styles (Algorithms 1–3) are written against:

* ``isend`` / ``irecv`` / ``waitall`` — nonblocking transfers of
  derived-datatype buffers (Algorithm 3, the style the fusion framework
  accelerates),
* ``pack`` / ``unpack`` — blocking MPI-level explicit packing
  (Algorithm 1),
* plain ``send`` / ``recv`` conveniences.

Application code runs as simulation processes; every CPU-charging call
is a generator (``yield from rank.isend(...)``).  A per-rank capacity-1
CPU lock serializes all CPU work of one rank — the single-threaded
progress engine configuration the paper evaluates (§IV-A2) — while GPU
kernels and wire transfers proceed concurrently on their own resources.

The datatype-processing scheme is injected per rank via a factory, so
the same application code runs unchanged under GPU-Sync, GPU-Async,
CPU-GPU-Hybrid, the naive production path, or the proposed dynamic
kernel fusion.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, Iterable, List, Optional, Sequence, Union

from ..config import ProtocolCfg
from ..datatypes.base import Datatype
from ..datatypes.cache import LayoutCache
from ..datatypes.layout import DataLayout
from ..gpu.memory import BufferPool, GPUBuffer
from ..net.topology import Cluster, RankSite
from ..schemes.base import PackingScheme
from ..sim.engine import Event, Simulator
from ..sim.trace import Category, Trace
from .matching import ANY_SOURCE, MatchingEngine, MessageRecord
from .protocols import (
    DIRECT,
    EAGER,
    PIPELINE,
    RGET,
    RPUT,
    WatchdogStats,
    receiver_pull_rget,
    sender_direct,
    sender_eager,
    sender_pipeline,
    sender_rget,
    sender_rput,
)
from .request import RecvRequest, Request, SendRequest

__all__ = ["Runtime", "Rank"]

SchemeFactory = Callable[[RankSite, Trace], PackingScheme]
TypeArg = Union[Datatype, DataLayout]


class Runtime:
    """One MPI job: a cluster plus a rank per process."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        scheme_factory: SchemeFactory,
        *,
        protocol: Optional[ProtocolCfg] = None,
        **legacy_kwargs,
    ):
        if protocol is None:
            # Deprecation shim: the loose keyword vocabulary
            # (rendezvous_protocol=..., eager_threshold=...) folds into
            # one validated ProtocolCfg — the single source of truth.
            protocol = ProtocolCfg.from_kwargs(**legacy_kwargs)
        elif legacy_kwargs:
            raise TypeError(
                "pass either protocol=ProtocolCfg(...) or legacy keyword "
                f"knobs, not both: {sorted(legacy_kwargs)}"
            )
        self.sim = sim
        self.cluster = cluster
        #: the validated transport sub-config this runtime was built from
        self.protocol = protocol
        self.rendezvous_protocol = protocol.rendezvous
        self.enable_direct_ipc = protocol.enable_direct_ipc
        self.eager_threshold = (
            cluster.system.eager_threshold
            if protocol.eager_threshold is None
            else protocol.eager_threshold
        )
        self.poll_interval = protocol.poll_interval
        #: datatype layout cache of [24]: when disabled, every message
        #: pays the flatten cost below (the Table I "Layout Cache"
        #: column made measurable; see the cache ablation benchmark)
        self.layout_cache_enabled = protocol.layout_cache_enabled
        #: CPU cost of one layout extraction: base + per-block walk
        self.flatten_base_cost = protocol.flatten_base_cost
        self.flatten_block_cost = protocol.flatten_block_cost
        #: messages at/above this use the host-staged chunked pipeline
        #: instead of GPUDirect rendezvous (None = never; the classic
        #: MVAPICH large-message path for PCIe-limited systems)
        self.host_staging_threshold = protocol.host_staging_threshold
        self.pipeline_chunk_bytes = protocol.pipeline_chunk_bytes
        #: control-plane recovery counters (RTS retransmits, CTS
        #: re-offers) — only ever nonzero under fault injection
        self.recovery = WatchdogStats()
        self._seq = itertools.count()
        self.ranks: List[Rank] = [
            Rank(self, cluster.site(r), scheme_factory) for r in range(cluster.size)
        ]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.ranks)

    def rank(self, index: int) -> "Rank":
        """The rank object for MPI rank ``index``."""
        return self.ranks[index]

    # -- internal plumbing -------------------------------------------------------
    def _next_seq(self) -> int:
        return next(self._seq)

    def _deliver_envelope(self, record: MessageRecord, delay: Optional[float] = None) -> None:
        """Ship an envelope (eager header / RTS) to the destination rank.

        Under fault injection a rendezvous RTS may be dropped on the
        wire (the sender's control watchdog retransmits it), and a
        *duplicate* RTS — one the watchdog re-sent — is deduplicated at
        the receiver: matching runs exactly once, and the only effect of
        a duplicate is re-offering a CTS the fabric may have eaten.
        """
        if delay is None:
            delay = self.cluster.control_latency(record.source, record.dest)
        faults = self.sim.faults
        dropped = (
            faults is not None
            and record.protocol in (RPUT, RGET, PIPELINE)
            and faults.drop_control("rts")
        )

        def deliver() -> Generator[Event, None, None]:
            if delay > 0:
                yield self.sim.timeout(delay)
            if dropped:
                return  # lost on the fabric; the sender watchdog re-sends
            dest = self.ranks[record.dest]
            if record.envelope_delivered:
                # Duplicate RTS from a watchdog retransmit.
                if self._send_cts(record):
                    self.recovery.cts_resends += 1
                    self.sim.obs.count("cts_resends_total")
                return
            record.envelope_delivered = True
            result = dest.matching.deliver_envelope(record)
            if result is not None:
                self._on_match(dest, result)

        self.sim.process(deliver(), name=f"envelope:msg{record.seq}")

    def _send_cts(self, record: MessageRecord) -> bool:
        """Offer the CTS for a matched RPUT/PIPELINE message.

        Returns True when a CTS actually left.  A lost CTS is never
        retransmitted directly — the sender's RTS watchdog times out,
        its duplicate RTS reaches us, and we offer again.  No-op for
        CTS-less protocols, unmatched records, and already-sent CTS.
        """
        rreq = record.matched
        if rreq is None or record.protocol not in (RPUT, PIPELINE):
            return False
        if record.cts_event.triggered:
            return False
        faults = self.sim.faults
        if faults is not None and faults.drop_control("cts"):
            return False  # eaten by the fabric; sender will re-RTS
        record.cts_event.succeed(
            delay=self.cluster.control_latency(rreq.rank, record.source)
        )
        return True

    def _on_match(self, rank: "Rank", result) -> None:
        """Receiver-side reactions once a message is matched (§IV-B2)."""
        record: MessageRecord = result.record
        rreq: RecvRequest = result.request
        if record.protocol in (RPUT, PIPELINE):
            # CTS travels back to the sender (may be lost under faults;
            # the sender's watchdog then provokes a re-offer).
            self._send_cts(record)
            self.sim.process(self._receiver_unpack(rank, rreq), name=f"unpack:msg{record.seq}")
        elif record.protocol == RGET:
            self.sim.process(
                receiver_pull_rget(self, rank, rreq, record), name=f"rget:msg{record.seq}"
            )
            self.sim.process(self._receiver_unpack(rank, rreq), name=f"unpack:msg{record.seq}")
        elif record.protocol == EAGER:
            self.sim.process(self._receiver_unpack(rank, rreq), name=f"unpack:msg{record.seq}")
        elif record.protocol == DIRECT:
            self.sim.process(self._receiver_direct(rank, rreq), name=f"ipc:msg{record.seq}")
        else:  # pragma: no cover - protocol set is closed
            raise AssertionError(f"unknown protocol {record.protocol!r}")

    def _receiver_unpack(self, rank: "Rank", rreq: RecvRequest) -> Generator:
        """Deliver payload into the user buffer (the §IV-B2 callback)."""
        record = rreq.record
        assert record is not None
        yield record.payload_ready
        nbytes = record.nbytes
        payload = record.payload
        functional = rreq.user_buffer.functional
        assert not functional or (payload is not None and len(payload) == nbytes)
        if rreq.layout.is_contiguous:
            if functional:
                start = rreq.user_offset
                rreq.user_buffer.data[start : start + nbytes] = payload
            rreq.data_ready.succeed()
            rreq._complete()
            return
        origin = getattr(rreq, "origin_datatype", None)
        if origin is not None and not isinstance(origin, DataLayout):
            yield from rank.resolve_layout_timed(origin)
        staging = rank.staging_pool.acquire(nbytes, name=f"rstage:req{rreq.req_id}")
        if functional:
            staging.data[:nbytes] = payload
        rreq.staging = staging
        rreq.data_ready.succeed()
        op = rank.device.unpack_op(
            staging,
            rreq.layout,
            rreq.user_buffer,
            dest_offset=rreq.user_offset,
            label=f"unpack:req{rreq.req_id}",
        )
        yield rank.cpu.request()
        try:
            handle = yield from rank.scheme.submit(op, label=f"unpack:req{rreq.req_id}")
        finally:
            rank.cpu.release()
        rreq.op_handle = handle
        yield handle.done_event
        rank.staging_pool.release(staging)
        rreq.staging = None
        rreq._complete()

    def _receiver_direct(self, rank: "Rank", rreq: RecvRequest) -> Generator:
        """DirectIPC receive: fuse a peer load-store kernel [24]."""
        record = rreq.record
        assert record is not None
        sreq: SendRequest = record.sender_context
        op = rank.device.direct_ipc_op(
            sreq.user_buffer,
            sreq.layout.shifted(sreq.user_offset),
            rreq.user_buffer,
            rreq.layout.shifted(rreq.user_offset),
            peer_bandwidth=self.cluster.system.gpu_gpu.bandwidth,
            label=f"ipc:req{rreq.req_id}",
        )
        yield rank.cpu.request()
        try:
            handle = yield from rank.scheme.submit(op, label=f"ipc:req{rreq.req_id}")
        finally:
            rank.cpu.release()
        rreq.op_handle = handle
        yield handle.done_event
        record.fin_event.succeed(
            delay=self.cluster.control_latency(rreq.rank, record.source)
        )
        rreq.data_ready.succeed()
        rreq._complete()

    def _release_send_staging(self, sreq: SendRequest) -> None:
        if sreq.staging is not None:
            self.ranks[sreq.rank].staging_pool.release(sreq.staging)
            sreq.staging = None


_SENDER_PROCS = {
    EAGER: sender_eager,
    RPUT: sender_rput,
    RGET: sender_rget,
    DIRECT: sender_direct,
    PIPELINE: sender_pipeline,
}


class Rank:
    """One MPI process: the user-facing communication API."""

    def __init__(self, runtime: Runtime, site: RankSite, scheme_factory: SchemeFactory):
        from ..sim.resources import Resource  # local import avoids cycle at module load

        self.runtime = runtime
        self.site = site
        self.sim: Simulator = runtime.sim
        self.rank_id = site.rank
        self.device = site.device
        self.trace = Trace()
        self.scheme: PackingScheme = scheme_factory(site, self.trace)
        self.matching = MatchingEngine(self.rank_id)
        #: serializes all CPU work of this rank (single-threaded progress)
        self.cpu = Resource(self.sim, capacity=1, name=f"r{self.rank_id}:cpu")
        self.layout_cache = LayoutCache()
        #: registered staging-buffer pool (real runtimes never
        #: cudaMalloc per message; see docs/cost_model.md)
        self.staging_pool = BufferPool(
            self.device.memory, functional=self.device.functional
        )
        self._layout_memo: Dict[tuple, DataLayout] = {}
        #: signatures whose flatten cost has been charged (cache hits)
        self._layout_paid: set = set()

    # -- argument validation ----------------------------------------------------
    def _validate_endpoint(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.runtime.size:
            raise ValueError(
                f"{what} rank {peer} outside communicator of size "
                f"{self.runtime.size}"
            )
        if peer == self.rank_id:
            raise ValueError(f"self-messaging is not supported ({what}={peer})")

    @staticmethod
    def _validate_buffer(
        buffer: GPUBuffer, layout: DataLayout, offset: int, what: str
    ) -> None:
        if layout.num_blocks == 0:
            return
        lo = int(layout.offsets[0]) + offset
        hi = int(layout.offsets[-1] + layout.lengths[-1]) + offset
        if lo < 0 or hi > buffer.nbytes:
            raise ValueError(
                f"{what} layout spans [{lo}, {hi}) outside buffer "
                f"{buffer.name} of {buffer.nbytes} B"
            )

    # -- datatype handling -----------------------------------------------------
    def resolve_layout(self, datatype: TypeArg, count: int = 1) -> DataLayout:
        """Flattened layout of ``count`` instances (cached per rank).

        Free of simulated cost — use :meth:`resolve_layout_timed` on
        per-message paths where layout extraction consumes CPU.
        """
        if isinstance(datatype, DataLayout):
            return datatype.replicate(count) if count != 1 else datatype
        key = (datatype.signature(), count)
        memo = self._layout_memo.get(key)
        if memo is None:
            memo = self.layout_cache.get_or_flatten(datatype).replicate(count)
            self._layout_memo[key] = memo
        return memo

    def resolve_layout_timed(
        self, datatype: TypeArg, count: int = 1
    ) -> Generator[Event, None, DataLayout]:
        """Layout lookup that charges flatten cost on a cache miss.

        Models the datatype-processing economics of [24]: a committed
        type's layout is extracted ("flattened on the fly") the first
        time it is used and cached; with the cache disabled
        (``Runtime(layout_cache_enabled=False)``) every message re-walks
        the datatype tree — base cost plus a per-block term — charged
        to the ``SCHED`` bucket of this rank's trace.
        """
        if isinstance(datatype, DataLayout):
            return datatype.replicate(count) if count != 1 else datatype
        key = (datatype.signature(), count)
        memo = self._layout_memo.get(key)
        hit = key in self._layout_paid and self.runtime.layout_cache_enabled
        if memo is None:
            memo = self.layout_cache.get_or_flatten(datatype).replicate(count)
            self._layout_memo[key] = memo
        if not hit:
            self._layout_paid.add(key)
            cost = (
                self.runtime.flatten_base_cost
                + memo.num_blocks * self.runtime.flatten_block_cost
            )
            start = self.sim.now
            yield self.sim.timeout(cost)
            self.trace.charge(Category.SCHED, start, self.sim.now, label="flatten")
        return memo

    # -- nonblocking API ------------------------------------------------------------
    def isend(
        self,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        dest: int,
        tag: int = 0,
        offset: int = 0,
    ) -> Generator[Event, None, SendRequest]:
        """Nonblocking send of ``count`` datatype instances.

        Generator: drive with ``yield from``; returns the
        :class:`SendRequest`.  For non-contiguous layouts the packing
        operation is submitted to this rank's scheme *inline* — exactly
        where the schemes differ (GPU-Sync blocks here; the fusion
        design only enqueues).
        """
        self._validate_endpoint(dest, "dest")
        layout = yield from self.resolve_layout_timed(datatype, count)
        self._validate_buffer(buffer, layout, offset, "send")
        sreq = SendRequest(
            self.sim, self.rank_id, dest, tag, layout, buffer, offset
        )
        use_direct = (
            self.runtime.enable_direct_ipc
            and dest != self.rank_id
            and self.runtime.cluster.same_node(self.rank_id, dest)
        )
        if use_direct:
            protocol = DIRECT
        elif layout.size <= self.runtime.eager_threshold:
            protocol = EAGER
        elif (
            self.runtime.host_staging_threshold is not None
            and layout.size >= self.runtime.host_staging_threshold
        ):
            protocol = PIPELINE
        else:
            protocol = self.runtime.rendezvous_protocol
        sreq.protocol = protocol

        if protocol != DIRECT and not layout.is_contiguous:
            staging = self.staging_pool.acquire(layout.size, name=f"sstage:req{sreq.req_id}")
            op = self.device.pack_op(
                buffer,
                layout,
                staging,
                source_offset=offset,
                label=f"pack:req{sreq.req_id}",
            )
            yield self.cpu.request()
            try:
                handle = yield from self.scheme.submit(op, label=f"pack:req{sreq.req_id}")
                # Every MPI call enters the progress engine once — so a
                # bulk of isends pays the scheme's per-call completion
                # poll over everything already outstanding (this is
                # where GPU-Async's event queries pile up, §V-B).
                yield from self.scheme.progress_tick()
            finally:
                self.cpu.release()
            sreq.op_handle = handle
            sreq.staging = staging

        record = MessageRecord(
            seq=self.runtime._next_seq(),
            source=self.rank_id,
            dest=dest,
            tag=tag,
            nbytes=layout.size,
            protocol=protocol,
            sim=self.sim,
        )
        self.sim.process(
            _SENDER_PROCS[protocol](self.runtime, self, sreq, record),
            name=f"send:msg{record.seq}",
        )
        return sreq

    def irecv(
        self,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        source: int,
        tag: int = 0,
        offset: int = 0,
    ) -> RecvRequest:
        """Nonblocking receive (posting is cheap; returns immediately)."""
        if source != ANY_SOURCE:
            self._validate_endpoint(source, "source")
        layout = self.resolve_layout(datatype, count)
        self._validate_buffer(buffer, layout, offset, "receive")
        rreq = RecvRequest(self.sim, self.rank_id, source, tag, layout, buffer, offset)
        rreq.origin_datatype = datatype
        result = self.matching.post_receive(rreq)
        if result is not None:
            self.runtime._on_match(self, result)
        return rreq

    # -- completion --------------------------------------------------------------
    def waitall(self, requests: Iterable[Request]) -> Generator[Event, None, None]:
        """Block until all requests complete (``MPI_Waitall``).

        Each progress iteration first gives the scheme its sync-point
        flush (§IV-C scenario 1: "the communication progress engine has
        no more operations to request"), then sleeps until a request
        completes or the poll interval elapses.
        """
        reqs = list(requests)
        while True:
            yield self.cpu.request()
            try:
                yield from self.scheme.flush()
                yield from self.scheme.progress_tick()
            finally:
                self.cpu.release()
            pending = [r for r in reqs if not r.done]
            if not pending:
                return
            watch = [r.completion for r in pending]
            watch.append(self.sim.timeout(self.runtime.poll_interval))
            yield self.sim.any_of(watch)

    def wait(self, request: Request) -> Generator[Event, None, None]:
        """Block until one request completes (``MPI_Wait``)."""
        yield from self.waitall([request])

    def waitany(self, requests: Sequence[Request]) -> Generator[Event, None, int]:
        """Block until *some* request completes; returns its index
        (``MPI_Waitany``).  Progress semantics match :meth:`waitall`."""
        reqs = list(requests)
        if not reqs:
            raise ValueError("waitany requires at least one request")
        while True:
            yield self.cpu.request()
            try:
                yield from self.scheme.flush()
                yield from self.scheme.progress_tick()
            finally:
                self.cpu.release()
            for index, req in enumerate(reqs):
                if req.done:
                    return index
            watch = [r.completion for r in reqs]
            watch.append(self.sim.timeout(self.runtime.poll_interval))
            yield self.sim.any_of(watch)

    def waitsome(self, requests: Sequence[Request]) -> Generator[Event, None, List[int]]:
        """Block until at least one request completes; returns the
        indices of every completed request (``MPI_Waitsome``)."""
        reqs = list(requests)
        first = yield from self.waitany(reqs)
        done = [i for i, r in enumerate(reqs) if r.done]
        assert first in done
        return done

    def test(self, request: Request) -> Generator[Event, None, bool]:
        """Nonblocking completion check with progress (``MPI_Test``).

        One progress-engine pass (flush + scheme tick), then the status
        read — matching MPI's requirement that ``MPI_Test`` advances
        the progress engine.
        """
        yield self.cpu.request()
        try:
            yield from self.scheme.flush()
            yield from self.scheme.progress_tick()
        finally:
            self.cpu.release()
        return request.done

    def testall(self, requests: Iterable[Request]) -> Generator[Event, None, bool]:
        """Nonblocking check of a whole set (``MPI_Testall``)."""
        reqs = list(requests)
        yield self.cpu.request()
        try:
            yield from self.scheme.flush()
            yield from self.scheme.progress_tick()
        finally:
            self.cpu.release()
        return all(r.done for r in reqs)

    # -- blocking conveniences ------------------------------------------------------
    def send(
        self,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        dest: int,
        tag: int = 0,
        offset: int = 0,
    ) -> Generator[Event, None, None]:
        """Blocking send."""
        sreq = yield from self.isend(buffer, datatype, count, dest, tag, offset)
        yield from self.waitall([sreq])

    def recv(
        self,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        source: int,
        tag: int = 0,
        offset: int = 0,
    ) -> Generator[Event, None, None]:
        """Blocking receive."""
        rreq = self.irecv(buffer, datatype, count, source, tag, offset)
        yield from self.waitall([rreq])

    # -- persistent requests (MPI_Send_init family) ------------------------------------
    def send_init(self, buffer, datatype, count, dest, tag=0, offset=0):
        """Create a persistent send pattern (``MPI_Send_init``)."""
        from .persistent import send_init as _send_init

        return _send_init(self, buffer, datatype, count, dest, tag, offset)

    def recv_init(self, buffer, datatype, count, source, tag=0, offset=0):
        """Create a persistent receive pattern (``MPI_Recv_init``)."""
        from .persistent import recv_init as _recv_init

        return _recv_init(self, buffer, datatype, count, source, tag, offset)

    def start(self, request):
        """Activate one persistent request (``MPI_Start``); generator."""
        result = yield from request.start()
        return result

    def startall(self, requests):
        """Activate a set of persistent requests (``MPI_Startall``)."""
        from .persistent import startall as _startall

        result = yield from _startall(self, requests)
        return result

    # -- MPI-level explicit pack/unpack (Algorithm 1) ----------------------------------
    def pack(
        self,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        packed: GPUBuffer,
        *,
        offset: int = 0,
        packed_offset: int = 0,
    ) -> Generator[Event, None, int]:
        """Blocking ``MPI_Pack``; returns packed byte count.

        Blocking semantics mean the scheme must flush and wait at the
        call boundary — the synchronization Algorithm 1 cannot avoid.
        """
        layout = self.resolve_layout(datatype, count)
        op = self.device.pack_op(
            buffer, layout, packed, source_offset=offset, packed_offset=packed_offset
        )
        yield self.cpu.request()
        try:
            handle = yield from self.scheme.submit(op, label="MPI_Pack")
            yield from self.scheme.flush()
            yield from self.scheme.wait([handle])
        finally:
            self.cpu.release()
        return layout.size

    def unpack(
        self,
        packed: GPUBuffer,
        datatype: TypeArg,
        count: int,
        buffer: GPUBuffer,
        *,
        packed_offset: int = 0,
        offset: int = 0,
    ) -> Generator[Event, None, int]:
        """Blocking ``MPI_Unpack``; returns consumed byte count."""
        layout = self.resolve_layout(datatype, count)
        op = self.device.unpack_op(
            packed, layout, buffer, packed_offset=packed_offset, dest_offset=offset
        )
        yield self.cpu.request()
        try:
            handle = yield from self.scheme.submit(op, label="MPI_Unpack")
            yield from self.scheme.flush()
            yield from self.scheme.wait([handle])
        finally:
            self.cpu.release()
        return layout.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rank {self.rank_id} scheme={self.scheme.name}>"
