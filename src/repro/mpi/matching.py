"""Message matching: posted-receive and unexpected-message queues.

Implements the MPI matching rules the receiver side of the framework
depends on (§IV-B2): an incoming envelope matches the oldest posted
receive with the same ``(source, tag)`` — wildcards allowed — and
otherwise parks in the unexpected queue until a matching ``MPI_Irecv``
arrives.  Matching order preserves MPI's non-overtaking guarantee
because both queues are FIFO and envelopes from one sender are
delivered in issue order by the runtime.

The paper's receiver-side design distinguishes exactly these two cases:
for *expected* messages a callback enqueues the unpack request the
moment data lands; for *unexpected* messages the enqueue happens when
the application finally posts the receive.  :class:`MatchingEngine`
surfaces that via the ``expected`` flag on the match result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..sim.engine import Event, Simulator
from .request import RecvRequest

__all__ = ["ANY_SOURCE", "ANY_TAG", "MessageRecord", "MatchResult", "MatchingEngine"]

#: wildcard source (``MPI_ANY_SOURCE``)
ANY_SOURCE = -1
#: wildcard tag (``MPI_ANY_TAG``)
ANY_TAG = -1


@dataclass
class MessageRecord:
    """Receiver-side state of one incoming message.

    Created when the envelope (eager header or rendezvous RTS) arrives.
    ``payload`` is filled by the wire-transfer process; ``cts_sent`` and
    ``payload_ready`` are the protocol rendezvous points.
    """

    seq: int
    source: int
    dest: int
    tag: int
    nbytes: int
    protocol: str
    sim: Simulator
    #: packed payload bytes once they land on the receiver
    payload: Optional[np.ndarray] = None
    #: fires when the receiver has matched + sent clear-to-send (RPUT)
    cts_event: Event = None  # type: ignore[assignment]
    #: fires when payload bytes are available at the receiver
    payload_ready: Event = None  # type: ignore[assignment]
    #: fires at the sender when the receiver's FIN arrives (RGET/direct)
    fin_event: Event = None  # type: ignore[assignment]
    #: the receive request this record matched (set at match time)
    matched: Optional[RecvRequest] = None
    #: sender-side context for one-sided reads / DirectIPC
    sender_context: object = None
    #: True once the envelope reached the receiver's matching engine —
    #: duplicate deliveries (watchdog RTS retransmits under fault
    #: injection) are deduplicated on this flag instead of matching twice
    envelope_delivered: bool = False

    def __post_init__(self) -> None:
        if self.cts_event is None:
            self.cts_event = Event(self.sim, name=f"msg{self.seq}:cts")
        if self.payload_ready is None:
            self.payload_ready = Event(self.sim, name=f"msg{self.seq}:payload")
        if self.fin_event is None:
            self.fin_event = Event(self.sim, name=f"msg{self.seq}:fin")


@dataclass(frozen=True)
class MatchResult:
    """Outcome of pairing a receive with an incoming message."""

    record: MessageRecord
    request: RecvRequest
    #: True when the receive was already posted at envelope arrival
    expected: bool


class MatchingEngine:
    """Per-rank matching state."""

    def __init__(self, rank: int):
        self.rank = rank
        self._posted: List[RecvRequest] = []
        self._unexpected: List[MessageRecord] = []
        #: matches produced, oldest first, for the runtime to drain
        self.match_log: List[MatchResult] = []
        self.unexpected_peak = 0

    # -- queries -------------------------------------------------------------
    @property
    def posted_count(self) -> int:
        """Currently posted-but-unmatched receives."""
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        """Currently queued unexpected messages."""
        return len(self._unexpected)

    @staticmethod
    def _matches(request: RecvRequest, record: MessageRecord) -> bool:
        src_ok = request.peer in (ANY_SOURCE, record.source)
        tag_ok = request.tag in (ANY_TAG, record.tag)
        return src_ok and tag_ok

    # -- the two entry points ---------------------------------------------------
    def post_receive(self, request: RecvRequest) -> Optional[MatchResult]:
        """Register an ``MPI_Irecv``; matches the unexpected queue first."""
        for i, record in enumerate(self._unexpected):
            if self._matches(request, record):
                del self._unexpected[i]
                return self._pair(record, request, expected=False)
        self._posted.append(request)
        return None

    def deliver_envelope(self, record: MessageRecord) -> Optional[MatchResult]:
        """Process an arriving envelope; matches posted receives first."""
        for i, request in enumerate(self._posted):
            if self._matches(request, record):
                del self._posted[i]
                return self._pair(record, request, expected=True)
        self._unexpected.append(record)
        self.unexpected_peak = max(self.unexpected_peak, len(self._unexpected))
        return None

    def _pair(
        self, record: MessageRecord, request: RecvRequest, expected: bool
    ) -> MatchResult:
        if record.nbytes > request.layout.size:
            raise ValueError(
                f"message of {record.nbytes} B truncated into receive of "
                f"{request.layout.size} B (rank {self.rank}, tag {record.tag})"
            )
        record.matched = request
        request.record = record
        result = MatchResult(record=record, request=request, expected=expected)
        self.match_log.append(result)
        return result
