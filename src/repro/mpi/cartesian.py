"""Cartesian process topology (``MPI_Cart_create`` family).

The paper's motivating applications decompose an n-D domain over a
Cartesian process grid and halo-exchange with their topological
neighbors (Fig. 3; LLNL Comb [33]).  This module provides the topology
arithmetic an application needs to run that pattern on *any* number of
ranks:

* :class:`CartComm` — maps ranks ↔ grid coordinates (row-major, like
  MPI), with optional per-dimension periodicity;
* :meth:`CartComm.shift` — the ``MPI_Cart_shift`` neighbor query;
* :meth:`CartComm.neighbor_exchanges` — the full halo schedule for one
  rank: for every neighbor direction, the peer rank and the send/recv
  :class:`~repro.datatypes.constructors.Subarray` types over the local
  ghosted array, ready to feed
  :func:`repro.mpi.collectives.neighbor_alltoall`.

Boundary handling matches MPI: a non-periodic edge has no neighbor
(``PROC_NULL``), and its exchanges are simply omitted from the
schedule.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..datatypes.primitives import DOUBLE, Primitive
from ..workloads.halo import HaloSchedule, _build_schedule

__all__ = ["PROC_NULL", "CartComm"]

#: the MPI_PROC_NULL sentinel: no neighbor on a non-periodic boundary
PROC_NULL = -1


class CartComm:
    """A Cartesian view over ranks ``0 .. prod(dims)-1`` (row-major)."""

    def __init__(self, dims: Sequence[int], periods: Optional[Sequence[bool]] = None):
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"invalid Cartesian dims {dims!r}")
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if periods is None:
            periods = [False] * len(self.dims)
        if len(periods) != len(self.dims):
            raise ValueError("periods must match dims in length")
        self.periods: Tuple[bool, ...] = tuple(bool(p) for p in periods)

    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self.dims)

    @property
    def size(self) -> int:
        """Total ranks in the grid."""
        out = 1
        for d in self.dims:
            out *= d
        return out

    # -- rank <-> coordinates ------------------------------------------------
    def coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of ``rank`` (``MPI_Cart_coords``)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of {self.size}")
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at ``coords`` (``MPI_Cart_rank``), honoring periodicity."""
        if len(coords) != self.ndim:
            raise ValueError("coordinate arity mismatch")
        rank = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return PROC_NULL
            rank = rank * extent + c
        return rank

    def shift(self, rank: int, dimension: int, displacement: int = 1) -> Tuple[int, int]:
        """``MPI_Cart_shift``: (source, destination) of a shift."""
        if not 0 <= dimension < self.ndim:
            raise ValueError(f"dimension {dimension} outside {self.ndim}-D grid")
        coords = list(self.coords(rank))
        fwd = list(coords)
        fwd[dimension] += displacement
        back = list(coords)
        back[dimension] -= displacement
        return self.rank_of(back), self.rank_of(fwd)

    def neighbor(self, rank: int, direction: Sequence[int]) -> int:
        """Rank one step away in ``direction`` (entries in {-1, 0, 1})."""
        coords = [c + d for c, d in zip(self.coords(rank), direction)]
        return self.rank_of(coords)

    # -- halo schedules ---------------------------------------------------------
    def neighbor_exchanges(
        self,
        rank: int,
        interior: Sequence[int],
        *,
        ghost: int = 1,
        base: Primitive = DOUBLE,
        corners: bool = True,
    ) -> Tuple[HaloSchedule, List[Tuple[int, object, object]]]:
        """This rank's halo exchange over an ``interior``-sized block.

        Returns ``(schedule, exchanges)`` where ``exchanges`` is the
        keyed ``(peer, send_type, recv_type, send_key, recv_key)`` list
        accepted by :func:`repro.mpi.collectives.neighbor_alltoall`.
        Keys are canonical direction indices, identical on every rank,
        so a boundary rank's shorter schedule still pairs correctly:
        the send toward direction *d* (key ``D(d)``) matches the peer's
        receive for its *d*-facing ghost, which the peer posts with key
        ``D(-d)`` — the direction as seen from the sender.  Directions
        whose neighbor is ``PROC_NULL`` are omitted symmetrically.
        """
        if len(interior) != self.ndim:
            raise ValueError("interior arity must match grid dimensionality")
        schedule = _build_schedule(tuple(interior), ghost, corners, base)
        by_dir = {n.direction: n for n in schedule.neighbors}
        all_dirs = sorted(
            d for d in itertools.product((-1, 0, 1), repeat=self.ndim)
            if any(x != 0 for x in d)
        )
        key_of = {d: i for i, d in enumerate(all_dirs)}
        exchanges: List[Tuple[int, object, object, int, int]] = []
        for direction in sorted(by_dir):
            peer = self.neighbor(rank, direction)
            if peer == PROC_NULL:
                continue
            opposite = tuple(-d for d in direction)
            exchanges.append(
                (
                    peer,
                    by_dir[direction].send_type,      # my d-boundary out
                    by_dir[direction].recv_type,      # my d-facing ghost in
                    key_of[direction],                # tagged by my send dir
                    key_of[opposite],                 # peer sent toward -d
                )
            )
        return schedule, exchanges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marks = "".join("p" if p else "-" for p in self.periods)
        return f"<CartComm {'x'.join(map(str, self.dims))} [{marks}]>"
