"""Point-to-point wire protocols: eager, rendezvous RGET/RPUT, DirectIPC.

These are the sender- and receiver-side state machines of §IV-B,
implemented as simulation processes spawned per message:

* **eager** — small messages: once packed, envelope and payload travel
  together; the receiver matches on arrival.
* **RGET** — rendezvous where the *receiver* pulls: the sender packs,
  then sends RTS; the receiver RDMA-READs the packed buffer and FINs.
  Packing delays the handshake.
* **RPUT** — rendezvous where the *sender* pushes: RTS goes out
  *before* packing completes, the receiver CTSes as soon as it has
  matched, and the sender writes when ``pack_done AND cts``.  The
  handshake is overlapped with the packing operation — the overlap the
  proposed framework is designed to exploit (§IV-B1).
* **direct** — intra-node zero-copy: no packing at all; the receiver
  fuses a DirectIPC load-store kernel over NVLink/PCIe [24].

Protocol processes never charge CPU-bucket costs themselves (control
packets ride the NIC); CPU costs live in the schemes.  Byte movement
happens at simulated completion instants, keeping memory state
consistent with the clock.

Fault tolerance
---------------
Under an attached :class:`~repro.sim.faults.FaultPlan`, RTS and CTS
control packets can be lost.  Rendezvous senders therefore arm a
**control watchdog** (:func:`arm_control_watchdog`): if the expected
response (CTS for RPUT/PIPELINE, payload pull for RGET) has not arrived
within a retransmission timeout, the RTS is re-sent with capped
exponential backoff.  The receiver deduplicates retransmitted RTS on
the record's ``envelope_delivered`` flag and re-offers a lost CTS, so
duplicates are harmless — MPI matching happens exactly once per
message.  Watchdogs are armed only when a fault plan is attached;
fault-free runs are bit-identical to the watchdog-free implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional


from ..net.transfer import rdma_read, rdma_write
from ..sim.engine import Event, Process
from ..sim.faults import FaultError
from .matching import MessageRecord
from .request import RecvRequest, SendRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .communicator import Rank, Runtime

__all__ = [
    "EAGER",
    "RGET",
    "RPUT",
    "DIRECT",
    "PIPELINE",
    "WatchdogStats",
    "arm_control_watchdog",
    "sender_eager",
    "sender_rput",
    "sender_rget",
    "sender_direct",
    "sender_pipeline",
    "receiver_pull_rget",
]

#: hard cap on RTS retransmissions per message — diagnostic backstop,
#: unreachable for valid fault specs (drop probability <= 0.9)
MAX_CONTROL_RETRANSMITS = 10_000
#: retransmission-timeout growth ceiling, in multiples of the base RTO
WATCHDOG_BACKOFF_CAP = 16.0


@dataclass
class WatchdogStats:
    """Control-plane recovery counters of one :class:`Runtime`."""

    #: RTS packets re-sent by sender watchdogs
    rts_retransmits: int = 0
    #: CTS offers repeated after a duplicate RTS found the CTS lost
    cts_resends: int = 0

    @property
    def total(self) -> int:
        """Total control-plane recovery actions."""
        return self.rts_retransmits + self.cts_resends


def arm_control_watchdog(
    runtime: "Runtime", rank: "Rank", record: MessageRecord, awaited: Event
) -> Optional[Process]:
    """Retransmit ``record``'s RTS until ``awaited`` fires.

    Armed only under fault injection (``sim.faults`` attached) so
    fault-free runs keep their exact event timeline.  The retransmission
    timeout starts at four control one-way latencies plus one progress
    poll interval and doubles per retry, capped at
    :data:`WATCHDOG_BACKOFF_CAP` times the base.
    """
    sim = rank.sim
    if sim.faults is None:
        return None
    base_rto = (
        4.0 * runtime.cluster.control_latency(record.source, record.dest)
        + runtime.poll_interval
    )

    def watchdog() -> Generator[Event, None, None]:
        rto = base_rto
        retransmits = 0
        while not awaited.triggered:
            yield sim.any_of([awaited, sim.timeout(rto)])
            if awaited.triggered:
                return
            retransmits += 1
            if retransmits > MAX_CONTROL_RETRANSMITS:
                raise FaultError(
                    f"msg{record.seq}: control watchdog exhausted after "
                    f"{retransmits} RTS retransmissions"
                )
            runtime.recovery.rts_retransmits += 1
            sim.obs.count("rts_retransmits_total")
            if sim.obs.enabled:
                sim.obs.instant(
                    "proto", "rts-retransmit", sim.now, msg=record.seq,
                )
            runtime._deliver_envelope(record)
            rto = min(rto * 2.0, WATCHDOG_BACKOFF_CAP * base_rto)

    return sim.process(watchdog(), name=f"watchdog:msg{record.seq}")

EAGER = "eager"
RGET = "rget"
RPUT = "rput"
DIRECT = "direct"
PIPELINE = "pipeline"


def _note_rts(rank: "Rank", record: MessageRecord) -> None:
    """Telemetry for a first (non-retransmitted) rendezvous RTS."""
    obs = rank.sim.obs
    obs.count("proto_rts_sent_total")
    if obs.enabled:
        obs.instant(
            "proto", "rts", rank.sim.now,
            track=f"rank{record.source}",
            msg=record.seq, dest=record.dest, protocol=record.protocol,
        )


def _snapshot_payload(sreq: SendRequest):
    """Copy the packed bytes out of the sender's staging at wire time.

    Returns ``None`` in dry (non-functional) mode — timing is identical
    and the receiver skips the byte copies.
    """
    nbytes = sreq.layout.size
    if not sreq.user_buffer.functional:
        return None
    if sreq.staging is not None:
        return sreq.staging.data[:nbytes].copy()
    # Contiguous send: the user buffer region is the packed form.
    start = sreq.user_offset
    return sreq.user_buffer.data[start : start + nbytes].copy()


def _pack_done_event(rank: "Rank", sreq: SendRequest) -> Event:
    """Event firing when the send payload is ready to hit the wire."""
    if sreq.op_handle is not None:
        return sreq.op_handle.done_event
    done = Event(rank.sim, name=f"req{sreq.req_id}:nopack")
    done.succeed()
    return done


def sender_eager(
    runtime: "Runtime", rank: "Rank", sreq: SendRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """Eager protocol, sender side: pack → (envelope+payload) → done."""
    yield _pack_done_event(rank, sreq)
    snapshot = _snapshot_payload(sreq)
    yield from rdma_write(runtime.cluster, sreq.rank, sreq.peer, sreq.nbytes)
    record.payload = snapshot
    record.payload_ready.succeed()
    runtime._deliver_envelope(record, delay=0.0)
    sreq.wire_done.succeed()
    runtime._release_send_staging(sreq)
    sreq._complete()


def sender_rput(
    runtime: "Runtime", rank: "Rank", sreq: SendRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """RPUT: RTS early; write when pack completes *and* CTS arrives."""
    _note_rts(rank, record)
    runtime._deliver_envelope(record)  # RTS leaves immediately
    arm_control_watchdog(runtime, rank, record, record.cts_event)
    pack_done = _pack_done_event(rank, sreq)
    yield rank.sim.all_of([pack_done, record.cts_event])
    snapshot = _snapshot_payload(sreq)
    yield from rdma_write(runtime.cluster, sreq.rank, sreq.peer, sreq.nbytes)
    record.payload = snapshot
    # The receiver learns of completion via the FIN packet.
    record.payload_ready.succeed(delay=runtime.cluster.control_latency(sreq.rank, sreq.peer))
    sreq.wire_done.succeed()
    runtime._release_send_staging(sreq)
    sreq._complete()


def sender_rget(
    runtime: "Runtime", rank: "Rank", sreq: SendRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """RGET: pack first, then RTS; the receiver pulls and FINs."""
    yield _pack_done_event(rank, sreq)
    record.sender_context = sreq
    _note_rts(rank, record)
    runtime._deliver_envelope(record)
    # The pull starting (payload landing) proves the RTS arrived.
    arm_control_watchdog(runtime, rank, record, record.payload_ready)
    yield record.fin_event
    sreq.wire_done.succeed()
    runtime._release_send_staging(sreq)
    sreq._complete()


def sender_direct(
    runtime: "Runtime", rank: "Rank", sreq: SendRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """DirectIPC: expose the user buffer; the receiver load-stores it."""
    record.sender_context = sreq
    runtime._deliver_envelope(record)
    yield record.fin_event
    sreq.wire_done.succeed()
    sreq._complete()


def sender_pipeline(
    runtime: "Runtime", rank: "Rank", sreq: SendRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """Host-staged chunked rendezvous (the classic MVAPICH large-message
    path for systems where GPUDirect RDMA underperforms).

    RPUT-style handshake, then the packed payload moves in
    ``runtime.pipeline_chunk_bytes`` chunks through a three-stage
    pipeline: device→host over the sender's CPU–GPU link, host→host
    over the fabric, host→device on the receiver.  Each stage's link
    resource serializes its own chunks, so chunk *k*'s D2H overlaps
    chunk *k−1*'s wire time and chunk *k−2*'s H2D — classic pipelining,
    with the chunk size trading per-chunk latency against overlap
    (see the pipeline ablation benchmark).
    """
    from ..net.transfer import staged_host_copy  # local: avoid cycle at import

    _note_rts(rank, record)
    runtime._deliver_envelope(record)  # RTS leaves immediately
    arm_control_watchdog(runtime, rank, record, record.cts_event)
    pack_done = _pack_done_event(rank, sreq)
    yield rank.sim.all_of([pack_done, record.cts_event])
    snapshot = _snapshot_payload(sreq)

    sim = rank.sim
    cluster = runtime.cluster
    chunk_bytes = runtime.pipeline_chunk_bytes
    total = sreq.nbytes
    chunks = [
        min(chunk_bytes, total - off) for off in range(0, total, chunk_bytes)
    ] or [0]
    done_events = []

    def chunk_flow(nbytes: int):
        yield from staged_host_copy(cluster, sreq.rank, nbytes, to_host=True)
        yield from rdma_write(cluster, sreq.rank, sreq.peer, nbytes)
        yield from staged_host_copy(cluster, sreq.peer, nbytes, to_host=False)

    for nbytes in chunks:
        done_events.append(sim.process(chunk_flow(nbytes), name="pipe-chunk"))
    yield sim.all_of(done_events)

    record.payload = snapshot
    record.payload_ready.succeed()
    sreq.wire_done.succeed()
    runtime._release_send_staging(sreq)
    sreq._complete()


def receiver_pull_rget(
    runtime: "Runtime", rank: "Rank", rreq: RecvRequest, record: MessageRecord
) -> Generator[Event, None, None]:
    """RGET receiver side: RDMA-READ the sender's packed buffer, FIN."""
    yield from rdma_read(runtime.cluster, rreq.rank, record.source, record.nbytes)
    sreq: SendRequest = record.sender_context  # set before RTS was sent
    record.payload = _snapshot_payload(sreq)
    record.payload_ready.succeed()
    record.fin_event.succeed(
        delay=runtime.cluster.control_latency(rreq.rank, record.source)
    )
