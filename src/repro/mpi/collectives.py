"""Collective operations over the point-to-point runtime.

The paper situates datatype fusion inside the broader GPU-collectives
literature ([11]–[13]) and its bulk-transfer scenario — "multiple
non-contiguous data transfers to multiple neighbors" — is exactly what
a datatype-typed collective generates.  This module provides the
collectives the examples and benchmarks use, implemented with the same
nonblocking primitives an MPI library would lower them to:

* :func:`alltoall` — personalized exchange of one datatype instance per
  peer (the FFT-transpose pattern: every send is non-contiguous, and a
  fusing runtime batches all ``P-1`` packing kernels);
* :func:`allgather` — ring-free direct exchange of one instance from
  everyone to everyone;
* :func:`neighbor_alltoall` — the halo-exchange collective: per-
  neighbor send/recv datatypes (MPI's
  ``MPI_Neighbor_alltoallw`` shape), used by the halo examples;
* :func:`barrier` — dissemination barrier over zero-payload messages.

All are generators to be driven inside a rank's simulation process,
like every other CPU-consuming call.  Tags are drawn from a reserved
high range so collectives never collide with application traffic.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ..datatypes.layout import DataLayout
from ..gpu.memory import GPUBuffer
from .communicator import Rank, TypeArg
from .request import Request

__all__ = ["alltoall", "allgather", "neighbor_alltoall", "barrier", "allreduce"]

#: base tag of the reserved collective range
_COLL_TAG = 1 << 20


def alltoall(
    rank: Rank,
    sendbuf: GPUBuffer,
    send_type: TypeArg,
    recvbuf: GPUBuffer,
    recv_type: TypeArg,
    *,
    tag_round: int = 0,
) -> Generator:
    """Personalized all-to-all: one ``send_type`` instance per peer.

    Peer ``p``'s slice of ``sendbuf`` starts at ``p * extent`` (and
    symmetrically for ``recvbuf``) — the MPI ``MPI_Alltoall`` layout
    generalized to derived datatypes.  The rank's own slice is copied
    through the local data path (no self-message).
    """
    runtime = rank.runtime
    me = rank.rank_id
    send_layout = rank.resolve_layout(send_type, 1)
    recv_layout = rank.resolve_layout(recv_type, 1)
    if send_layout.size != recv_layout.size:
        raise ValueError(
            f"alltoall type sizes disagree: send {send_layout.size} != "
            f"recv {recv_layout.size}"
        )
    tag = _COLL_TAG + tag_round
    requests: List[Request] = []
    for peer in range(runtime.size):
        if peer == me:
            continue
        requests.append(
            rank.irecv(
                recvbuf, recv_layout, 1, peer, tag=tag,
                offset=peer * recv_layout.extent,
            )
        )
    for peer in range(runtime.size):
        if peer == me:
            continue
        sreq = yield from rank.isend(
            sendbuf, send_layout, 1, peer, tag=tag,
            offset=peer * send_layout.extent,
        )
        requests.append(sreq)
    # Local slice: direct device copy (free of wire costs, like a real
    # implementation's memcpy path).
    if sendbuf.functional and recvbuf.functional:
        src_idx = send_layout.gather_index() + me * send_layout.extent
        dst_idx = recv_layout.gather_index() + me * recv_layout.extent
        recvbuf.data[dst_idx] = sendbuf.data[src_idx]
    yield from rank.waitall(requests)


def allgather(
    rank: Rank,
    sendbuf: GPUBuffer,
    send_type: TypeArg,
    recvbuf: GPUBuffer,
    recv_type: TypeArg,
    *,
    tag_round: int = 0,
) -> Generator:
    """All-gather: every rank contributes one ``send_type`` instance.

    Rank ``p``'s contribution lands at ``p * extent`` of everyone's
    ``recvbuf`` (direct exchange; the simulator has no congestion
    incentive for a ring).
    """
    runtime = rank.runtime
    me = rank.rank_id
    send_layout = rank.resolve_layout(send_type, 1)
    recv_layout = rank.resolve_layout(recv_type, 1)
    tag = _COLL_TAG + (1 << 10) + tag_round
    requests: List[Request] = []
    for peer in range(runtime.size):
        if peer == me:
            continue
        requests.append(
            rank.irecv(
                recvbuf, recv_layout, 1, peer, tag=tag,
                offset=peer * recv_layout.extent,
            )
        )
    for peer in range(runtime.size):
        if peer == me:
            continue
        sreq = yield from rank.isend(sendbuf, send_layout, 1, peer, tag=tag)
        requests.append(sreq)
    if sendbuf.functional and recvbuf.functional:
        src_idx = send_layout.gather_index()
        dst_idx = recv_layout.gather_index() + me * recv_layout.extent
        recvbuf.data[dst_idx] = sendbuf.data[src_idx]
    yield from rank.waitall(requests)


def neighbor_alltoall(
    rank: Rank,
    buffer: GPUBuffer,
    exchanges: Sequence[tuple],
    *,
    tag_round: int = 0,
) -> Generator:
    """Halo-exchange collective (``MPI_Neighbor_alltoallw`` shape).

    ``exchanges`` entries are either

    * ``(peer, send_type, recv_type)`` — positional pairing: the peer
      must list its mirrored entry at the same index (fine for the
      symmetric two-rank pattern), or
    * ``(peer, send_type, recv_type, send_key, recv_key)`` — keyed
      pairing: a send tagged ``send_key`` matches the peer's receive
      posted with the same ``recv_key``
      (:meth:`repro.mpi.cartesian.CartComm.neighbor_exchanges` emits
      direction-derived keys so boundary ranks with shorter schedules
      still pair correctly).
    """
    span = max(len(exchanges), 64)
    tag0 = _COLL_TAG + (2 << 10) + tag_round * span
    requests: List[Request] = []
    for i, entry in enumerate(exchanges):
        peer, _send_t, recv_t = entry[0], entry[1], entry[2]
        recv_key = entry[4] if len(entry) == 5 else i
        requests.append(rank.irecv(buffer, recv_t, 1, peer, tag=tag0 + recv_key))
    for i, entry in enumerate(exchanges):
        peer, send_t = entry[0], entry[1]
        send_key = entry[3] if len(entry) == 5 else i
        sreq = yield from rank.isend(buffer, send_t, 1, peer, tag=tag0 + send_key)
        requests.append(sreq)
    yield from rank.waitall(requests)


def allreduce(
    rank: Rank,
    values: "np.ndarray",
    *,
    op: str = "sum",
    tag_round: int = 0,
) -> Generator:
    """All-reduce of a small contiguous double array (recursive doubling).

    The convergence-check collective of iterative solvers: every rank
    contributes ``values`` (float64) and receives the elementwise
    reduction.  Returns the reduced array; ``values`` is not modified.
    ``op`` is ``"sum"``, ``"max"``, or ``"min"``.

    Implementation: recursive doubling over the pt2pt runtime for
    power-of-two sizes, with a fold-in pre/post phase otherwise —
    the classic latency-optimal algorithm for small payloads.
    """
    import numpy as np

    reducers = {"sum": np.add, "max": np.maximum, "min": np.minimum}
    if op not in reducers:
        raise ValueError(f"unsupported reduction {op!r}")
    reduce_fn = reducers[op]
    runtime = rank.runtime
    size = runtime.size
    me = rank.rank_id
    acc = np.array(values, dtype=np.float64).copy()
    if size == 1:
        return acc
    nbytes = acc.nbytes
    layout = DataLayout.contiguous(nbytes)
    sendbuf = rank.device.alloc(nbytes)
    recvbuf = rank.device.alloc(nbytes)
    tag0 = _COLL_TAG + (4 << 10) + tag_round * 64
    try:
        # Largest power of two <= size.
        pof2 = 1
        while pof2 * 2 <= size:
            pof2 *= 2
        rem = size - pof2
        in_core = True
        core_rank = me

        if me < 2 * rem:
            if me % 2 == 0:
                # Fold my value into my odd neighbor, then sit out.
                sendbuf.view(np.float64)[:] = acc
                yield from rank.send(sendbuf, layout, 1, me + 1, tag=tag0)
                in_core = False
            else:
                yield from rank.recv(recvbuf, layout, 1, me - 1, tag=tag0)
                acc = reduce_fn(acc, recvbuf.view(np.float64).copy())
                core_rank = me // 2
        else:
            core_rank = me - rem

        if in_core:
            distance = 1
            round_no = 1
            while distance < pof2:
                peer_core = core_rank ^ distance
                peer = peer_core * 2 + 1 if peer_core < rem else peer_core + rem
                tag = tag0 + round_no
                sendbuf.view(np.float64)[:] = acc
                rreq = rank.irecv(recvbuf, layout, 1, peer, tag=tag)
                sreq = yield from rank.isend(sendbuf, layout, 1, peer, tag=tag)
                yield from rank.waitall([rreq, sreq])
                acc = reduce_fn(acc, recvbuf.view(np.float64).copy())
                distance *= 2
                round_no += 1

        # Post phase: hand results back to the folded-out ranks.
        if me < 2 * rem:
            tag = tag0 + 63
            if me % 2 == 1:
                sendbuf.view(np.float64)[:] = acc
                yield from rank.send(sendbuf, layout, 1, me - 1, tag=tag)
            else:
                yield from rank.recv(recvbuf, layout, 1, me + 1, tag=tag)
                acc = recvbuf.view(np.float64).copy()
        return acc
    finally:
        sendbuf.free()
        recvbuf.free()


def barrier(rank: Rank, *, tag_round: int = 0) -> Generator:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of token pairs."""
    runtime = rank.runtime
    size = runtime.size
    if size == 1:
        return
    me = rank.rank_id
    token = rank.device.alloc(8)
    try:
        distance = 1
        round_no = 0
        while distance < size:
            to = (me + distance) % size
            frm = (me - distance) % size
            tag = _COLL_TAG + (3 << 10) + tag_round * 64 + round_no
            rreq = rank.irecv(token, DataLayout.contiguous(8), 1, frm, tag=tag)
            sreq = yield from rank.isend(
                token, DataLayout.contiguous(8), 1, to, tag=tag
            )
            yield from rank.waitall([rreq, sreq])
            distance *= 2
            round_no += 1
    finally:
        token.free()
