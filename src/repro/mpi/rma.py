"""One-sided communication: windows, Put/Get with derived datatypes.

The zero-copy datatype literature the paper builds on ([40]'s
send-gather/receive-scatter, [25]'s FALCON-X load-store processing)
lives in MPI's one-sided model: expose a window of memory and let peers
``MPI_Put``/``MPI_Get`` non-contiguous regions of it directly.  This
module implements active-target RMA over the runtime:

* :meth:`Runtime.win_create`-style collective creation via
  :func:`create_windows` — every rank contributes one buffer;
* :meth:`Window.put` / :meth:`Window.get` — datatype-typed one-sided
  transfers.  Intra-node with ``enable_direct_ipc`` they become a
  single **DirectIPC** load-store kernel (no packing at all — the
  zero-copy path, fused like any other request); otherwise origin-side
  pack → RDMA → target-side unpack, with the target's scheme handling
  the scatter exactly as the paper's receiver callback does;
* :meth:`Window.fence` — active-target epoch close: a barrier, a drain
  of every transfer started in the epoch, and a second barrier, after
  which every rank may read its window coherently.

Ordering caveat (as in MPI): concurrent conflicting Puts to the same
window region within one epoch are undefined; tests keep regions
disjoint.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from ..datatypes.layout import DataLayout
from ..gpu.memory import GPUBuffer
from ..net.transfer import rdma_write
from ..sim.engine import Event
from .collectives import barrier
from .communicator import Rank, Runtime, TypeArg

__all__ = ["Window", "create_windows"]


class _WindowGroup:
    """Shared state of one collective window creation."""

    _ids = itertools.count()

    def __init__(self, runtime: Runtime, buffers: Dict[int, GPUBuffer]):
        self.group_id = next(_WindowGroup._ids)
        self.runtime = runtime
        self.buffers = buffers
        #: completion events of every transfer in the current epoch
        self.epoch_ops: List[Event] = []
        self.epoch = 0
        #: lifetime statistics
        self.puts = 0
        self.gets = 0


class Window:
    """One rank's handle onto a collectively created window."""

    def __init__(self, rank: Rank, group: _WindowGroup):
        self.rank_obj = rank
        self.group = group

    @property
    def local_buffer(self) -> GPUBuffer:
        """This rank's exposed memory."""
        return self.group.buffers[self.rank_obj.rank_id]

    # -- data movement -----------------------------------------------------
    def put(
        self,
        origin_buffer: GPUBuffer,
        origin_type: TypeArg,
        count: int,
        target_rank: int,
        target_type: Optional[TypeArg] = None,
        target_offset: int = 0,
    ) -> Generator[Event, None, None]:
        """One-sided write into ``target_rank``'s window.

        Nonblocking: returns once initiated; completion is guaranteed
        only after the epoch's :meth:`fence`.
        """
        yield from self._transfer(
            origin_buffer, origin_type, count, target_rank, target_type,
            target_offset, is_put=True,
        )

    def get(
        self,
        origin_buffer: GPUBuffer,
        origin_type: TypeArg,
        count: int,
        target_rank: int,
        target_type: Optional[TypeArg] = None,
        target_offset: int = 0,
    ) -> Generator[Event, None, None]:
        """One-sided read from ``target_rank``'s window into
        ``origin_buffer`` (completion at the fence)."""
        yield from self._transfer(
            origin_buffer, origin_type, count, target_rank, target_type,
            target_offset, is_put=False,
        )

    def _transfer(
        self,
        origin_buffer: GPUBuffer,
        origin_type: TypeArg,
        count: int,
        target_rank: int,
        target_type: Optional[TypeArg],
        target_offset: int,
        *,
        is_put: bool,
    ) -> Generator[Event, None, None]:
        rank = self.rank_obj
        runtime = self.group.runtime
        if target_rank == rank.rank_id:
            raise ValueError("RMA to self is not supported")
        if not 0 <= target_rank < runtime.size:
            raise ValueError(f"target rank {target_rank} outside window group")
        origin_layout = yield from rank.resolve_layout_timed(origin_type, count)
        target_layout = rank.resolve_layout(
            origin_type if target_type is None else target_type, count
        )
        if origin_layout.size != target_layout.size:
            raise ValueError(
                f"origin ({origin_layout.size} B) and target "
                f"({target_layout.size} B) datatypes disagree"
            )
        target_buffer = self.group.buffers[target_rank]
        done = Event(rank.sim, name=f"rma:w{self.group.group_id}")
        self.group.epoch_ops.append(done)
        if is_put:
            self.group.puts += 1
        else:
            self.group.gets += 1

        use_ipc = (
            runtime.enable_direct_ipc
            and runtime.cluster.same_node(rank.rank_id, target_rank)
        )
        if use_ipc:
            # Zero-copy: one DirectIPC load-store kernel on the origin,
            # fused into its scheduler like any other request.
            if is_put:
                op = rank.device.direct_ipc_op(
                    origin_buffer, origin_layout.shifted(0),
                    target_buffer, target_layout.shifted(target_offset),
                    peer_bandwidth=runtime.cluster.system.gpu_gpu.bandwidth,
                    label="rma-put-ipc",
                )
            else:
                op = rank.device.direct_ipc_op(
                    target_buffer, target_layout.shifted(target_offset),
                    origin_buffer, origin_layout.shifted(0),
                    peer_bandwidth=runtime.cluster.system.gpu_gpu.bandwidth,
                    label="rma-get-ipc",
                )
            yield rank.cpu.request()
            try:
                handle = yield from rank.scheme.submit(op, label=op.label)
            finally:
                rank.cpu.release()
            handle.done_event.add_callback(lambda _ev: done.succeed())
            return

        # Packed path: origin pack -> wire -> target-side unpack (put),
        # mirrored for get.
        target_rank_obj = runtime.rank(target_rank)
        if is_put:
            staging = rank.staging_pool.acquire(origin_layout.size)
            op = rank.device.pack_op(origin_buffer, origin_layout, staging,
                                     label="rma-put-pack")
            yield rank.cpu.request()
            try:
                handle = yield from rank.scheme.submit(op, label=op.label)
            finally:
                rank.cpu.release()

            def flow():
                yield handle.done_event
                payload = (
                    staging.data[: origin_layout.size].copy()
                    if staging.functional else None
                )
                yield from rdma_write(
                    runtime.cluster, rank.rank_id, target_rank, origin_layout.size
                )
                rank.staging_pool.release(staging)
                yield from self._remote_scatter(
                    target_rank_obj, payload, target_layout, target_offset,
                    target_buffer,
                )
                done.succeed()

            rank.sim.process(flow(), name="rma-put")
        else:

            def flow():
                # Request traversal, then the target packs and writes back.
                yield rank.sim.timeout(
                    runtime.cluster.control_latency(rank.rank_id, target_rank)
                )
                t_staging = target_rank_obj.staging_pool.acquire(target_layout.size)
                op = target_rank_obj.device.pack_op(
                    target_buffer, target_layout, t_staging,
                    source_offset=target_offset, label="rma-get-pack",
                )
                yield target_rank_obj.cpu.request()
                try:
                    handle = yield from target_rank_obj.scheme.submit(
                        op, label=op.label
                    )
                    yield from target_rank_obj.scheme.flush()
                finally:
                    target_rank_obj.cpu.release()
                yield handle.done_event
                payload = (
                    t_staging.data[: target_layout.size].copy()
                    if t_staging.functional else None
                )
                yield from rdma_write(
                    runtime.cluster, target_rank, rank.rank_id, target_layout.size
                )
                target_rank_obj.staging_pool.release(t_staging)
                yield from self._remote_scatter(
                    rank, payload, origin_layout, 0, origin_buffer
                )
                done.succeed()

            rank.sim.process(flow(), name="rma-get")

    def _remote_scatter(
        self,
        at_rank: Rank,
        payload,
        layout: DataLayout,
        offset: int,
        dest_buffer: GPUBuffer,
    ) -> Generator[Event, None, None]:
        """Scatter arrived bytes into ``dest_buffer`` via the local scheme."""
        if layout.is_contiguous:
            if payload is not None and dest_buffer.functional:
                dest_buffer.data[offset : offset + layout.size] = payload
            return
        staging = at_rank.staging_pool.acquire(layout.size)
        if payload is not None and staging.functional:
            staging.data[: layout.size] = payload
        op = at_rank.device.unpack_op(
            staging, layout, dest_buffer, dest_offset=offset, label="rma-scatter"
        )
        yield at_rank.cpu.request()
        try:
            handle = yield from at_rank.scheme.submit(op, label=op.label)
        finally:
            at_rank.cpu.release()
        yield handle.done_event
        at_rank.staging_pool.release(staging)

    def fence(self) -> Generator[Event, None, None]:
        """Close the epoch (``MPI_Win_fence``): everyone's transfers
        drain, then a barrier; afterwards all windows are coherent.

        The drain loop keeps giving the local scheme its sync-point
        flush — transfers submit pack/unpack requests *during* the
        drain (a put's target-side scatter, a get's origin-side
        scatter), and under the fusion scheme those only launch when
        some progress loop flushes."""
        rank = self.rank_obj
        epoch = self.group.epoch  # stable across this fence round
        # Barrier 1: no rank is still *issuing* epoch operations.
        yield from barrier(rank, tag_round=epoch * 2 + self.group.group_id)
        while True:
            yield rank.cpu.request()
            try:
                yield from rank.scheme.flush()
                yield from rank.scheme.progress_tick()
            finally:
                rank.cpu.release()
            pending = [e for e in self.group.epoch_ops if not e.processed]
            if not pending:
                break
            watch = list(pending)
            watch.append(rank.sim.timeout(self.group.runtime.poll_interval))
            yield rank.sim.any_of(watch)
        # Barrier 2: everyone has observed the drain; recycle the epoch
        # (one designated rank advances the shared counter).
        yield from barrier(rank, tag_round=epoch * 2 + 1 + self.group.group_id)
        if rank.rank_id == 0:
            self.group.epoch_ops = [
                e for e in self.group.epoch_ops if not e.processed
            ]
            self.group.epoch = epoch + 1


def create_windows(runtime: Runtime, buffers: Dict[int, GPUBuffer]) -> Dict[int, Window]:
    """Collective window creation (``MPI_Win_create``).

    ``buffers`` maps every rank id to its exposed buffer; returns one
    :class:`Window` handle per rank.
    """
    if set(buffers) != set(range(runtime.size)):
        raise ValueError("every rank must contribute exactly one buffer")
    group = _WindowGroup(runtime, dict(buffers))
    return {r: Window(runtime.rank(r), group) for r in range(runtime.size)}
