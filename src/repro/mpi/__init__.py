"""MPI-like runtime: ranks, matching, protocols, progress."""

from .cartesian import PROC_NULL, CartComm
from .collectives import allgather, allreduce, alltoall, barrier, neighbor_alltoall
from .communicator import Rank, Runtime
from .persistent import PersistentKind, PersistentRequest
from .matching import ANY_SOURCE, ANY_TAG, MatchingEngine, MessageRecord
from .protocols import DIRECT, EAGER, PIPELINE, RGET, RPUT
from .request import RecvRequest, Request, RequestState, SendRequest
from .rma import Window, create_windows

__all__ = [
    "Runtime",
    "Rank",
    "alltoall",
    "allgather",
    "allreduce",
    "neighbor_alltoall",
    "barrier",
    "PersistentRequest",
    "CartComm",
    "PROC_NULL",
    "Window",
    "create_windows",
    "PersistentKind",
    "Request",
    "SendRequest",
    "RecvRequest",
    "RequestState",
    "MatchingEngine",
    "MessageRecord",
    "ANY_SOURCE",
    "ANY_TAG",
    "EAGER",
    "RGET",
    "RPUT",
    "DIRECT",
    "PIPELINE",
]
