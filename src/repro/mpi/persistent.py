"""Persistent communication requests (``MPI_Send_init`` family).

Halo-exchange codes issue the *same* communication pattern every
iteration; MPI's persistent requests let them describe it once and
``MPI_Start`` it each step.  That pairs naturally with this paper's
framework: the datatype layout is resolved at init time and its
one-time flatten charge is paid on the first start (every later start
is a guaranteed layout-cache hit), and each started bulk re-enters the
fusion scheduler as a fresh batch.

Usage::

    preqs = [rank.send_init(buf, dtype, 1, peer, tag=i) for i in ...]
    for _step in range(iterations):
        yield from rank.startall(preqs)
        yield from rank.waitall(preqs)

A :class:`PersistentRequest` is *inactive* until started; starting an
active (incomplete) request is an error, as in MPI.  The object proxies
``done`` / ``completion`` to its current activation, so ``waitall`` and
``test`` accept it directly.
"""

from __future__ import annotations

import enum
from typing import Generator, Iterable, List, Optional

from ..gpu.memory import GPUBuffer
from ..sim.engine import Event
from .communicator import Rank, TypeArg
from .request import Request

__all__ = ["PersistentKind", "PersistentRequest", "send_init", "recv_init", "startall"]


class PersistentKind(str, enum.Enum):
    """Which operation a persistent request re-issues."""

    SEND = "send"
    RECV = "recv"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PersistentRequest:
    """An initialized-but-inactive communication pattern."""

    def __init__(
        self,
        rank: Rank,
        kind: PersistentKind,
        buffer: GPUBuffer,
        datatype: TypeArg,
        count: int,
        peer: int,
        tag: int,
        offset: int,
    ):
        self.rank_obj = rank
        self.kind = kind
        self.buffer = buffer
        self.datatype = datatype
        self.count = count
        self.peer = peer
        self.tag = tag
        self.offset = offset
        #: the current activation's underlying request (None = inactive)
        self.active: Optional[Request] = None
        #: completed activations (diagnostics)
        self.starts = 0

    # -- request-protocol proxying (duck-typed like Request) ----------------
    @property
    def done(self) -> bool:
        """True when inactive or the current activation completed."""
        return self.active is None or self.active.done

    @property
    def completion(self) -> Event:
        """The current activation's completion event."""
        if self.active is None:
            raise RuntimeError("persistent request has not been started")
        return self.active.completion

    def test(self) -> bool:
        """Nonblocking completion check of the current activation."""
        return self.done

    def start(self) -> Generator[Event, None, "PersistentRequest"]:
        """Activate (``MPI_Start``); generator like ``isend``."""
        if self.active is not None and not self.active.done:
            raise RuntimeError("MPI_Start on an active persistent request")
        if self.kind is PersistentKind.SEND:
            self.active = yield from self.rank_obj.isend(
                self.buffer, self.datatype, self.count, self.peer,
                tag=self.tag, offset=self.offset,
            )
        else:
            self.active = self.rank_obj.irecv(
                self.buffer, self.datatype, self.count, self.peer,
                tag=self.tag, offset=self.offset,
            )
        self.starts += 1
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "inactive" if self.active is None else (
            "complete" if self.active.done else "active"
        )
        return f"<PersistentRequest {self.kind} peer={self.peer} tag={self.tag} {state}>"


def send_init(
    rank: Rank,
    buffer: GPUBuffer,
    datatype: TypeArg,
    count: int,
    dest: int,
    tag: int = 0,
    offset: int = 0,
) -> PersistentRequest:
    """Create a persistent send (``MPI_Send_init``).

    Resolves (and caches) the datatype layout immediately; after the
    first start's one-time flatten charge, every restart is a
    guaranteed layout-cache hit.
    """
    rank.resolve_layout(datatype, count)
    return PersistentRequest(
        rank, PersistentKind.SEND, buffer, datatype, count, dest, tag, offset
    )


def recv_init(
    rank: Rank,
    buffer: GPUBuffer,
    datatype: TypeArg,
    count: int,
    source: int,
    tag: int = 0,
    offset: int = 0,
) -> PersistentRequest:
    """Create a persistent receive (``MPI_Recv_init``)."""
    rank.resolve_layout(datatype, count)
    return PersistentRequest(
        rank, PersistentKind.RECV, buffer, datatype, count, source, tag, offset
    )


def startall(
    rank: Rank, requests: Iterable[PersistentRequest]
) -> Generator[Event, None, List[PersistentRequest]]:
    """Activate a set (``MPI_Startall``): receives first, then sends —
    the ordering that keeps the posted-receive queue ahead of the
    incoming envelopes."""
    reqs: List[PersistentRequest] = list(requests)
    for preq in reqs:
        if preq.kind is PersistentKind.RECV:
            yield from preq.start()
    for preq in reqs:
        if preq.kind is PersistentKind.SEND:
            yield from preq.start()
    return reqs
