"""MPI-style request objects.

A :class:`Request` is returned by the nonblocking operations
(``isend``/``irecv``) and consumed by ``wait``/``waitall``.  Its
``completion`` simulation event fires when the MPI semantics are
satisfied:

* **send**: the user buffer is reusable (payload handed to the wire),
* **recv**: the payload has been unpacked into the user buffer.

Each request also carries its protocol bookkeeping — the pack/unpack
:class:`~repro.schemes.base.OpHandle`, the staging buffer, and the
matched :class:`~repro.mpi.matching.MessageRecord` — which the tests
use to assert protocol behaviour (e.g. RPUT overlaps the handshake with
packing).
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from ..datatypes.layout import DataLayout
from ..gpu.memory import GPUBuffer
from ..schemes.base import OpHandle
from ..sim.engine import Event, Simulator

__all__ = ["RequestState", "Request", "SendRequest", "RecvRequest"]


class RequestState(str, enum.Enum):
    """Lifecycle of a request."""

    ACTIVE = "active"
    COMPLETE = "complete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Request:
    """Base nonblocking-operation handle."""

    _ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        peer: int,
        tag: int,
        layout: DataLayout,
        user_buffer: GPUBuffer,
        user_offset: int = 0,
    ):
        self.req_id = next(Request._ids)
        self.sim = sim
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.layout = layout
        self.user_buffer = user_buffer
        self.user_offset = user_offset
        self.completion: Event = Event(sim, name=f"req{self.req_id}:done")
        #: pack/unpack handle once submitted to the scheme
        self.op_handle: Optional[OpHandle] = None
        #: staging buffer for the packed representation (None when the
        #: layout is contiguous and staging is skipped)
        self.staging: Optional[GPUBuffer] = None
        self.issued_at = sim.now

    @property
    def state(self) -> RequestState:
        """Current lifecycle state."""
        return RequestState.COMPLETE if self.completion.processed else RequestState.ACTIVE

    @property
    def done(self) -> bool:
        """True once MPI completion semantics are satisfied."""
        return self.completion.processed

    def test(self) -> bool:
        """Nonblocking completion check (``MPI_Test``)."""
        return self.done

    @property
    def nbytes(self) -> int:
        """Payload size of the message in bytes."""
        return self.layout.size

    def _complete(self) -> None:
        if not self.completion.triggered:
            self.completion.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} #{self.req_id} rank={self.rank} "
            f"peer={self.peer} tag={self.tag} {self.state}>"
        )


class SendRequest(Request):
    """Nonblocking send in flight."""

    is_send = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: fires when the payload has fully left this rank
        self.wire_done: Event = Event(self.sim, name=f"req{self.req_id}:wire")
        #: protocol chosen by the runtime ("eager" | "rget" | "rput" | "direct")
        self.protocol: str = ""


class RecvRequest(Request):
    """Nonblocking receive in flight."""

    is_send = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: fires when payload bytes are available in the staging buffer
        self.data_ready: Event = Event(self.sim, name=f"req{self.req_id}:data")
        #: the matched incoming message, once matching succeeds
        self.record = None  # type: Optional["MessageRecord"]
