"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for exploring the reproduction
without writing a script:

* ``compare``   — latency table of every scheme on one workload,
* ``breakdown`` — the Fig. 11 five-bucket cost decomposition,
* ``sweep``     — ``--figure figN``: run a full paper figure's grid
  through the sharded parallel sweep engine (``--jobs``, content-
  addressed ``--cache-dir``, artifact ``--out``); without ``--figure``,
  the classic Fig. 8 fusion-threshold sweep,
* ``autotune``  — empirical + model-based threshold recommendations,
* ``faults``    — chaos sweep: re-run one scheme under the fault
  presets and report latency inflation + recovery actions,
* ``regress``   — perf-regression gate: compare a fresh run (or a
  second artifact) against a stored ``BENCH_*.json`` baseline,
* ``wallclock`` — engine wall-clock microbench suite: events/sec,
  per-figure sweep wall time, allocation counts; emits and gates the
  versioned ``BENCH_wallclock.json`` artifact,
* ``profile``   — ``cProfile`` a figure sweep (``--figure figN``) or a
  single scheme run and print the top-N hot functions,
* ``workloads`` — list the available workload generators,
* ``describe``  — render a workload datatype's construction tree,
* ``timeline``  — ASCII Gantt chart of one scheme's cost trace,
* ``config``    — ``show``/``hash``/``diff`` the canonical
  :class:`repro.config.ExperimentConfig` (dotted ``--set`` overrides,
  JSON round-trip, content hash).

Every run launched here is described by one ``ExperimentConfig`` — the
flags above are folded into it by ``_experiment_config`` before the
harness is invoked.

``--seed`` seeds both the payload RNG and (for ``faults``) the fault
plan, so every run is reproducible end to end.

Telemetry flags (all default-off; the default output of every command
is byte-identical to running without :mod:`repro.obs` at all):
``compare``/``faults`` accept ``--metrics PATH`` to dump every run's
counters as Prometheus text, ``breakdown`` accepts ``--trace-out PATH``
to export the unified event stream as a Chrome ``trace.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench import format_breakdown_table, format_latency_table, run_bulk_exchange
from .config import (
    ExperimentConfig,
    FaultsCfg,
    FusionCfg,
    HarnessCfg,
    NoiseCfg,
    SchemeCfg,
    SystemCfg,
    WorkloadCfg,
)
from .core.autotune import autotune_threshold, recommend_threshold
from .net import SYSTEMS
from .schemes import SCHEME_REGISTRY
from .sim.faults import FAULT_PRESETS
from .sim.timeline import render_timeline
from .workloads import WORKLOADS

__all__ = ["main"]

KiB = 1024


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="specfem3D_cm", choices=sorted(WORKLOADS))
    p.add_argument("--dim", type=int, default=1000, help="workload dimension size")
    p.add_argument("--system", default="Lassen", choices=sorted(SYSTEMS))
    p.add_argument("--nbuffers", type=int, default=16, help="buffers per direction")
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument(
        "--seed", type=int, default=42,
        help="seed for payload data and fault/noise draws",
    )
    p.add_argument(
        "--noise", type=_nonnegative_float, default=0.0, metavar="CV",
        help="execution-noise coefficient of variation (0 = deterministic)",
    )


def _experiment_config(
    args, scheme, *, fault_preset: Optional[str] = None
) -> ExperimentConfig:
    """Fold the common CLI flags into one canonical :class:`ExperimentConfig`.

    Every run a CLI command launches goes through here, so the CLI, the
    test-suite, and the benchmark harness all share a single resolution
    path from knobs to experiment.
    """
    scheme_cfg = scheme if isinstance(scheme, SchemeCfg) else SchemeCfg(name=scheme)
    return ExperimentConfig(
        system=SystemCfg(name=args.system),
        workload=WorkloadCfg(
            name=args.workload, dim=args.dim, nbuffers=args.nbuffers
        ),
        scheme=scheme_cfg,
        noise=NoiseCfg(cv=getattr(args, "noise", 0.0)),
        faults=FaultsCfg(preset=fault_preset),
        harness=HarnessCfg(
            iterations=args.iterations,
            warmup=1,
            data_plane=fault_preset is not None,
            seed=args.seed,
        ),
    )


def _run(args, scheme, fault_preset: Optional[str] = None, obs=None):
    cfg = _experiment_config(args, scheme, fault_preset=fault_preset)
    return run_bulk_exchange(cfg, obs=obs)


def _scheme_observer(registry, name: str, **extra: str):
    """Counters-only observer tagging every series with the run identity.

    All runs of one command share ``registry``, so the merged Prometheus
    dump has one family per metric with a label per scheme/preset —
    valid exposition text, no colliding series.
    """
    from .obs import NullRecorder, Observer

    return Observer(
        metrics=registry,
        recorder=NullRecorder(),
        const_labels={"scheme": name, **extra},
    )


def cmd_compare(args) -> int:
    registry = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    results = {}
    for name in SCHEME_REGISTRY:
        if args.skip_production and name in ("SpectrumMPI", "OpenMPI"):
            continue
        obs = _scheme_observer(registry, name) if registry is not None else None
        results[name] = {args.dim: _run(args, name, obs=obs)}
    print(
        format_latency_table(
            results,
            title=(
                f"{args.workload} (dim={args.dim}, {args.nbuffers} buffers) "
                f"on {args.system}"
            ),
            baseline="GPU-Sync",
        )
    )
    if registry is not None:
        with open(args.metrics, "w") as fh:
            fh.write(registry.to_prometheus_text())
        print(f"\nmetrics written to {args.metrics}")
    return 0


def cmd_breakdown(args) -> int:
    recorder = None
    if args.trace_out:
        from .obs import Observer, Recorder

        recorder = Recorder()
    rows = []
    for name in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed"):
        obs = None
        if recorder is not None:
            # Shared recorder; the runner prefixes per-rank trace tracks
            # with the scheme name, and _rename below scopes the rest.
            scheme_rec = Recorder()
            obs = Observer(recorder=scheme_rec, const_labels={"scheme": name})
        rows.append(_run(args, name, obs=obs))
        if recorder is not None:
            import dataclasses

            for event in scheme_rec.events:
                track = event.track
                if not track:
                    track = name
                elif not track.startswith(f"{name}/"):
                    track = f"{name}/{track}"
                recorder.events.append(dataclasses.replace(event, track=track))
    print(
        format_breakdown_table(
            rows,
            title=(
                f"Time breakdown — {args.workload} dim={args.dim}, "
                f"{args.nbuffers} transfers, {args.system}"
            ),
        )
    )
    if recorder is not None:
        count = recorder.export_chrome_trace(args.trace_out)
        print(f"\n{count} trace events written to {args.trace_out}")
    return 0


def cmd_sweep(args) -> int:
    if args.figure:
        return _cmd_figure_sweep(args)
    print(
        f"Fusion-threshold sweep: {args.workload} dim={args.dim} on {args.system}\n"
    )
    print(f"{'threshold':>12}{'latency':>12}{'kernels':>9}{'mean batch':>12}")
    for threshold in args.thresholds:
        scheme = SchemeCfg(
            name="Proposed",
            fusion=FusionCfg(threshold_bytes=threshold * KiB),
        )
        result = _run(args, scheme)
        stats = result.scheduler_stats
        print(
            f"{threshold:>10}KB{result.mean_latency * 1e6:>10.1f}us"
            f"{stats.launches:>9}{stats.mean_batch:>12.1f}"
        )
    return 0


def _cmd_figure_sweep(args) -> int:
    """``repro sweep --figure figN``: the sharded, cached figure sweep."""
    import os
    import pathlib

    from .bench.figures import FIGURES, run_figure
    from .bench.sweep import ResultCache, SweepError, code_salt
    from .obs import artifact_path, write_bench_artifact

    figures = sorted(FIGURES) if "all" in args.figure else list(args.figure)
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            "REPRO_SWEEP_CACHE", ".repro-cache/sweep"
        )
        cache = ResultCache(cache_dir)
    registry = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    salt = args.salt if args.salt is not None else code_salt()
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    status = 0
    for figure in figures:
        try:
            run = run_figure(
                figure, jobs=args.jobs, cache=cache, salt=salt,
                registry=registry,
            )
        except SweepError as exc:
            print(f"{figure}: FAILED\n{exc}")
            status = 1
            continue
        path = write_bench_artifact(
            artifact_path(str(out_dir), run.experiment), run.artifact_doc()
        )
        s = run.stats
        print(
            f"{figure}: {s.shards} shards — {s.ran} run, {s.hits} cached, "
            f"jobs={s.jobs}, {s.wall_seconds:.1f}s"
        )
        print(f"  -> {path} ({len(run.entries)} entries)")
    if cache is not None:
        print(f"cache: {cache.root} ({len(cache)} shards, salt {salt})")
    if registry is not None:
        with open(args.metrics, "w") as fh:
            fh.write(registry.to_prometheus_text())
        print(f"metrics written to {args.metrics}")
    return status


def cmd_autotune(args) -> int:
    spec = WORKLOADS[args.workload](args.dim)
    system = SYSTEMS[args.system]
    layout = spec.datatype.flatten().replicate(spec.count)
    model = recommend_threshold(system.gpu_arch, layout)
    print(f"model-based recommendation: {model // KiB} KB "
          f"(§IV-C: fused time >= 2x launch overhead)\n")
    result = autotune_threshold(system, spec, nbuffers=args.nbuffers)
    print("empirical sweep:")
    print(result.describe())
    print(f"\nempirical best: {result.best_threshold // KiB} KB "
          f"({result.best_latency * 1e6:.1f} us)")
    return 0


def cmd_faults(args) -> int:
    """Chaos sweep: one scheme under escalating fault presets.

    Runs with the data plane on so every delivered buffer is verified
    byte-for-byte against the sent payload — a run that prints at all
    has proven the headline invariant (faults cost time, never
    correctness).
    """
    registry = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()

    def observer(preset: str):
        if registry is None:
            return None
        return _scheme_observer(registry, args.scheme, preset=preset)

    clean = _run(args, args.scheme, obs=observer("none"))
    print(
        f"Chaos sweep: {args.scheme} on {args.workload} dim={args.dim}, "
        f"{args.nbuffers} buffers, {args.system}, seed={args.seed}"
    )
    print(f"fault-free baseline: {clean.mean_latency * 1e6:.1f} us/iteration\n")
    print(
        f"{'preset':>10}{'latency':>12}{'slowdown':>10}"
        f"{'injected':>10}{'recovered':>11}  delivered"
    )
    for name in args.presets:
        result = _run(args, args.scheme, fault_preset=name, obs=observer(name))
        rec = result.recovery
        print(
            f"{name:>10}{result.mean_latency * 1e6:>10.1f}us"
            f"{result.mean_latency / clean.mean_latency:>9.2f}x"
            f"{rec.total_injected:>10}{rec.total_recoveries:>11}  bytes ok"
        )
        if args.verbose:
            for line in rec.describe().splitlines():
                print("    " + line)
    if registry is not None:
        with open(args.metrics, "w") as fh:
            fh.write(registry.to_prometheus_text())
        print(f"\nmetrics written to {args.metrics}")
    return 0


def cmd_regress(args) -> int:
    """Perf-regression gate; exit 1 when the verdict is FAIL."""
    from .obs import regress as _regress
    from .obs.artifact import load_bench_artifact

    baseline = load_bench_artifact(args.baseline)
    if args.candidate:
        candidate = load_bench_artifact(args.candidate)
    else:
        print(
            f"re-running {len(baseline.get('entries', []))} entries of "
            f"{args.baseline} ..."
        )
        candidate = _regress.rerun_artifact(baseline)
    report = _regress.compare_artifacts(
        baseline,
        candidate,
        tolerance=args.tolerance,
        metrics=tuple(args.metric) if args.metric else _regress.DEFAULT_METRICS,
    )
    print(report.describe())
    return 0 if report.ok else 1


def cmd_wallclock(args) -> int:
    """Wall-clock microbench suite; emits/gates ``BENCH_wallclock.json``."""
    import os

    from .bench.wallclock import (
        DEFAULT_FIGURES,
        compare_wallclock,
        wallclock_artifact,
    )
    from .obs.artifact import load_bench_artifact, write_bench_artifact

    figures = list(args.wc_figure) if args.wc_figure else list(DEFAULT_FIGURES)
    if args.no_figures:
        figures = []
    artifact = wallclock_artifact(scale=args.scale, figures=figures)
    engine = artifact["data"]["engine"]
    for name, m in engine.items():
        print(f"{name:>16}: {m['events_per_second']:>12,.0f} events/s "
              f"({m['events']:,.0f} events, {m['wall_seconds']:.3f}s)")
    for name, m in artifact["data"].get("figures", {}).items():
        print(f"{name:>16}: {m['wall_seconds']:>10.2f}s wall "
              f"({m['shards']:.0f} shards, serial, uncached)")
    alloc = artifact["data"]["allocations"]
    print(f"{'allocations':>16}: {alloc['peak_bytes_per_event']:.1f} peak B/event "
          f"on the timeout chain")

    if args.baseline and args.check:
        baseline = load_bench_artifact(args.baseline)
        problems = compare_wallclock(
            baseline, artifact, tolerance=args.tolerance
        )
        if problems:
            print(f"\nFAIL: wall-clock regression vs {args.baseline}")
            for p in problems:
                print("  " + p)
            return 1
        print(f"\nOK: within {args.tolerance:.0%} of {args.baseline}")
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        write_bench_artifact(args.out, artifact)
        print(f"\nartifact written to {args.out}")
    return 0


def cmd_profile(args) -> int:
    """cProfile a figure sweep (or one scheme run) and print hot functions."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    if args.figure:
        from .bench.figures import run_figure

        print(f"profiling serial uncached sweep of {args.figure} ...\n")
        profiler.enable()
        run_figure(args.figure, jobs=1, cache=None)
        profiler.disable()
    else:
        print(
            f"profiling {args.scheme} on {args.workload} dim={args.dim} "
            f"({args.iterations} iterations) ...\n"
        )
        profiler.enable()
        _run(args, args.scheme)
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"profile data written to {args.profile_out} "
              f"(snakeviz/pstats readable)")
    return 0


def cmd_workloads(_args) -> int:
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name](32 if name in ("MILC", "NAS_MG", "WRF", "NAS_LU_x", "NAS_LU_y") else 1000)
        print(f"{name:<14} {spec.layout_class:<7} e.g. {spec.summary()}")
    return 0


def cmd_describe(args) -> int:
    from .datatypes import describe

    spec = WORKLOADS[args.workload](args.dim)
    print(spec.summary())
    print()
    print(describe(spec.datatype))
    return 0


def cmd_timeline(args) -> int:
    result = _run(args, args.scheme)
    print(
        f"{args.scheme} on {args.workload} dim={args.dim} "
        f"({result.mean_latency * 1e6:.1f} us/iteration)\n"
    )
    # Re-run one iteration with a kept trace for rendering.
    from .mpi import Runtime
    from .net import Cluster
    from .sim import Simulator

    sim = Simulator()
    cluster = Cluster(sim, SYSTEMS[args.system], nodes=2, functional=False)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[args.scheme])
    spec = WORKLOADS[args.workload](args.dim)
    layout = spec.datatype.flatten()
    r0, r1 = rt.rank(0), rt.rank(1)
    bufs = {r.rank_id: r.device.alloc(spec.buffer_bytes()) for r in (r0, r1)}

    def program(rank, peer):
        reqs = [rank.irecv(bufs[rank.rank_id], layout, 1, peer, tag=i)
                for i in range(args.nbuffers)]
        for i in range(args.nbuffers):
            sreq = yield from rank.isend(bufs[rank.rank_id], layout, 1, peer, tag=i)
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    procs = [sim.process(program(r0, 1)), sim.process(program(r1, 0))]
    sim.run(sim.all_of(procs))
    print(render_timeline(r0.trace, width=args.width))
    return 0


def _parse_set_value(raw: str):
    """``--set`` values are JSON when they parse, bare strings otherwise.

    ``--set workload.dim=2000`` gives an int, ``--set scheme.name=Proposed``
    a string — no need to quote scalars at the shell.
    """
    import json

    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _config_from_args(args) -> ExperimentConfig:
    import json

    if getattr(args, "file", None):
        with open(args.file) as fh:
            cfg = ExperimentConfig.from_dict(json.load(fh))
    else:
        cfg = ExperimentConfig.default()
    overrides = {}
    for item in getattr(args, "sets", None) or []:
        path, sep, raw = item.partition("=")
        if not sep or not path:
            raise SystemExit(f"--set expects PATH=VALUE, got {item!r}")
        overrides[path] = _parse_set_value(raw)
    if overrides:
        cfg = cfg.with_overrides(overrides)
    return cfg


def cmd_config_show(args) -> int:
    import json

    print(json.dumps(_config_from_args(args).to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_config_hash(args) -> int:
    print(_config_from_args(args).content_hash())
    return 0


def cmd_config_diff(args) -> int:
    """Dotted-path diff of two config JSON files; exit 1 when they differ."""
    import json

    def load(path: str) -> ExperimentConfig:
        with open(path) as fh:
            return ExperimentConfig.from_dict(json.load(fh))

    diffs = load(args.a).diff(load(args.b))
    if not diffs:
        print("configs identical")
        return 0
    for path in sorted(diffs):
        old, new = diffs[path]
        print(f"{path}: {old!r} -> {new!r}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic Kernel Fusion for Bulk Non-contiguous "
            "Data Transfer on GPU Clusters' (CLUSTER 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="latency table of every scheme")
    _add_common(p)
    p.add_argument(
        "--skip-production", action="store_true",
        help="skip the (slow) SpectrumMPI/OpenMPI naive schemes",
    )
    p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="dump per-scheme telemetry counters as Prometheus text",
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("breakdown", help="Fig. 11-style cost decomposition")
    _add_common(p)
    p.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export the unified event stream as a Chrome trace.json",
    )
    p.set_defaults(fn=cmd_breakdown)

    p = sub.add_parser(
        "sweep",
        help="parallel figure sweep (--figure) or Fig. 8 threshold sweep",
    )
    _add_common(p)
    p.add_argument(
        "--thresholds", type=int, nargs="+",
        default=[16, 64, 128, 256, 512, 1024, 2048, 4096],
        help="thresholds in KB (threshold-sweep mode)",
    )
    from .bench.figures import FIGURES as _FIGURES

    p.add_argument(
        "--figure", action="append", default=None, metavar="FIG",
        choices=sorted(_FIGURES) + ["all"],
        help="run a full paper figure's grid through the sharded sweep "
        "engine (repeatable; 'all' runs every figure)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for --figure sweeps (default 1 = serial)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed shard cache (default $REPRO_SWEEP_CACHE "
        "or .repro-cache/sweep)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the shard cache entirely (every shard re-runs)",
    )
    p.add_argument(
        "--salt", default=None, metavar="TEXT",
        help="cache-key salt override (default: hash of the repro source "
        "tree, so code changes invalidate the cache)",
    )
    p.add_argument(
        "--out", default="benchmarks/results", metavar="DIR",
        help="artifact output directory for --figure sweeps",
    )
    p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="dump sweep cache/shard counters as Prometheus text",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("autotune", help="recommend a fusion threshold")
    _add_common(p)
    p.set_defaults(fn=cmd_autotune)

    p = sub.add_parser("faults", help="chaos sweep under fault-injection presets")
    _add_common(p)
    p.add_argument("--scheme", default="Proposed", choices=sorted(SCHEME_REGISTRY))
    p.add_argument(
        "--presets", nargs="+", default=["light", "moderate", "heavy"],
        choices=sorted(FAULT_PRESETS),
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print per-preset recovery detail",
    )
    p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="dump per-preset telemetry counters as Prometheus text",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "regress", help="compare a run against a stored BENCH_*.json baseline"
    )
    p.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="stored benchmark artifact to gate against",
    )
    p.add_argument(
        "--candidate", default=None, metavar="PATH",
        help="second artifact to compare instead of re-running the baseline",
    )
    p.add_argument(
        "--tolerance", type=_nonnegative_float, default=0.10,
        help="allowed fractional slowdown per metric (default 0.10)",
    )
    p.add_argument(
        "--metric", action="append", default=None, metavar="NAME",
        help="artifact metric to watch (repeatable; default mean_latency; "
        "breakdown.<bucket> paths allowed)",
    )
    p.set_defaults(fn=cmd_regress)

    p = sub.add_parser(
        "wallclock",
        help="engine wall-clock microbench suite (BENCH_wallclock.json)",
    )
    p.add_argument(
        "--scale", type=_nonnegative_float, default=1.0,
        help="event-count scale factor for the engine microbenchmarks",
    )
    p.add_argument(
        "--figure", action="append", default=None, metavar="FIG", dest="wc_figure",
        choices=sorted(_FIGURES),
        help="figure sweeps to time end-to-end (repeatable; default "
        "fig09 fig12 fig13)",
    )
    p.add_argument(
        "--no-figures", action="store_true",
        help="skip the end-to-end figure timings (engine microbench only)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the BENCH_wallclock.json artifact here",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="stored BENCH_wallclock.json to gate against (with --check)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 on regression beyond --tolerance vs --baseline",
    )
    p.add_argument(
        "--tolerance", type=_nonnegative_float, default=0.30,
        help="allowed fractional wall-clock regression (default 0.30 — "
        "CI runners are noisy)",
    )
    p.set_defaults(fn=cmd_wallclock)

    p = sub.add_parser(
        "profile", help="cProfile a figure sweep or one scheme run"
    )
    _add_common(p)
    p.add_argument(
        "--figure", default=None, metavar="FIG", choices=sorted(_FIGURES),
        help="profile this figure's serial uncached sweep instead of a "
        "single scheme run",
    )
    p.add_argument("--scheme", default="Proposed", choices=sorted(SCHEME_REGISTRY))
    p.add_argument(
        "--top", type=int, default=25,
        help="number of hot functions to print (default 25)",
    )
    p.add_argument(
        "--sort", default="tottime",
        choices=["tottime", "cumtime", "ncalls"],
        help="pstats sort key (default tottime)",
    )
    p.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="dump raw cProfile stats for snakeviz/pstats",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("workloads", help="list workload generators")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("describe", help="render a workload datatype tree")
    p.add_argument("--workload", default="specfem3D_cm", choices=sorted(WORKLOADS))
    p.add_argument("--dim", type=int, default=1000)
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("timeline", help="ASCII cost timeline of one scheme")
    _add_common(p)
    p.add_argument("--scheme", default="Proposed", choices=sorted(SCHEME_REGISTRY))
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser(
        "config", help="inspect the canonical experiment configuration"
    )
    csub = p.add_subparsers(dest="config_command", required=True)

    def _add_config_inputs(q: argparse.ArgumentParser) -> None:
        q.add_argument(
            "--file", default=None, metavar="PATH",
            help="start from a config JSON file instead of the defaults",
        )
        q.add_argument(
            "--set", action="append", default=None, dest="sets",
            metavar="PATH=VALUE",
            help="dotted-path override, e.g. workload.dim=2000 (repeatable; "
            "VALUE is parsed as JSON, falling back to a bare string)",
        )

    q = csub.add_parser("show", help="print the resolved config as JSON")
    _add_config_inputs(q)
    q.set_defaults(fn=cmd_config_show)

    q = csub.add_parser(
        "hash", help="print the canonical content hash of the config"
    )
    _add_config_inputs(q)
    q.set_defaults(fn=cmd_config_hash)

    q = csub.add_parser(
        "diff", help="dotted-path diff of two config JSON files"
    )
    q.add_argument("a", help="baseline config JSON file")
    q.add_argument("b", help="candidate config JSON file")
    q.set_defaults(fn=cmd_config_diff)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
