"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for exploring the reproduction
without writing a script:

* ``compare``   — latency table of every scheme on one workload,
* ``breakdown`` — the Fig. 11 five-bucket cost decomposition,
* ``sweep``     — the Fig. 8 fusion-threshold sweep,
* ``autotune``  — empirical + model-based threshold recommendations,
* ``faults``    — chaos sweep: re-run one scheme under the fault
  presets and report latency inflation + recovery actions,
* ``workloads`` — list the available workload generators,
* ``describe``  — render a workload datatype's construction tree,
* ``timeline``  — ASCII Gantt chart of one scheme's cost trace.

``--seed`` seeds both the payload RNG and (for ``faults``) the fault
plan, so every run is reproducible end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench import format_breakdown_table, format_latency_table, run_bulk_exchange
from .core import KernelFusionScheme
from .core.autotune import autotune_threshold, recommend_threshold
from .core.fusion_policy import FusionPolicy
from .net import SYSTEMS
from .schemes import SCHEME_REGISTRY
from .sim.faults import FAULT_PRESETS, FaultPlan
from .sim.noise import NoiseModel
from .sim.timeline import render_timeline
from .workloads import WORKLOADS

__all__ = ["main"]

KiB = 1024


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="specfem3D_cm", choices=sorted(WORKLOADS))
    p.add_argument("--dim", type=int, default=1000, help="workload dimension size")
    p.add_argument("--system", default="Lassen", choices=sorted(SYSTEMS))
    p.add_argument("--nbuffers", type=int, default=16, help="buffers per direction")
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument(
        "--seed", type=int, default=42,
        help="seed for payload data and fault/noise draws",
    )
    p.add_argument(
        "--noise", type=_nonnegative_float, default=0.0, metavar="CV",
        help="execution-noise coefficient of variation (0 = deterministic)",
    )


def _noise(args) -> Optional[NoiseModel]:
    if getattr(args, "noise", 0.0) > 0.0:
        return NoiseModel(seed=args.seed, cv=args.noise)
    return None


def _run(args, scheme_factory, faults: Optional[FaultPlan] = None):
    return run_bulk_exchange(
        SYSTEMS[args.system],
        scheme_factory,
        WORKLOADS[args.workload](args.dim),
        nbuffers=args.nbuffers,
        iterations=args.iterations,
        warmup=1,
        data_plane=faults is not None,
        seed=args.seed,
        noise=_noise(args),
        faults=faults,
    )


def cmd_compare(args) -> int:
    results = {}
    for name, factory in SCHEME_REGISTRY.items():
        if args.skip_production and name in ("SpectrumMPI", "OpenMPI"):
            continue
        results[name] = {args.dim: _run(args, factory)}
    print(
        format_latency_table(
            results,
            title=(
                f"{args.workload} (dim={args.dim}, {args.nbuffers} buffers) "
                f"on {args.system}"
            ),
            baseline="GPU-Sync",
        )
    )
    return 0


def cmd_breakdown(args) -> int:
    rows = [
        _run(args, SCHEME_REGISTRY[name])
        for name in ("GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed")
    ]
    print(
        format_breakdown_table(
            rows,
            title=(
                f"Time breakdown — {args.workload} dim={args.dim}, "
                f"{args.nbuffers} transfers, {args.system}"
            ),
        )
    )
    return 0


def cmd_sweep(args) -> int:
    print(
        f"Fusion-threshold sweep: {args.workload} dim={args.dim} on {args.system}\n"
    )
    print(f"{'threshold':>12}{'latency':>12}{'kernels':>9}{'mean batch':>12}")
    for threshold in args.thresholds:
        def factory(site, trace, _t=threshold * KiB):
            return KernelFusionScheme(
                site, trace, policy=FusionPolicy(threshold_bytes=_t)
            )

        result = _run(args, factory)
        stats = result.scheduler_stats
        print(
            f"{threshold:>10}KB{result.mean_latency * 1e6:>10.1f}us"
            f"{stats.launches:>9}{stats.mean_batch:>12.1f}"
        )
    return 0


def cmd_autotune(args) -> int:
    spec = WORKLOADS[args.workload](args.dim)
    system = SYSTEMS[args.system]
    layout = spec.datatype.flatten().replicate(spec.count)
    model = recommend_threshold(system.gpu_arch, layout)
    print(f"model-based recommendation: {model // KiB} KB "
          f"(§IV-C: fused time >= 2x launch overhead)\n")
    result = autotune_threshold(system, spec, nbuffers=args.nbuffers)
    print("empirical sweep:")
    print(result.describe())
    print(f"\nempirical best: {result.best_threshold // KiB} KB "
          f"({result.best_latency * 1e6:.1f} us)")
    return 0


def cmd_faults(args) -> int:
    """Chaos sweep: one scheme under escalating fault presets.

    Runs with the data plane on so every delivered buffer is verified
    byte-for-byte against the sent payload — a run that prints at all
    has proven the headline invariant (faults cost time, never
    correctness).
    """
    factory = SCHEME_REGISTRY[args.scheme]
    clean = _run(args, factory)
    print(
        f"Chaos sweep: {args.scheme} on {args.workload} dim={args.dim}, "
        f"{args.nbuffers} buffers, {args.system}, seed={args.seed}"
    )
    print(f"fault-free baseline: {clean.mean_latency * 1e6:.1f} us/iteration\n")
    print(
        f"{'preset':>10}{'latency':>12}{'slowdown':>10}"
        f"{'injected':>10}{'recovered':>11}  delivered"
    )
    for name in args.presets:
        plan = FaultPlan(seed=args.seed, spec=FAULT_PRESETS[name])
        result = _run(args, factory, faults=plan)
        rec = result.recovery
        print(
            f"{name:>10}{result.mean_latency * 1e6:>10.1f}us"
            f"{result.mean_latency / clean.mean_latency:>9.2f}x"
            f"{rec.total_injected:>10}{rec.total_recoveries:>11}  bytes ok"
        )
        if args.verbose:
            for line in rec.describe().splitlines():
                print("    " + line)
    return 0


def cmd_workloads(_args) -> int:
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name](32 if name in ("MILC", "NAS_MG", "WRF", "NAS_LU_x", "NAS_LU_y") else 1000)
        print(f"{name:<14} {spec.layout_class:<7} e.g. {spec.summary()}")
    return 0


def cmd_describe(args) -> int:
    from .datatypes import describe

    spec = WORKLOADS[args.workload](args.dim)
    print(spec.summary())
    print()
    print(describe(spec.datatype))
    return 0


def cmd_timeline(args) -> int:
    result = _run(args, SCHEME_REGISTRY[args.scheme])
    print(
        f"{args.scheme} on {args.workload} dim={args.dim} "
        f"({result.mean_latency * 1e6:.1f} us/iteration)\n"
    )
    # Re-run one iteration with a kept trace for rendering.
    from .mpi import Runtime
    from .net import Cluster
    from .sim import Simulator

    sim = Simulator()
    cluster = Cluster(sim, SYSTEMS[args.system], nodes=2, functional=False)
    rt = Runtime(sim, cluster, SCHEME_REGISTRY[args.scheme])
    spec = WORKLOADS[args.workload](args.dim)
    layout = spec.datatype.flatten()
    r0, r1 = rt.rank(0), rt.rank(1)
    bufs = {r.rank_id: r.device.alloc(spec.buffer_bytes()) for r in (r0, r1)}

    def program(rank, peer):
        reqs = [rank.irecv(bufs[rank.rank_id], layout, 1, peer, tag=i)
                for i in range(args.nbuffers)]
        for i in range(args.nbuffers):
            sreq = yield from rank.isend(bufs[rank.rank_id], layout, 1, peer, tag=i)
            reqs.append(sreq)
        yield from rank.waitall(reqs)

    procs = [sim.process(program(r0, 1)), sim.process(program(r1, 0))]
    sim.run(sim.all_of(procs))
    print(render_timeline(r0.trace, width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic Kernel Fusion for Bulk Non-contiguous "
            "Data Transfer on GPU Clusters' (CLUSTER 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="latency table of every scheme")
    _add_common(p)
    p.add_argument(
        "--skip-production", action="store_true",
        help="skip the (slow) SpectrumMPI/OpenMPI naive schemes",
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("breakdown", help="Fig. 11-style cost decomposition")
    _add_common(p)
    p.set_defaults(fn=cmd_breakdown)

    p = sub.add_parser("sweep", help="Fig. 8-style threshold sweep")
    _add_common(p)
    p.add_argument(
        "--thresholds", type=int, nargs="+",
        default=[16, 64, 128, 256, 512, 1024, 2048, 4096],
        help="thresholds in KB",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("autotune", help="recommend a fusion threshold")
    _add_common(p)
    p.set_defaults(fn=cmd_autotune)

    p = sub.add_parser("faults", help="chaos sweep under fault-injection presets")
    _add_common(p)
    p.add_argument("--scheme", default="Proposed", choices=sorted(SCHEME_REGISTRY))
    p.add_argument(
        "--presets", nargs="+", default=["light", "moderate", "heavy"],
        choices=sorted(FAULT_PRESETS),
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print per-preset recovery detail",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("workloads", help="list workload generators")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("describe", help="render a workload datatype tree")
    p.add_argument("--workload", default="specfem3D_cm", choices=sorted(WORKLOADS))
    p.add_argument("--dim", type=int, default=1000)
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("timeline", help="ASCII cost timeline of one scheme")
    _add_common(p)
    p.add_argument("--scheme", default="Proposed", choices=sorted(SCHEME_REGISTRY))
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=cmd_timeline)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
