"""Kernel cost model + functional execution of pack/unpack operations.

This module prices and *performs* the GPU-side work.  Every operation
is a :class:`KernelOp` pairing

* a **cost** computed from the architecture model (what the simulator
  advances the clock by), and
* an **apply** thunk that really moves the bytes through the reference
  pack/unpack (what the tests verify).

Cost model
----------
A datatype pack/unpack kernel is memory-bound.  Its compute time is::

    t = fixed + bytes_moved / B_eff + blocks * cycles_per_block / (SMs * clock)

where ``bytes_moved`` counts the strided side once and the dense side
once, and the effective bandwidth is::

    B_eff = min(peak_bw, resident_blocks * block_bw) * strided_efficiency

The ``min`` term is the whole story of kernel fusion: a *small* kernel
has few thread blocks resident, cannot saturate the memory system, and
finishes in a microsecond or two — far less than its launch overhead
(Fig. 1).  A *fused* kernel pools the blocks of many requests, pushes
``resident_blocks`` toward saturation, and amortizes a single launch,
so its execution time grows far slower than the number of fused
requests (Section IV-A3).

``DirectIPC`` ops (the zero-copy NVLink path of [24]) are priced by the
peer link bandwidth instead of HBM; they exist so the framework's third
request type is exercised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional


from ..datatypes.layout import DataLayout
from ..datatypes.pack import pack_bytes, unpack_bytes
from .archs import GPUArchitecture
from .memory import GPUBuffer

__all__ = ["OpKind", "KernelOp", "kernel_compute_time", "make_pack_op", "make_unpack_op", "make_direct_ipc_op"]


class OpKind(str, enum.Enum):
    """The three operations the fusion framework supports (§IV-A1)."""

    PACK = "pack"
    UNPACK = "unpack"
    DIRECT_IPC = "direct_ipc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def kernel_compute_time(
    arch: GPUArchitecture,
    nbytes: int,
    num_blocks: int,
    mean_block: float,
    *,
    grid_blocks: Optional[float] = None,
    include_fixed: bool = True,
) -> float:
    """GPU-side execution time of a (possibly fused) pack/unpack kernel.

    ``grid_blocks`` caps the resident thread blocks (the cooperative-
    group partitioner passes the per-request allocation here, possibly
    fractional when one block serves several tiny requests); default is
    one thread block per layout block, the natural mapping of the
    HAND-style kernels [21].
    """
    if nbytes <= 0:
        return arch.kernel_fixed_cost if include_fixed else 0.0
    resident = float(num_blocks) if grid_blocks is None else min(float(grid_blocks), float(num_blocks))
    resident = max(0.5, resident)
    eff_bw = min(arch.mem_bandwidth, resident * arch.block_bandwidth)
    eff_bw *= arch.strided_efficiency(mean_block)
    # Strided side + dense side of the copy.
    bytes_moved = 2 * nbytes
    mem_time = bytes_moved / eff_bw
    block_time = num_blocks * arch.cycles_per_block / (
        max(1.0, min(resident, float(arch.saturation_blocks))) * arch.clock_ghz * 1e9
    )
    fixed = arch.kernel_fixed_cost if include_fixed else 0.0
    return fixed + mem_time + block_time


@dataclass
class KernelOp:
    """One schedulable GPU operation: a priced, byte-exact thunk.

    ``duration`` is the GPU-side compute time (launch overhead is paid
    by the *caller* on the CPU side — that separation is the paper's
    central accounting).  ``apply`` performs the data movement when the
    simulated kernel runs.
    """

    kind: OpKind
    nbytes: int
    num_blocks: int
    mean_block: float
    duration: float
    apply: Callable[[], None]
    label: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KernelOp {self.kind} {self.nbytes}B blocks={self.num_blocks} "
            f"dur={self.duration * 1e6:.2f}us>"
        )


def make_pack_op(
    arch: GPUArchitecture,
    source: GPUBuffer,
    layout: DataLayout,
    packed: GPUBuffer,
    *,
    source_offset: int = 0,
    packed_offset: int = 0,
    label: str = "",
) -> KernelOp:
    """Build a pack kernel: gather ``layout`` from ``source`` → ``packed``."""
    nbytes = layout.size

    def apply() -> None:
        out = packed.data[packed_offset : packed_offset + nbytes]
        pack_bytes(source.data, layout, out, base_offset=source_offset)

    return KernelOp(
        kind=OpKind.PACK,
        nbytes=nbytes,
        num_blocks=layout.num_blocks,
        mean_block=layout.mean_block,
        duration=kernel_compute_time(arch, nbytes, layout.num_blocks, layout.mean_block),
        apply=apply,
        label=label,
    )


def make_unpack_op(
    arch: GPUArchitecture,
    packed: GPUBuffer,
    layout: DataLayout,
    dest: GPUBuffer,
    *,
    packed_offset: int = 0,
    dest_offset: int = 0,
    label: str = "",
) -> KernelOp:
    """Build an unpack kernel: scatter ``packed`` → ``layout`` in ``dest``."""
    nbytes = layout.size

    def apply() -> None:
        src = packed.data[packed_offset : packed_offset + nbytes]
        unpack_bytes(src, layout, dest.data, base_offset=dest_offset)

    return KernelOp(
        kind=OpKind.UNPACK,
        nbytes=nbytes,
        num_blocks=layout.num_blocks,
        mean_block=layout.mean_block,
        duration=kernel_compute_time(arch, nbytes, layout.num_blocks, layout.mean_block),
        apply=apply,
        label=label,
    )


def make_direct_ipc_op(
    arch: GPUArchitecture,
    source: GPUBuffer,
    src_layout: DataLayout,
    dest: GPUBuffer,
    dst_layout: DataLayout,
    peer_bandwidth: float,
    *,
    label: str = "",
) -> KernelOp:
    """Build a DirectIPC op: strided load-store over NVLink/PCIe [24].

    Moves the source layout's bytes directly into the destination
    layout (no staging); priced by the peer link, not HBM.
    """
    if src_layout.size != dst_layout.size:
        raise ValueError(
            f"DirectIPC layouts disagree: {src_layout.size} != {dst_layout.size}"
        )
    nbytes = src_layout.size

    def apply() -> None:
        staged = pack_bytes(source.data, src_layout)
        unpack_bytes(staged, dst_layout, dest.data)

    num_blocks = max(src_layout.num_blocks, dst_layout.num_blocks)
    mean_block = min(src_layout.mean_block, dst_layout.mean_block) or 1.0
    resident = max(1, num_blocks)
    eff_bw = min(peer_bandwidth, resident * arch.block_bandwidth)
    eff_bw *= arch.strided_efficiency(mean_block)
    duration = arch.kernel_fixed_cost + (nbytes / eff_bw if nbytes else 0.0)
    return KernelOp(
        kind=OpKind.DIRECT_IPC,
        nbytes=nbytes,
        num_blocks=num_blocks,
        mean_block=mean_block,
        duration=duration,
        apply=apply,
        label=label,
    )
