"""The simulated GPU device: architecture + memory + streams.

:class:`GPUDevice` is the object schemes program against.  It bundles
the cost-model constants of one :class:`~repro.gpu.archs.GPUArchitecture`
with a capacity-tracked :class:`~repro.gpu.memory.DeviceMemory` and a
set of :class:`~repro.gpu.stream.Stream` queues, and exposes factory
helpers for priced pack/unpack/DirectIPC operations.

The device does **not** hide CPU-side driver costs: callers launching a
kernel must themselves advance the simulated clock by
``device.arch.kernel_launch_overhead`` (and charge it to the
``LAUNCH`` trace bucket).  Keeping that cost in the caller is what lets
the schemes differ — GPU-Sync pays it per kernel, the fused design pays
it once per batch.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..datatypes.layout import DataLayout
from ..sim.engine import Simulator
from .archs import GPUArchitecture, TESLA_V100
from .kernels import KernelOp, make_direct_ipc_op, make_pack_op, make_unpack_op
from .memory import DeviceMemory, GPUBuffer
from .stream import CudaEvent, ExecutionEngine, Stream

__all__ = ["GPUDevice"]


class GPUDevice:
    """One simulated GPU."""

    _ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        arch: GPUArchitecture = TESLA_V100,
        name: str = "",
        functional: bool = True,
    ):
        self.sim = sim
        self.arch = arch
        self.device_id = next(GPUDevice._ids)
        self.name = name or f"gpu{self.device_id}"
        #: when False, operations are priced but move no bytes — used by
        #: large-message benchmarks where the NumPy data plane would
        #: dominate wall time (timing results are identical)
        self.functional = functional
        self.memory = DeviceMemory(arch.mem_capacity)
        #: device-wide execution serialization shared by all streams
        self.engine = ExecutionEngine()
        self.default_stream = Stream(sim, name=f"{self.name}:s0", engine=self.engine)
        self._streams: List[Stream] = [self.default_stream]

    # -- streams / events ---------------------------------------------------
    def create_stream(self, name: str = "") -> Stream:
        """Create an additional stream (the multi-stream GPU-Async path).

        Streams give independent ordering, but all share the device's
        execution engine — concurrent kernels serialize, as they do on
        hardware once a kernel saturates the SMs.
        """
        stream = Stream(
            self.sim,
            name=name or f"{self.name}:s{len(self._streams)}",
            engine=self.engine,
        )
        self._streams.append(stream)
        return stream

    def create_event(self, name: str = "") -> CudaEvent:
        """Create a CUDA-style event."""
        return CudaEvent(self.sim, name=name)

    @property
    def streams(self) -> tuple:
        """All streams created on this device."""
        return tuple(self._streams)

    @property
    def busy_time(self) -> float:
        """Total GPU-seconds executed across all streams."""
        return sum(s.busy_time for s in self._streams)

    @property
    def kernel_count(self) -> int:
        """Total operations executed across all streams."""
        return sum(s.op_count for s in self._streams)

    # -- memory ---------------------------------------------------------------
    def alloc(self, nbytes: int, name: str = "", fill: Optional[int] = None) -> GPUBuffer:
        """Allocate device memory."""
        buffer = self.memory.alloc(nbytes, name=name, fill=fill)
        buffer.functional = self.functional
        return buffer

    # -- op factories -----------------------------------------------------------
    def pack_op(
        self,
        source: GPUBuffer,
        layout: DataLayout,
        packed: GPUBuffer,
        *,
        source_offset: int = 0,
        packed_offset: int = 0,
        label: str = "",
    ) -> KernelOp:
        """Priced pack kernel for this device."""
        op = make_pack_op(
            self.arch,
            source,
            layout,
            packed,
            source_offset=source_offset,
            packed_offset=packed_offset,
            label=label,
        )
        return self._maybe_dry(op)

    def unpack_op(
        self,
        packed: GPUBuffer,
        layout: DataLayout,
        dest: GPUBuffer,
        *,
        packed_offset: int = 0,
        dest_offset: int = 0,
        label: str = "",
    ) -> KernelOp:
        """Priced unpack kernel for this device."""
        op = make_unpack_op(
            self.arch,
            packed,
            layout,
            dest,
            packed_offset=packed_offset,
            dest_offset=dest_offset,
            label=label,
        )
        return self._maybe_dry(op)

    def direct_ipc_op(
        self,
        source: GPUBuffer,
        src_layout: DataLayout,
        dest: GPUBuffer,
        dst_layout: DataLayout,
        peer_bandwidth: float,
        *,
        label: str = "",
    ) -> KernelOp:
        """Priced DirectIPC (zero-copy peer load-store) operation [24]."""
        op = make_direct_ipc_op(
            self.arch, source, src_layout, dest, dst_layout, peer_bandwidth, label=label
        )
        return self._maybe_dry(op)

    def _maybe_dry(self, op: KernelOp) -> KernelOp:
        if not self.functional:
            op.apply = lambda: None
        return op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPUDevice {self.name} ({self.arch.name})>"
