"""Cooperative-group thread-block partitioning for fused kernels.

The paper's fused kernel (Fig. 6) launches one grid and *partitions*
its thread blocks among the queued requests using CUDA cooperative
groups, so that

* each request is executed by its own group of thread blocks (or a
  fraction of one block for tiny requests — Fig. 6 shows 8 blocks
  serving 16 requests),
* each group synchronizes and signals completion independently — no
  kernel-boundary synchronization,
* the kernel's total time is the *maximum* over groups, not the sum,
  because groups run concurrently on different SMs.

:func:`partition` reproduces that arithmetic: it allocates block shares
proportional to each request's bytes (minimum one fair share), prices
each request with the kernel cost model under its allocation, and
returns per-request completion offsets plus the fused kernel's total
duration (one ``kernel_fixed_cost``, one launch for the whole batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .archs import GPUArchitecture
from .kernels import KernelOp, kernel_compute_time

__all__ = ["PartitionedRequest", "FusionPlan", "partition"]


@dataclass(frozen=True)
class PartitionedRequest:
    """One request's share of a fused kernel."""

    op: KernelOp
    #: thread-block share allocated (may be fractional: cooperative
    #: groups can split one block among several tiny requests)
    block_share: float
    #: seconds from kernel start until this request's group completes
    completion_offset: float


@dataclass(frozen=True)
class FusionPlan:
    """The priced execution plan of one fused kernel."""

    requests: List[PartitionedRequest]
    #: thread blocks in the fused grid
    grid_blocks: int
    #: GPU-side duration of the whole fused kernel (max over groups)
    total_duration: float

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all fused requests."""
        return sum(r.op.nbytes for r in self.requests)


def partition(
    arch: GPUArchitecture,
    ops: Sequence[KernelOp],
    grid_blocks: Optional[int] = None,
) -> FusionPlan:
    """Partition a fused grid's thread blocks among ``ops``.

    ``grid_blocks`` defaults to the architecture's saturation point
    (enough blocks to reach peak memory bandwidth) — launching more
    would add scheduling overhead without adding bandwidth.
    """
    if not ops:
        raise ValueError("cannot partition an empty request batch")
    if grid_blocks is None:
        grid_blocks = arch.saturation_blocks
    if grid_blocks < 1:
        raise ValueError(f"grid_blocks must be >= 1, got {grid_blocks}")

    weights = [max(op.nbytes, 1) for op in ops]
    total_weight = float(sum(weights))
    # Fair minimum share: a request never starves below an equal split
    # of one block per... group; cooperative groups let one block serve
    # several requests, so shares below 1.0 are legal.
    min_share = min(1.0, grid_blocks / len(ops))

    requests: List[PartitionedRequest] = []
    longest = 0.0
    for op, w in zip(ops, weights):
        share = max(min_share, grid_blocks * w / total_weight)
        offset = kernel_compute_time(
            arch,
            op.nbytes,
            op.num_blocks,
            op.mean_block,
            grid_blocks=share,
            include_fixed=True,
        )
        requests.append(PartitionedRequest(op=op, block_share=share, completion_offset=offset))
        longest = max(longest, offset)
    return FusionPlan(requests=requests, grid_blocks=grid_blocks, total_duration=longest)
