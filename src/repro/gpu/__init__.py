"""Simulated GPU substrate.

Architecture cost models, NumPy-backed device memory, CUDA-like streams
and events, the pack/unpack kernel cost model with its functional data
plane, and the cooperative-group partitioner used by fused kernels.
"""

from .archs import (
    ARCHITECTURES,
    QUADRO_GV100,
    TESLA_K80,
    TESLA_P100,
    TESLA_V100,
    TESLA_V100_PCIE,
    GPUArchitecture,
)
from .coop import FusionPlan, PartitionedRequest, partition
from .device import GPUDevice
from .kernels import (
    KernelOp,
    OpKind,
    kernel_compute_time,
    make_direct_ipc_op,
    make_pack_op,
    make_unpack_op,
)
from .memory import BufferPool, DeviceMemory, GPUBuffer, OutOfMemoryError, host_alloc
from .stream import CudaEvent, ExecutionEngine, Stream

__all__ = [
    "GPUArchitecture",
    "ARCHITECTURES",
    "TESLA_K80",
    "TESLA_P100",
    "TESLA_V100",
    "TESLA_V100_PCIE",
    "QUADRO_GV100",
    "GPUDevice",
    "GPUBuffer",
    "DeviceMemory",
    "OutOfMemoryError",
    "host_alloc",
    "BufferPool",
    "Stream",
    "ExecutionEngine",
    "CudaEvent",
    "KernelOp",
    "OpKind",
    "kernel_compute_time",
    "make_pack_op",
    "make_unpack_op",
    "make_direct_ipc_op",
    "partition",
    "FusionPlan",
    "PartitionedRequest",
]
