"""CUDA-like streams and events on the simulated clock.

A :class:`Stream` is an in-order execution queue: operations enqueued
on it run back-to-back on the GPU, each completing at
``max(now, stream tail) + duration``.  Enqueuing is free on the GPU
side — the CPU-side launch overhead is paid by the caller (that split
is the accounting the paper's analysis rests on).

A :class:`CudaEvent` mirrors ``cudaEvent_t``: it is *recorded* on a
stream and becomes ready when all work enqueued before the record has
completed; ``query()`` is the non-blocking poll the GPU-Async baseline
[23] spends its "Scheduling"/"Sync." budget on.

Operations carry their functional ``apply`` thunk, which executes at
the operation's simulated completion time, so the byte state of device
memory is always consistent with the clock.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..sim.engine import Event, Simulator, fastpath_enabled
from .kernels import KernelOp

__all__ = ["ExecutionEngine", "Stream", "CudaEvent"]


class ExecutionEngine:
    """Device-wide kernel execution serialization.

    Packing/unpacking kernels of the studied workloads saturate the
    GPU's memory system and SMs, so kernels launched on *different*
    streams do not truly overlap — the hardware work distributor runs
    their thread blocks back-to-back.  All streams of one device share
    an engine; an operation starts no earlier than both its stream's
    tail (CUDA stream ordering) and the engine's tail (device
    occupancy).  This is what keeps the multi-stream GPU-Async baseline
    from getting physically impossible aggregate bandwidth.
    """

    __slots__ = ("tail",)

    def __init__(self) -> None:
        self.tail = 0.0

    def reserve(self, start: float, duration: float) -> float:
        """Claim the device from ``max(start, tail)``; returns actual start."""
        begin = max(start, self.tail)
        self.tail = begin + duration
        return begin


class Stream:
    """An in-order GPU work queue."""

    __slots__ = ("sim", "stream_id", "name", "engine", "_tail", "busy_time", "op_count")

    _ids = itertools.count()

    def __init__(self, sim: Simulator, name: str = "", engine: Optional[ExecutionEngine] = None):
        self.sim = sim
        self.stream_id = next(Stream._ids)
        self.name = name or f"stream{self.stream_id}"
        self.engine = engine if engine is not None else ExecutionEngine()
        self._tail = 0.0
        #: total GPU-busy seconds executed on this stream
        self.busy_time = 0.0
        #: number of operations executed
        self.op_count = 0

    @property
    def tail(self) -> float:
        """Completion time of the last enqueued operation."""
        return self._tail

    @property
    def idle(self) -> bool:
        """True when all enqueued work has completed."""
        return self._tail <= self.sim.now

    def next_start(self) -> float:
        """Earliest start time of an operation enqueued right now."""
        return max(self.sim.now, self._tail, self.engine.tail)

    def enqueue(self, op: KernelOp) -> Event:
        """Queue ``op``; returns an event firing when it completes.

        The op's ``apply`` thunk runs at completion time, so device
        memory contents track the simulated clock.
        """
        return self.enqueue_callable(op.duration, op.apply, value=op)

    def enqueue_callable(
        self,
        duration: float,
        apply: Optional[Callable[[], None]] = None,
        value: object = None,
    ) -> Event:
        """Queue an arbitrary timed operation (copies, fused kernels)."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        if self.sim.noise is not None:
            duration *= self.sim.noise.factor("gpu")
        sim = self.sim
        start = self.engine.reserve(max(sim.now, self._tail), duration)
        end = start + duration
        self._tail = end
        self.busy_time += duration
        self.op_count += 1
        if fastpath_enabled():
            # Fast path: the completion timeout *is* the completion
            # event.  The generic path below relays through a second
            # zero-delay event, which doubles the calendar traffic of
            # every GPU op without moving any timestamp; the CI
            # equivalence sweep proves the collapse is byte-identical.
            trigger = sim.timeout(end - sim.now, value)
            if apply is not None:
                trigger.add_callback(lambda _ev: apply())
            return trigger
        done = Event(sim)
        relay = sim.timeout(end - sim.now)

        def _complete(_: Event) -> None:
            if apply is not None:
                apply()
            done.succeed(value)

        relay.add_callback(_complete)
        return done

    def barrier(self) -> Event:
        """Event firing when all currently enqueued work has completed."""
        return self.enqueue_callable(0.0)


class CudaEvent:
    """A ``cudaEvent_t`` look-alike for the GPU-Async baseline."""

    __slots__ = ("sim", "event_id", "name", "_ready_at", "_sim_event")

    _ids = itertools.count()

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.event_id = next(CudaEvent._ids)
        self.name = name or f"cuevent{self.event_id}"
        self._ready_at: Optional[float] = None
        self._sim_event: Optional[Event] = None

    @property
    def recorded(self) -> bool:
        """True once :meth:`record` has been called."""
        return self._ready_at is not None

    @property
    def ready_at(self) -> float:
        """Simulation time at which the event becomes ready."""
        if self._ready_at is None:
            raise RuntimeError(f"{self.name} has not been recorded")
        return self._ready_at

    def record(self, stream: Stream) -> None:
        """Mark completion of all work currently enqueued on ``stream``.

        (The CPU-side ``cudaEventRecord`` cost is charged by the caller;
        this captures only the dependency.)
        """
        self._ready_at = stream.tail
        self._sim_event = None

    def query(self) -> bool:
        """Non-blocking readiness poll (``cudaEventQuery``)."""
        if self._ready_at is None:
            return False
        return self.sim.now >= self._ready_at

    def wait(self) -> Event:
        """Simulator event that fires when this CUDA event is ready."""
        if self._ready_at is None:
            raise RuntimeError(f"cannot wait on unrecorded {self.name}")
        if self._sim_event is None:
            delay = max(0.0, self._ready_at - self.sim.now)
            self._sim_event = self.sim.timeout(delay)
        return self._sim_event
