"""GPU architecture models and their calibrated cost constants.

The reproduction replaces CUDA hardware with a cost model; this module
is where every per-architecture constant lives.  Values are calibrated
against the paper's own measurements and its cited sources:

* **Kernel launch overhead** stays in the 6–12 µs range across
  architectures (Fig. 1 of the paper; Zhang et al. [26] measured
  ~6–13 µs depending on driver/launch path).  This is the constant the
  whole paper is about: it *does not shrink* as GPUs get faster, so the
  small pack kernels of DDT processing are launch-bound.
* **Pack kernel compute** is memory-bound: HBM bandwidth × a strided-
  access efficiency that degrades for blocks smaller than the 128-byte
  memory transaction (sparse layouts), divided further when too few
  thread blocks are resident to saturate the memory system (the reason
  fusing small kernels is nearly free — Section IV-A3).
* **Synchronization** constants (``cudaStreamSynchronize``,
  ``cudaEventRecord``/``Query``) price the GPU-Sync and GPU-Async
  baselines exactly as the Fig. 11 breakdown requires.
* **GDRCopy host-mapped writes** (used by the CPU-GPU-Hybrid baseline
  [24]) move data at a few GB/s with *zero* GPU driver overhead — which
  is why Hybrid wins for small dense layouts (Fig. 10, Fig. 12c) and
  loses for sparse ones.

All bandwidth figures are bytes/second; all times are **seconds** (use
:func:`repro.sim.us` when reading the µs literature values).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..sim.engine import us

__all__ = [
    "GPUArchitecture",
    "TESLA_K80",
    "TESLA_P100",
    "TESLA_V100",
    "TESLA_V100_PCIE",
    "QUADRO_GV100",
    "ARCHITECTURES",
]

GiB = 1024**3
GB = 1e9


@dataclass(frozen=True)
class GPUArchitecture:
    """Cost-model constants for one GPU generation."""

    name: str
    year: int
    #: number of streaming multiprocessors
    sm_count: int
    #: SM clock in GHz (used for per-block bookkeeping costs)
    clock_ghz: float
    #: peak HBM/GDDR bandwidth, bytes/s
    mem_bandwidth: float
    #: device memory capacity, bytes
    mem_capacity: int
    #: CPU-side cost of launching one kernel (driver + runtime), s
    kernel_launch_overhead: float
    #: GPU-side pipeline ramp before a kernel's first useful work, s
    kernel_fixed_cost: float
    #: cudaStreamSynchronize CPU cost when the stream is already idle, s
    stream_sync_overhead: float
    #: cudaEventRecord CPU cost, s
    event_record_overhead: float
    #: one cudaEventQuery poll, s
    event_query_overhead: float
    #: CPU cost of issuing one cudaMemcpyAsync (the naive scheme's unit), s
    memcpy_async_overhead: float
    #: memory-transaction granularity for strided-efficiency, bytes
    coalesce_bytes: int = 128
    #: thread blocks needed to saturate the memory system
    saturation_blocks: int = 160
    #: per-block fixed bookkeeping cycles (descriptor fetch, indexing)
    cycles_per_block: float = 150.0
    #: GDRCopy-style host-mapped write bandwidth (hybrid scheme), bytes/s
    host_mapped_bandwidth: float = 5.0 * GB
    #: hybrid scheme's per-block CPU loop cost, s
    host_block_cost: float = us(0.12)

    @property
    def block_bandwidth(self) -> float:
        """Sustained bandwidth of a single resident thread block, bytes/s."""
        return self.mem_bandwidth / self.saturation_blocks

    def strided_efficiency(self, mean_block_bytes: float) -> float:
        """Fraction of peak bandwidth achieved at a given block size.

        A gather whose contiguous runs are shorter than the memory
        transaction wastes the rest of each transaction; runs of at
        least ``coalesce_bytes`` approach peak.
        """
        if mean_block_bytes <= 0:
            return 1.0
        return min(1.0, mean_block_bytes / self.coalesce_bytes)

    def with_overrides(self, **kwargs) -> "GPUArchitecture":
        """Copy with selected constants replaced (used by ablations)."""
        return replace(self, **kwargs)


#: Kepler-generation Tesla K80 (one GK210 die).
TESLA_K80 = GPUArchitecture(
    name="Tesla K80",
    year=2014,
    sm_count=13,
    clock_ghz=0.875,
    mem_bandwidth=240 * GB / 2,  # per die
    mem_capacity=12 * GiB,
    kernel_launch_overhead=us(11.0),
    kernel_fixed_cost=us(1.2),
    stream_sync_overhead=us(10.0),
    event_record_overhead=us(2.0),
    event_query_overhead=us(2.0),
    memcpy_async_overhead=us(9.0),
    saturation_blocks=52,
    cycles_per_block=350.0,
    host_mapped_bandwidth=3.0 * GB,
)

#: Pascal-generation Tesla P100 (SXM2).
TESLA_P100 = GPUArchitecture(
    name="Tesla P100",
    year=2016,
    sm_count=56,
    clock_ghz=1.328,
    mem_bandwidth=732 * GB,
    mem_capacity=16 * GiB,
    kernel_launch_overhead=us(8.0),
    kernel_fixed_cost=us(0.8),
    stream_sync_overhead=us(8.0),
    event_record_overhead=us(1.5),
    event_query_overhead=us(1.5),
    memcpy_async_overhead=us(7.0),
    saturation_blocks=112,
    cycles_per_block=200.0,
    host_mapped_bandwidth=4.0 * GB,
)

#: Volta-generation Tesla V100 (SXM2) — the GPU of both Lassen and ABCI.
TESLA_V100 = GPUArchitecture(
    name="Tesla V100",
    year=2017,
    sm_count=80,
    clock_ghz=1.53,
    mem_bandwidth=900 * GB,
    mem_capacity=16 * GiB,
    kernel_launch_overhead=us(6.5),
    kernel_fixed_cost=us(0.6),
    stream_sync_overhead=us(7.0),
    event_record_overhead=us(1.2),
    event_query_overhead=us(1.2),
    memcpy_async_overhead=us(6.0),
    saturation_blocks=160,
    cycles_per_block=150.0,
    host_mapped_bandwidth=5.0 * GB,
)

#: V100 behind PCIe Gen3 (ABCI's attachment).  Every CUDA driver
#: interaction — launch doorbells, synchronization MMIO, event queries —
#: crosses the PCIe switch hierarchy instead of NVLink-attached POWER9
#: coherence, so per-call overheads run noticeably higher than on
#: Lassen.  This asymmetry is what lets the proposed design's win grow
#: from ~8× (Lassen) to ~19× (ABCI) on sparse layouts: the baselines
#: pay the inflated per-operation driver costs thousands of times, the
#: fused design a handful.
TESLA_V100_PCIE = TESLA_V100.with_overrides(
    name="Tesla V100 (PCIe)",
    kernel_launch_overhead=us(10.0),
    stream_sync_overhead=us(11.0),
    event_record_overhead=us(1.8),
    event_query_overhead=us(1.8),
    memcpy_async_overhead=us(9.0),
    host_mapped_bandwidth=3.5 * GB,
)

#: Volta-generation Quadro GV100 (workstation part, Fig. 1's fourth bar).
QUADRO_GV100 = GPUArchitecture(
    name="Quadro GV100",
    year=2018,
    sm_count=80,
    clock_ghz=1.627,
    mem_bandwidth=870 * GB,
    mem_capacity=32 * GiB,
    kernel_launch_overhead=us(6.8),
    kernel_fixed_cost=us(0.6),
    stream_sync_overhead=us(7.2),
    event_record_overhead=us(1.2),
    event_query_overhead=us(1.2),
    memcpy_async_overhead=us(6.2),
    saturation_blocks=160,
    cycles_per_block=150.0,
    host_mapped_bandwidth=5.0 * GB,
)

#: Name → architecture registry (the sweep axis of Fig. 1).
ARCHITECTURES: Dict[str, GPUArchitecture] = {
    a.name: a for a in (TESLA_K80, TESLA_P100, TESLA_V100, QUADRO_GV100)
}
