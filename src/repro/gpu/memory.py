"""Simulated device memory: NumPy-backed buffers with a capacity ledger.

A :class:`GPUBuffer` is the reproduction's ``void*`` device pointer: a
1-D ``uint8`` array plus identity metadata.  :class:`DeviceMemory`
tracks allocation against the architecture's capacity (we never
actually reserve 16 GB of host RAM — each buffer allocates only its own
bytes) and hands out buffers for the schemes' staging areas.

Host (pinned) staging buffers use the same class with
``space="host"``; the distinction matters to the network model, which
prices GPU-resident and host-resident endpoints differently.
"""

from __future__ import annotations

import itertools
from typing import Literal, Optional

import numpy as np

__all__ = ["GPUBuffer", "DeviceMemory", "OutOfMemoryError", "host_alloc", "BufferPool"]

Space = Literal["device", "host"]


class OutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's remaining capacity."""


class GPUBuffer:
    """A contiguous region of (simulated) device or host memory.

    The NumPy backing store is materialized lazily on the first ``data``
    access: dry (non-functional) runs price every operation without ever
    touching buffer contents, and for the large-message figure sweeps
    the eager ``np.zeros`` per allocation dominated wall time.  Contents
    are unchanged — the first touch sees exactly the zeros (or ``fill``)
    the eager allocation produced.
    """

    __slots__ = ("_data", "_nbytes", "_fill", "space", "owner", "buffer_id", "name", "functional")

    _ids = itertools.count()

    def __init__(
        self,
        nbytes: int,
        space: Space = "device",
        owner: Optional["DeviceMemory"] = None,
        name: str = "",
        fill: Optional[int] = None,
    ):
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self._data: Optional[np.ndarray] = None
        self._nbytes = nbytes
        self._fill = fill
        self.space: Space = space
        self.owner = owner
        self.buffer_id = next(GPUBuffer._ids)
        self.name = name or f"buf{self.buffer_id}"
        #: False when the owning device runs in dry (priced-only) mode
        self.functional = True

    @property
    def data(self) -> np.ndarray:
        """The buffer's bytes (materialized on first access)."""
        data = self._data
        if data is None:
            data = self._data = (
                np.zeros(self._nbytes, dtype=np.uint8)
                if self._fill is None
                else np.full(self._nbytes, self._fill, dtype=np.uint8)
            )
        return data

    @property
    def nbytes(self) -> int:
        """Capacity of the buffer in bytes."""
        return self._nbytes

    @property
    def on_device(self) -> bool:
        """True for GPU-resident memory."""
        return self.space == "device"

    def view(self, dtype: np.dtype) -> np.ndarray:
        """Typed view over the raw bytes."""
        return self.data.view(dtype)

    def free(self) -> None:
        """Return the bytes to the owning allocator (if any)."""
        if self.owner is not None:
            self.owner._release(self)
            self.owner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPUBuffer {self.name} {self.nbytes}B {self.space}>"


class DeviceMemory:
    """Capacity-tracking allocator for one GPU's memory."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._allocated = 0
        self.peak = 0
        self.allocation_count = 0

    @property
    def allocated(self) -> int:
        """Bytes currently allocated."""
        return self._allocated

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        return self.capacity - self._allocated

    def alloc(self, nbytes: int, name: str = "", fill: Optional[int] = None) -> GPUBuffer:
        """Allocate a device buffer of ``nbytes``.

        Raises :class:`OutOfMemoryError` when capacity is exceeded —
        schemes use this to size their staging pools honestly.
        """
        if nbytes > self.available:
            raise OutOfMemoryError(
                f"requested {nbytes} B with only {self.available} B free "
                f"of {self.capacity} B"
            )
        self._allocated += nbytes
        self.peak = max(self.peak, self._allocated)
        self.allocation_count += 1
        return GPUBuffer(nbytes, space="device", owner=self, name=name, fill=fill)

    def _release(self, buffer: GPUBuffer) -> None:
        self._allocated -= buffer.nbytes
        assert self._allocated >= 0, "allocator accounting went negative"


def host_alloc(nbytes: int, name: str = "", fill: Optional[int] = None) -> GPUBuffer:
    """Allocate a host (pinned) staging buffer."""
    return GPUBuffer(nbytes, space="host", name=name, fill=fill)


class BufferPool:
    """Size-bucketed pool of reusable staging buffers.

    GPU-aware MPI runtimes never ``cudaMalloc`` per message: staging
    buffers come from a pool of registered regions (allocation and IB
    memory registration both cost far too much on a per-message basis).
    This pool mirrors that: requests round up to power-of-two buckets;
    released buffers go back to their bucket for reuse.

    The pool fronts a :class:`DeviceMemory` (or host allocation when
    ``memory is None``) and exposes hit/miss statistics so benchmarks
    can report reuse rates.  ``trim()`` returns idle capacity to the
    allocator.
    """

    def __init__(
        self,
        memory: Optional[DeviceMemory] = None,
        *,
        max_cached_per_bucket: int = 64,
        functional: bool = True,
    ):
        self.memory = memory
        self.max_cached_per_bucket = max_cached_per_bucket
        self.functional = functional
        self._buckets: dict[int, list[GPUBuffer]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _bucket_for(nbytes: int) -> int:
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        return 1 << (nbytes - 1).bit_length()

    @property
    def cached_bytes(self) -> int:
        """Bytes currently idle in the pool."""
        return sum(bucket * len(bufs) for bucket, bufs in self._buckets.items())

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def acquire(self, nbytes: int, name: str = "") -> GPUBuffer:
        """Get a buffer of at least ``nbytes`` (power-of-two bucketed)."""
        bucket = self._bucket_for(nbytes)
        cached = self._buckets.get(bucket)
        if cached:
            self.hits += 1
            buffer = cached.pop()
            if self.functional:
                buffer.data[:] = 0
            return buffer
        self.misses += 1
        if self.memory is not None:
            buffer = self.memory.alloc(bucket, name=name)
        else:
            buffer = host_alloc(bucket, name=name)
        buffer.functional = self.functional
        return buffer

    def release(self, buffer: GPUBuffer) -> None:
        """Return a buffer to its bucket (freed outright when full)."""
        bucket = self._bucket_for(buffer.nbytes)
        if buffer.nbytes != bucket:
            raise ValueError(
                f"buffer of {buffer.nbytes} B did not come from this pool"
            )
        cached = self._buckets.setdefault(bucket, [])
        if len(cached) >= self.max_cached_per_bucket:
            buffer.free()
        else:
            cached.append(buffer)

    def trim(self) -> int:
        """Free all idle buffers; returns the number released."""
        count = 0
        for cached in self._buckets.values():
            for buffer in cached:
                buffer.free()
                count += 1
            cached.clear()
        return count
