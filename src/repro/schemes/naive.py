"""Naive per-block copies: the production-library path (Fig. 14).

The paper notes (§V-C) that SpectrumMPI and OpenMPI+UCX "do not have
optimized support for non-contiguous data movement and use a naive
approach, which uses multiple memory copies such as
``cudaMemcpyAsync``, to pack and unpack non-contiguous GPU-resident
data".  That is this scheme: **one ``cudaMemcpyAsync`` per contiguous
block** of the layout, then a stream synchronize.

Each copy pays the driver's async-memcpy issue overhead on the CPU, so
a sparse layout with thousands of blocks costs thousands of driver
calls — milliseconds of pure CPU overhead before a byte moves.  This is
the mechanism behind the "orders of magnitude" gap of Fig. 14.

``per_copy_factor`` scales the issue overhead to model different
production stacks (SpectrumMPI vs. OpenMPI differ a little in their
copy-issue paths).
"""

from __future__ import annotations

from ..gpu.kernels import KernelOp
from ..net.topology import RankSite
from ..sim.trace import Category, Trace
from .base import PackingScheme, SchemeCapabilities, SchemeGen

__all__ = ["NaiveCopyScheme"]


class NaiveCopyScheme(PackingScheme):
    """One ``cudaMemcpyAsync`` per contiguous block, then synchronize."""

    name = "Naive-Copy"
    capabilities = SchemeCapabilities(
        layout_cache=False,
        driver_overhead="high",
        latency="high",
        overlap="low",
    )

    def __init__(
        self,
        site: RankSite,
        trace: Trace | None = None,
        *,
        per_copy_factor: float = 1.0,
        name: str | None = None,
    ):
        super().__init__(site, trace)
        self.per_copy_factor = per_copy_factor
        if name is not None:
            self.name = name
        self.stream = site.device.default_stream

    def copy_issue_time(self, op: KernelOp) -> float:
        """Total CPU time spent issuing the per-block copies."""
        arch = self.site.device.arch
        return op.num_blocks * arch.memcpy_async_overhead * self.per_copy_factor

    def copy_execute_time(self, op: KernelOp) -> float:
        """Total GPU-side time of the per-block copy train.

        Each small D2D copy pays its own engine setup; bandwidth is the
        device's, *without* the strided-efficiency penalty (each copy is
        contiguous) but also without any cross-block pipelining.
        """
        arch = self.site.device.arch
        return op.num_blocks * arch.kernel_fixed_cost + 2 * op.nbytes / arch.mem_bandwidth

    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        arch = self.site.device.arch
        # Issue one cudaMemcpyAsync per block (aggregated into a single
        # clock advance; the cost is identical and the calendar stays
        # small even for many-thousand-block layouts).
        yield from self._charge(Category.LAUNCH, self.copy_issue_time(op), label)
        done = self.stream.enqueue_callable(self.copy_execute_time(op), op.apply, value=op)
        start = self.sim.now
        yield done
        self.trace.charge(Category.PACK, start, self.sim.now, label=label)
        yield from self._charge(Category.SYNC, arch.stream_sync_overhead, label)
        return self._handle(op, done, label=label)

    def wait(self, handles) -> SchemeGen:
        """Everything completed inside :meth:`submit`."""
        return
        yield  # pragma: no cover - generator marker
