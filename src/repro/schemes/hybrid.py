"""CPU-GPU-Hybrid: the adaptive GDRCopy baseline (Chu et al. [24]).

The HiPC'19 design this paper compares against keeps the datatype
layout cache and *adaptively* picks, per operation:

* a **CPU-driven** path for small/dense layouts — the host CPU
  load-stores GPU memory directly through a GDRCopy BAR mapping.  It
  moves data at only a few GB/s and pays a per-block loop cost, but it
  has **zero GPU driver overhead** (no launch, no synchronize), which
  makes it unbeatable for small dense transfers (Fig. 10, Fig. 12c);
* the **GPU-Sync** kernel path otherwise (large or very sparse
  layouts), inheriting that scheme's per-operation launch+sync costs.

The crossover mirrors [24]: CPU path while the per-byte and per-block
host costs stay below the fixed GPU driver cost, kernels beyond.  The
scheme requires the GDRCopy kernel module (Table I's footnote — "may
not be available in all HPC systems"); construct with
``system.has_gdrcopy`` to model machines without it.
"""

from __future__ import annotations

from ..gpu.kernels import KernelOp
from ..net.topology import RankSite
from ..sim.engine import Event, us
from ..sim.trace import Category, Trace
from .base import PackingScheme, SchemeCapabilities, SchemeGen
from .gpu_sync import GPUSyncScheme

__all__ = ["CPUGPUHybridScheme"]


class CPUGPUHybridScheme(PackingScheme):
    """Adaptive host-driven (GDRCopy) / GPU-Sync datatype processing."""

    name = "CPU-GPU-Hybrid"
    capabilities = SchemeCapabilities(
        layout_cache=True,
        driver_overhead="medium",
        latency="low",
        overlap="high",
        requires_gdrcopy=True,
    )

    def __init__(
        self,
        site: RankSite,
        trace: Trace | None = None,
        *,
        cpu_path_max_bytes: int = 32 * 1024,
        cpu_path_max_blocks: int = 256,
        gdrcopy_available: bool = True,
        software_overhead: float = us(0.8),
    ):
        super().__init__(site, trace)
        self.cpu_path_max_bytes = cpu_path_max_bytes
        self.cpu_path_max_blocks = cpu_path_max_blocks
        self.gdrcopy_available = gdrcopy_available
        #: per-operation adaptive-decision + cache bookkeeping; the
        #: MVAPICH2-GDR model raises this to full production-stack cost
        self.software_overhead = software_overhead
        self._gpu_fallback = GPUSyncScheme(site, self.trace)
        #: decision counters reported by the ablation benchmarks
        self.cpu_path_count = 0
        self.gpu_path_count = 0

    def _use_cpu_path(self, op: KernelOp) -> bool:
        if not self.gdrcopy_available:
            return False
        return (
            op.nbytes <= self.cpu_path_max_bytes
            and op.num_blocks <= self.cpu_path_max_blocks
        )

    def host_copy_time(self, op: KernelOp) -> float:
        """Cost of the GDRCopy host loop for one operation."""
        arch = self.site.device.arch
        return (
            op.num_blocks * arch.host_block_cost
            + op.nbytes / arch.host_mapped_bandwidth
        )

    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        if self.software_overhead > 0:
            yield from self._charge(Category.SCHED, self.software_overhead, label)
        if self._use_cpu_path(op):
            self.cpu_path_count += 1
            # Host-driven copy: pure CPU time, no GPU driver involvement.
            yield from self._charge(Category.PACK, self.host_copy_time(op), label)
            op.apply()
            done = Event(self.sim, name=f"hybrid:{label}")
            done.succeed()
            # Zero-delay events still need one calendar step to process;
            # mark by waiting on it so the handle reads as done.
            yield done
            return self._handle(op, done, label=label)
        self.gpu_path_count += 1
        handle = yield from self._gpu_fallback.submit(op, label=label)
        return handle

    def wait(self, handles) -> SchemeGen:
        """Both paths complete inside :meth:`submit`."""
        return
        yield  # pragma: no cover - generator marker
