"""Datatype-processing schemes: the baselines the paper evaluates.

The proposed design itself lives in :mod:`repro.core`; this package
holds the scheme interface and every competitor, plus a registry used
by the benchmark harness.
"""

from typing import Callable, Dict

from ..net.topology import RankSite
from ..sim.trace import Trace
from .base import OpHandle, PackingScheme, SchemeCapabilities
from .gpu_async import GPUAsyncScheme
from .gpu_sync import GPUSyncScheme
from .hybrid import CPUGPUHybridScheme
from .mvapich_adaptive import MVAPICHAdaptiveScheme
from .naive import NaiveCopyScheme

__all__ = [
    "PackingScheme",
    "OpHandle",
    "SchemeCapabilities",
    "GPUSyncScheme",
    "GPUAsyncScheme",
    "CPUGPUHybridScheme",
    "MVAPICHAdaptiveScheme",
    "NaiveCopyScheme",
    "SCHEME_REGISTRY",
    "make_scheme_factory",
]


def _spectrum_factory(site: RankSite, trace: Trace) -> PackingScheme:
    return NaiveCopyScheme(site, trace, per_copy_factor=1.0, name="SpectrumMPI")


def _openmpi_factory(site: RankSite, trace: Trace) -> PackingScheme:
    return NaiveCopyScheme(site, trace, per_copy_factor=0.85, name="OpenMPI")


def _proposed_factory(site: RankSite, trace: Trace) -> PackingScheme:
    from ..core.framework import KernelFusionScheme

    return KernelFusionScheme(site, trace)


#: name -> factory(site, trace) for every evaluated scheme.
SCHEME_REGISTRY: Dict[str, Callable[[RankSite, Trace], PackingScheme]] = {
    "GPU-Sync": GPUSyncScheme,
    "GPU-Async": GPUAsyncScheme,
    "CPU-GPU-Hybrid": CPUGPUHybridScheme,
    "MVAPICH2-GDR": MVAPICHAdaptiveScheme,
    "SpectrumMPI": _spectrum_factory,
    "OpenMPI": _openmpi_factory,
    "Proposed": _proposed_factory,
}


def make_scheme_factory(name: str, **kwargs) -> Callable[[RankSite, Trace], PackingScheme]:
    """Factory for ``name`` with constructor overrides baked in."""
    base = SCHEME_REGISTRY[name]

    def factory(site: RankSite, trace: Trace) -> PackingScheme:
        if kwargs and base in (_spectrum_factory, _openmpi_factory, _proposed_factory):
            raise ValueError(f"overrides not supported for aliased scheme {name!r}")
        return base(site, trace, **kwargs) if kwargs else base(site, trace)

    return factory
