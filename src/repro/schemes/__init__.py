"""Datatype-processing schemes: the baselines the paper evaluates.

The proposed design itself lives in :mod:`repro.core`; this package
holds the scheme interface and every competitor, plus a registry used
by the benchmark harness.  :func:`make_scheme_factory` is the single
instantiation path: it consumes a :class:`~repro.config.SchemeCfg`
(or a legacy ``(name, **kwargs)`` pair) and validates every override
against the scheme's constructor signature.
"""

import inspect
from typing import Any, Callable, Dict, Union

from ..config import SchemeCfg
from ..net.topology import RankSite
from ..sim.trace import Trace
from .base import OpHandle, PackingScheme, SchemeCapabilities
from .gpu_async import GPUAsyncScheme
from .gpu_sync import GPUSyncScheme
from .hybrid import CPUGPUHybridScheme
from .mvapich_adaptive import MVAPICHAdaptiveScheme
from .naive import NaiveCopyScheme

__all__ = [
    "PackingScheme",
    "OpHandle",
    "SchemeCapabilities",
    "GPUSyncScheme",
    "GPUAsyncScheme",
    "CPUGPUHybridScheme",
    "MVAPICHAdaptiveScheme",
    "NaiveCopyScheme",
    "SCHEME_REGISTRY",
    "make_scheme_factory",
]


def _spectrum_factory(site: RankSite, trace: Trace) -> PackingScheme:
    return NaiveCopyScheme(site, trace, per_copy_factor=1.0, name="SpectrumMPI")


def _openmpi_factory(site: RankSite, trace: Trace) -> PackingScheme:
    return NaiveCopyScheme(site, trace, per_copy_factor=0.85, name="OpenMPI")


def _proposed_factory(site: RankSite, trace: Trace) -> PackingScheme:
    from ..core.framework import KernelFusionScheme

    return KernelFusionScheme(site, trace)


#: name -> factory(site, trace) for every evaluated scheme.
SCHEME_REGISTRY: Dict[str, Callable[[RankSite, Trace], PackingScheme]] = {
    "GPU-Sync": GPUSyncScheme,
    "GPU-Async": GPUAsyncScheme,
    "CPU-GPU-Hybrid": CPUGPUHybridScheme,
    "MVAPICH2-GDR": MVAPICHAdaptiveScheme,
    "SpectrumMPI": _spectrum_factory,
    "OpenMPI": _openmpi_factory,
    "Proposed": _proposed_factory,
}


#: alias factories take no constructor overrides
_ALIASED = (_spectrum_factory, _openmpi_factory, _proposed_factory)


def _validate_scheme_kwargs(name: str, ctor: Callable, kwargs: Dict[str, Any]) -> None:
    """Reject keyword overrides the scheme's constructor cannot accept.

    Validated eagerly (at factory-build time, not first call), naming
    the bad key and the scheme — the satellite fix for the old silent
    forwarding of unknown kwargs.
    """
    if not kwargs:
        return
    if ctor in _ALIASED:
        raise ValueError(f"overrides not supported for aliased scheme {name!r}")
    params = inspect.signature(ctor).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return
    accepted = {
        pname
        for pname, p in params.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        and pname not in ("site", "trace")
    }
    for key in kwargs:
        if key not in accepted:
            raise ValueError(
                f"unknown option {key!r} for scheme {name!r} "
                f"(accepted: {sorted(accepted)})"
            )


def _fusion_factory(cfg: SchemeCfg) -> Callable[[RankSite, Trace], PackingScheme]:
    from ..core.framework import KernelFusionScheme
    from ..core.fusion_policy import FusionPolicy

    policy = FusionPolicy(**cfg.fusion.policy_kwargs())
    capacity = cfg.fusion.capacity if cfg.fusion.capacity is not None else 256
    options = dict(cfg.options)
    _validate_scheme_kwargs(cfg.name, KernelFusionScheme, options)

    def factory(site: RankSite, trace: Trace) -> PackingScheme:
        return KernelFusionScheme(
            site, trace, policy=policy, capacity=capacity, name=cfg.label, **options
        )

    return factory


def make_scheme_factory(
    scheme: Union[str, SchemeCfg], **kwargs: Any
) -> Callable[[RankSite, Trace], PackingScheme]:
    """The single scheme-instantiation path: ``factory(site, trace)``.

    Accepts a :class:`~repro.config.SchemeCfg` (the config plane) or a
    legacy ``(name, **kwargs)`` pair, which is folded into one.  A
    fusion-configured scheme config (any ``fusion`` override or a
    ``label``) builds a :class:`~repro.core.framework.KernelFusionScheme`
    exactly as the benchmark drivers do; everything else resolves
    through :data:`SCHEME_REGISTRY`.  Unknown scheme names raise
    ``KeyError``; unknown constructor overrides raise ``ValueError``
    naming the bad key and the scheme.
    """
    if isinstance(scheme, SchemeCfg):
        if kwargs:
            raise TypeError("pass overrides inside SchemeCfg, not as keywords")
        cfg = scheme
    else:
        cfg = SchemeCfg.from_overrides(scheme, kwargs)

    if cfg.fusion_configured:
        return _fusion_factory(cfg)

    if cfg.name not in SCHEME_REGISTRY:
        raise KeyError(
            f"scheme {cfg.name!r} is not in the registry and carries no "
            "fusion config — cannot build its factory"
        )
    base = SCHEME_REGISTRY[cfg.name]
    options = dict(cfg.options)
    _validate_scheme_kwargs(cfg.name, base, options)
    if not options:
        return base

    def factory(site: RankSite, trace: Trace) -> PackingScheme:
        return base(site, trace, **options)

    return factory
