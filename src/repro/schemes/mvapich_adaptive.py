"""MVAPICH2-GDR model: production adaptive Hybrid / GPU-Sync scheme.

Fig. 14 compares the proposed design against the *optimized* production
library, MVAPICH2-GDR, "which adaptively use CPU-GPU-Hybrid and
GPU-Sync schemes".  Functionally that is the
:class:`~repro.schemes.hybrid.CPUGPUHybridScheme` decision logic, plus
the per-message software overhead a full production MPI stack carries
on its datatype path (request bookkeeping, protocol selection, CUDA
context checks).  The extra constant is what separates MVAPICH2-GDR
from the leaner research prototype of [24] in the paper's measurements
(8.8× / 4.3× for the proposed design vs. 5.9–8.5× over the prototype).
"""

from __future__ import annotations

from ..net.topology import RankSite
from ..sim.engine import us
from ..sim.trace import Trace
from .base import SchemeCapabilities
from .hybrid import CPUGPUHybridScheme

__all__ = ["MVAPICHAdaptiveScheme"]


class MVAPICHAdaptiveScheme(CPUGPUHybridScheme):
    """Production adaptive scheme with library software overhead."""

    name = "MVAPICH2-GDR"
    capabilities = SchemeCapabilities(
        layout_cache=True,
        driver_overhead="medium",
        latency="low",
        overlap="medium",
        requires_gdrcopy=True,
    )

    def __init__(
        self,
        site: RankSite,
        trace: Trace | None = None,
        *,
        cpu_path_max_bytes: int = 64 * 1024,
        cpu_path_max_blocks: int = 256,
        gdrcopy_available: bool = True,
        software_overhead: float = us(1.5),
    ):
        super().__init__(
            site,
            trace,
            cpu_path_max_bytes=cpu_path_max_bytes,
            cpu_path_max_blocks=cpu_path_max_blocks,
            gdrcopy_available=gdrcopy_available,
            software_overhead=software_overhead,
        )
