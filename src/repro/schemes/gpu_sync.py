"""GPU-Sync: the classic synchronous GPU-driven baseline [8, 22].

One optimized pack/unpack kernel per operation, followed immediately by
an explicit ``cudaStreamSynchronize``.  The CPU pays, **per operation**:

* the kernel launch overhead (``LAUNCH``),
* the kernel's full execution time, since it blocks until completion
  (``PACK``),
* the stream-synchronize driver cost (``SYNC``).

Nothing overlaps: during a bulk transfer of N buffers, N launches and N
synchronizations serialize on the CPU (the *SYNCHRONOUS* timeline of
Fig. 2), which is why this scheme's latency grows linearly in both N
and the per-kernel overhead even when the kernels themselves are
microseconds long.
"""

from __future__ import annotations

from ..gpu.kernels import KernelOp
from ..net.topology import RankSite
from ..sim.trace import Category, Trace
from .base import PackingScheme, SchemeCapabilities, SchemeGen

__all__ = ["GPUSyncScheme"]


class GPUSyncScheme(PackingScheme):
    """Synchronous GPU kernels: launch, execute, synchronize, repeat."""

    name = "GPU-Sync"
    capabilities = SchemeCapabilities(
        layout_cache=False,
        driver_overhead="high",
        latency="high",
        overlap="low",
    )

    def __init__(self, site: RankSite, trace: Trace | None = None):
        super().__init__(site, trace)
        self.stream = site.device.default_stream

    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        arch = self.site.device.arch
        yield from self._launch_overhead(label)
        done = self.stream.enqueue(op)
        # cudaStreamSynchronize: the CPU blocks for the kernel's whole
        # execution, then pays the synchronize call itself.
        start = self.sim.now
        yield done
        self.trace.charge(Category.PACK, start, self.sim.now, label=label)
        yield from self._charge(Category.SYNC, arch.stream_sync_overhead, label)
        return self._handle(op, done, label=label)

    def wait(self, handles) -> SchemeGen:
        """Every operation completed inside :meth:`submit`; nothing to do."""
        return
        yield  # pragma: no cover - generator marker
