"""The packing-scheme interface: where the designs differ.

Every approach the paper evaluates — GPU-Sync, GPU-Async,
CPU-GPU-Hybrid, the naive production-library path, and the proposed
dynamic kernel fusion — is a *datatype-processing scheme* plugged into
the MPI progress engine.  The runtime asks the scheme to execute
pack/unpack/DirectIPC operations; how the scheme launches, batches,
synchronizes, and charges CPU time is the entire experiment.

All CPU-consuming scheme methods are simulation *generators*: they are
driven inside the calling rank's single CPU process (``yield from``),
so per-scheme CPU costs serialize exactly like a single-threaded MPI
progress engine (the configuration the paper evaluates, §IV-A2).

Cost attribution contract (the Fig. 11 buckets):

* ``LAUNCH`` — CPU time inside kernel-launch / memcpy-issue driver calls,
* ``SCHED``  — CPU time in scheduling bookkeeping (event records,
  fusion enqueue/dequeue),
* ``SYNC``   — CPU time in explicit synchronization or completion
  polling (stream sync, event queries, response-flag polls),
* ``PACK``   — CPU time *blocked* behind actual pack/unpack execution,
* ``COMM``   — computed by the harness as the residual of the observed
  end-to-end latency (communication not hidden by the above).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence

from ..gpu.kernels import KernelOp, OpKind
from ..net.topology import RankSite
from ..sim.engine import Event, Simulator
from ..sim.faults import FaultError
from ..sim.trace import Category, Trace

__all__ = ["OpHandle", "PackingScheme", "SchemeCapabilities"]

#: hard cap on per-operation launch retries — diagnostic backstop,
#: unreachable for valid fault specs (failure probability <= 0.9)
MAX_LAUNCH_ATTEMPTS = 10_000
#: launch-retry backoff ceiling, in multiples of the launch overhead
LAUNCH_BACKOFF_CAP_FACTOR = 64


@dataclass(frozen=True)
class SchemeCapabilities:
    """Table I's qualitative columns, encoded per scheme."""

    layout_cache: bool
    #: qualitative GPU driver overhead: "low" | "medium" | "high"
    driver_overhead: str
    #: qualitative overall latency: "low" | "medium" | "high"
    latency: str
    #: qualitative overlap with communication: "low" | "medium" | "high"
    overlap: str
    requires_gdrcopy: bool = False


@dataclass
class OpHandle:
    """Tracks one submitted pack/unpack/DirectIPC operation.

    ``done_event`` fires at the operation's simulated completion;
    ``uid`` is scheme-specific (the fusion scheduler returns its request
    UID here, negative on fallback).
    """

    op: KernelOp
    done_event: Event
    uid: int = -1
    label: str = ""
    submitted_at: float = 0.0

    _ids = itertools.count()

    @property
    def done(self) -> bool:
        """Whether the operation has completed."""
        return self.done_event.processed

    @property
    def kind(self) -> OpKind:
        """Operation kind (pack / unpack / direct IPC)."""
        return self.op.kind


SchemeGen = Generator[Event, Any, Any]


class PackingScheme(ABC):
    """Base class of every datatype-processing scheme."""

    #: human-readable name used in benchmark tables
    name: str = "abstract"
    #: Table I row
    capabilities: SchemeCapabilities

    def __init__(self, site: RankSite, trace: Optional[Trace] = None):
        self.site = site
        self.sim: Simulator = site.device.sim
        self.trace = trace if trace is not None else Trace()
        #: handles submitted and not yet retired (for diagnostics)
        self.outstanding: List[OpHandle] = []
        #: kernel launches retried after an injected driver failure
        self.launch_retries = 0

    # -- core operations -----------------------------------------------------
    @abstractmethod
    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        """Submit one operation; generator returning an :class:`OpHandle`.

        Scheme-specific CPU costs (launch, enqueue, sync...) are charged
        inline — the caller's process is blocked for exactly that time.
        """

    def flush(self) -> SchemeGen:
        """Sync-point notification (§IV-C scenario 1).

        Called when the progress engine reaches ``MPI_Waitall`` and has
        no further operations to submit; batching schemes must launch
        everything pending.  Default: no-op.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def wait(self, handles: Sequence[OpHandle]) -> SchemeGen:
        """Block until every handle completes, charging scheme costs.

        Default implementation waits on the simulation events and
        charges the blocked time to ``PACK`` (the CPU is stalled behind
        actual pack/unpack execution).  Polling schemes override to
        split the cost between ``SYNC`` (queries) and ``PACK``.
        """
        pending = [h for h in handles if not h.done]
        if not pending:
            return
        start = self.sim.now
        yield self.sim.all_of([h.done_event for h in pending])
        self.trace.charge(Category.PACK, start, self.sim.now, label="wait")

    def progress_tick(self) -> SchemeGen:
        """One progress-engine iteration's scheme-side CPU work.

        Called by ``waitall`` on every poll iteration while holding the
        rank's CPU.  Schemes that busy-poll the GPU consume real CPU
        time here — GPU-Async pays one ``cudaEventQuery`` per
        outstanding event, the fused design one response-flag read per
        outstanding request — which delays everything else the progress
        engine could be doing (the §V-B "Sync."/"Scheduling" penalty).
        Default: no cost.
        """
        return
        yield  # pragma: no cover - generator marker

    # -- small helpers for subclasses ------------------------------------------
    def _charge(self, category: Category, duration: float, label: str = "") -> SchemeGen:
        """Advance the clock by ``duration`` and charge it to ``category``."""
        if duration > 0:
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.trace.charge(category, start, self.sim.now, label=label)

    def _launch_overhead(self, label: str = "") -> SchemeGen:
        """Pay one kernel-launch driver call, surviving injected failures.

        Under an attached :class:`~repro.sim.faults.FaultPlan` a launch
        can fail at the driver; the scheme retries it with capped
        exponential backoff (retries counted in
        :attr:`launch_retries`, backoff charged to ``SYNC``).  Without a
        plan this is exactly one ``LAUNCH`` charge — the clean timeline
        is untouched.
        """
        arch = self.site.device.arch
        faults = self.sim.faults
        self.sim.obs.count("kernel_launches_total", scheme=self.name)
        yield from self._charge(Category.LAUNCH, arch.kernel_launch_overhead, label)
        if faults is None:
            return
        backoff = arch.kernel_launch_overhead
        attempts = 0
        while faults.launch_fails():
            self.launch_retries += 1
            self.sim.obs.count("scheme_launch_retries_total", scheme=self.name)
            attempts += 1
            if attempts >= MAX_LAUNCH_ATTEMPTS:
                raise FaultError(
                    f"{self.name}: kernel launch still failing after "
                    f"{attempts} attempts"
                )
            yield from self._charge(Category.SYNC, backoff, f"{label}:backoff")
            backoff = min(
                backoff * 2.0, LAUNCH_BACKOFF_CAP_FACTOR * arch.kernel_launch_overhead
            )
            yield from self._charge(
                Category.LAUNCH, arch.kernel_launch_overhead, label
            )

    def _discovered(self, done: Event, extra_delay) -> Event:
        """Event firing when the *progress engine notices* completion.

        Polled schemes do not act at the GPU's completion instant; they
        act when the next poll sweep finds the operation done.  The
        returned event fires ``extra_delay()`` seconds (evaluated at
        completion time) after ``done`` — half a poll interval plus the
        per-outstanding-operation query costs, typically.  Blocking
        schemes (GPU-Sync, hybrid CPU path) have no discovery latency
        and use ``done`` directly.
        """
        if done.processed:
            return done
        visible = Event(self.sim, name="discovery")

        def proc():
            yield done
            delay = extra_delay()
            if delay > 0:
                yield self.sim.timeout(delay)
            visible.succeed()

        self.sim.process(proc(), name="discovery")
        return visible

    def _handle(self, op: KernelOp, done: Event, uid: int = -1, label: str = "") -> OpHandle:
        handle = OpHandle(
            op=op, done_event=done, uid=uid, label=label, submitted_at=self.sim.now
        )
        if not done.processed:
            self.outstanding.append(handle)
            done.add_callback(lambda _ev: self._retire(handle))
        return handle

    def _retire(self, handle: OpHandle) -> None:
        try:
            self.outstanding.remove(handle)
        except ValueError:  # pragma: no cover - double completion guard
            pass

    # -- lifecycle ------------------------------------------------------------
    def reset(self) -> None:
        """Per-iteration reset (benchmark harness hook)."""
        self.outstanding.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} on {self.site.device.name}>"
