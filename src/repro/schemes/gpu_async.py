"""GPU-Async: the event-based asynchronous baseline (Chu et al. [23]).

Kernels are spread round-robin over a pool of CUDA streams and tracked
with ``cudaEventRecord`` / ``cudaEventQuery`` instead of blocking
synchronization — the *ASYNCHRONOUS* timeline of Fig. 2.  Overlap
between packing kernels (and with communication) becomes possible, but
every operation still pays:

* a full kernel launch (``LAUNCH``),
* an event record (``SCHED``),
* repeated event queries while the progress engine waits (``SYNC``).

The paper's key observation (§V-B) is that on modern GPUs the pack
kernels are so short that these per-operation CUDA API costs *exceed*
the overlap they buy — GPU-Async often loses to plain GPU-Sync on
fast-interconnect machines (Fig. 10) and only wins where slow PCIe
stretches the overlap window (Fig. 13c/d).
"""

from __future__ import annotations

from typing import List, Sequence

from ..gpu.kernels import KernelOp
from ..gpu.stream import CudaEvent, Stream
from ..net.topology import RankSite
from ..sim.engine import Event, us
from ..sim.trace import Category, Trace
from .base import OpHandle, PackingScheme, SchemeCapabilities, SchemeGen

__all__ = ["GPUAsyncScheme"]


class GPUAsyncScheme(PackingScheme):
    """Asynchronous multi-stream kernels tracked by CUDA events."""

    name = "GPU-Async"
    capabilities = SchemeCapabilities(
        layout_cache=False,
        driver_overhead="high",
        latency="medium",
        overlap="high",
    )

    def __init__(
        self,
        site: RankSite,
        trace: Trace | None = None,
        *,
        num_streams: int = 4,
        query_interval: float = us(1.0),
        pipeline_chunks: int = 2,
    ):
        super().__init__(site, trace)
        if pipeline_chunks < 1:
            raise ValueError(f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        device = site.device
        self.streams: List[Stream] = [device.default_stream] + [
            device.create_stream() for _ in range(max(0, num_streams - 1))
        ]
        self.query_interval = query_interval
        #: chunks each operation is pipelined into (each chunk = one
        #: kernel launch + one event record, per the design of [23])
        self.pipeline_chunks = pipeline_chunks
        self._next_stream = 0
        #: (kernel-completion event, progress-visible event) pairs whose
        #: completion the progress engine has not yet discovered
        self._undiscovered: List[tuple] = []

    def _pick_stream(self) -> Stream:
        stream = self.streams[self._next_stream]
        self._next_stream = (self._next_stream + 1) % len(self.streams)
        return stream

    def submit(self, op: KernelOp, label: str = "") -> SchemeGen:
        """Pipeline the operation into chunks, each launched + evented.

        The design of [23] splits each pack/unpack into pipeline stages
        to overlap stages with communication; every stage costs a full
        kernel launch plus a ``cudaEventRecord``.  On modern GPUs the
        kernels are so short that this per-stage overhead is exactly
        what Fig. 1 shows dominating — the mechanism that lets plain
        GPU-Sync beat this scheme on Lassen (Fig. 10).
        """
        arch = self.site.device.arch
        stream = self._pick_stream()
        chunks = self.pipeline_chunks
        chunk_compute = max(0.0, op.duration - arch.kernel_fixed_cost) / chunks
        done = None
        for chunk in range(chunks):
            yield from self._launch_overhead(f"{label}#{chunk}")
            is_last = chunk == chunks - 1
            done = stream.enqueue_callable(
                arch.kernel_fixed_cost + chunk_compute,
                op.apply if is_last else None,
                value=op,
            )
            event = CudaEvent(self.sim, name=f"evt:{label}#{chunk}")
            event.record(stream)
            yield from self._charge(
                Category.SCHED, arch.event_record_overhead, f"{label}#{chunk}"
            )
        # Completion becomes actionable only when a progress-engine
        # query sweep discovers the *last* chunk's event.
        visible = Event(self.sim, name=f"visible:{label}")
        self._undiscovered.append((done, visible))
        return self._handle(op, visible, label=label)

    def _sweep(self) -> SchemeGen:
        """One query sweep: pay per-event cost, publish completions."""
        if not self._undiscovered:
            return
        arch = self.site.device.arch
        yield from self._charge(
            Category.SYNC,
            arch.event_query_overhead * len(self._undiscovered),
            "query-sweep",
        )
        still = []
        for done, visible in self._undiscovered:
            if done.processed:
                visible.succeed()
            else:
                still.append((done, visible))
        self._undiscovered = still

    def progress_tick(self) -> SchemeGen:
        """``cudaEventQuery`` every undiscovered event, every tick.

        This is real, serialized CPU time in the progress engine: with
        N outstanding transfers every poll costs N queries, so the
        total query burden grows quadratically with the bulk size — the
        "extra synchronizations ... adding more penalties" of §V-B.
        """
        yield from self._sweep()

    def wait(self, handles: Sequence[OpHandle]) -> SchemeGen:
        """Busy-poll with ``cudaEventQuery`` until all handles complete."""
        while True:
            yield from self._sweep()
            pending = [h for h in handles if not h.done]
            if not pending:
                return
            start = self.sim.now
            # Wake when any underlying kernel finishes or a tick passes.
            watch = [done for done, _vis in self._undiscovered]
            watch.append(self.sim.timeout(self.query_interval))
            yield self.sim.any_of(watch)
            self.trace.charge(Category.PACK, start, self.sim.now, label="wait")
