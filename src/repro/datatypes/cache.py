"""Datatype layout cache (the "Layout Cache" column of Table I).

Chu et al. [24] showed that extracting an MPI derived datatype's layout
on every message is a significant cost and introduced a cache keyed by
the committed type; the kernel-fusion framework of this paper *assumes*
that cache ("the sender process first retrieves the cached data
layout", Section IV-B1).  This module provides that substrate: a small
LRU mapping from datatype signatures to flattened
:class:`~repro.datatypes.layout.DataLayout` objects, with hit/miss
statistics the benchmarks and ablations report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from .layout import DataLayout

__all__ = ["LayoutCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`LayoutCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LayoutCache:
    """LRU cache of flattened datatype layouts.

    Keys are datatype signatures (hashable structural tuples); values
    are :class:`DataLayout` objects.  A ``capacity`` of ``None`` means
    unbounded — the common configuration, since applications commit a
    handful of types; the bounded mode exists for the cache ablation.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, DataLayout]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def lookup(self, key: Hashable) -> Optional[DataLayout]:
        """Return the cached layout for ``key`` or ``None`` (counts stats)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def insert(self, key: Hashable, layout: DataLayout) -> None:
        """Insert/refresh ``key``; evicts the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = layout
            return
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = layout
        self.stats.insertions += 1

    def get_or_flatten(self, datatype: "Datatype") -> DataLayout:
        """Cache-through lookup: flatten (and insert) on a miss."""
        key = datatype.signature()
        cached = self.lookup(key)
        if cached is not None:
            return cached
        layout = datatype.flatten()
        self.insert(key, layout)
        return layout

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Cached keys in LRU→MRU order."""
        return tuple(self._entries.keys())
