"""Derived-datatype constructors (``MPI_Type_create_*``).

Implements the constructor family the paper's workloads use:

* :class:`Contiguous` / :class:`Vector` / :class:`Hvector` — NAS_MG
  faces and MILC's nested vectors (dense layouts),
* :class:`Indexed` / :class:`HIndexed` / :class:`IndexedBlock` —
  specfem3D_oc's indexed boundary elements (sparse layouts),
* :class:`Struct` — specfem3D_cm's struct-on-indexed type,
* :class:`Subarray` — halo faces of multi-dimensional decompositions,
* :class:`Resized` — explicit lb/extent adjustment.

Every constructor flattens to a
:class:`~repro.datatypes.layout.DataLayout` by composing its children's
flattened layouts with vectorized NumPy arithmetic, i.e. *flattening on
the fly* happens once at commit time and the result is what the layout
cache stores.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

import numpy as np

from .base import Datatype, DatatypeError
from .layout import DataLayout

__all__ = [
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "HIndexed",
    "IndexedBlock",
    "Struct",
    "Subarray",
    "Resized",
]


def _tile(child: DataLayout, shifts_bytes: np.ndarray, extent: int) -> DataLayout:
    """Place a copy of ``child`` at every byte shift in ``shifts_bytes``.

    The workhorse of every constructor.  Results are sorted by offset;
    overlapping copies raise (we restrict to non-overlapping typemaps,
    which all halo-exchange workloads satisfy).
    """
    shifts = np.asarray(shifts_bytes, dtype=np.int64)
    if shifts.ndim != 1:
        raise DatatypeError("shifts must be one-dimensional")
    if len(shifts) == 0 or child.num_blocks == 0:
        return DataLayout([], [], extent=extent, validate=False)
    offsets = (child.offsets[None, :] + shifts[:, None]).ravel()
    lengths = np.broadcast_to(child.lengths, (len(shifts), child.num_blocks)).ravel()
    # Already sorted iff shifts ascend with a step covering the child span.
    monotone = len(shifts) == 1 or (
        np.all(np.diff(shifts) >= child.span) and child.span > 0
    )
    if not monotone:
        order = np.argsort(offsets, kind="stable")
        offsets = offsets[order]
        lengths = lengths[order]
    return DataLayout(offsets, lengths, extent=extent)


def _extent_from_blocks(layout_offsets: np.ndarray, layout_lengths: np.ndarray) -> int:
    """MPI-style default extent: ``ub - lb`` with ``lb = min(0, min disp)``."""
    if len(layout_offsets) == 0:
        return 0
    lb = min(0, int(layout_offsets.min()))
    ub = int((layout_offsets + layout_lengths).max())
    return ub - lb


class _Derived(Datatype):
    """Shared plumbing for derived constructors.

    Subclasses set ``_size``/``_extent`` in ``__init__`` and implement
    ``_flatten``/``signature``.
    """

    __slots__ = ("_size", "_extent")

    def __init__(self, size: int, extent: int):
        super().__init__()
        self._size = int(size)
        self._extent = int(extent)

    @property
    def size(self) -> int:
        return self._size

    @property
    def extent(self) -> int:
        return self._extent


class Contiguous(_Derived):
    """``count`` consecutive instances of ``base`` (``MPI_Type_contiguous``)."""

    __slots__ = ("count", "base")

    def __init__(self, count: int, base: Datatype):
        if count < 0:
            raise DatatypeError(f"count must be non-negative, got {count}")
        super().__init__(count * base.size, count * base.extent)
        self.count = count
        self.base = base

    def signature(self) -> Tuple[Hashable, ...]:
        return ("contig", self.count, self.base.signature())

    def _flatten(self) -> DataLayout:
        flat = self.base.flatten().replicate(self.count)
        return DataLayout(
            flat.offsets, flat.lengths, extent=self._extent, validate=False
        )


class Vector(_Derived):
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` base
    elements, successive blocks ``stride`` base-extents apart."""

    __slots__ = ("count", "blocklength", "stride", "base")

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        super().__init__(count * blocklength * base.size, 0)
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base

    def signature(self) -> Tuple[Hashable, ...]:
        return ("vector", self.count, self.blocklength, self.stride, self.base.signature())

    def _flatten(self) -> DataLayout:
        child = self.base.flatten().replicate(self.blocklength)
        shifts = np.arange(self.count, dtype=np.int64) * (self.stride * self.base.extent)
        flat = _tile(child, shifts, extent=0)
        self._extent = _extent_from_blocks(flat.offsets, flat.lengths)
        return DataLayout(flat.offsets, flat.lengths, extent=self._extent, validate=False)

    @property
    def extent(self) -> int:
        if self._extent == 0 and self.count and self.blocklength:
            self.flatten()
        return self._extent


class Hvector(_Derived):
    """``MPI_Type_create_hvector``: like :class:`Vector` but the stride
    is given in **bytes**."""

    __slots__ = ("count", "blocklength", "stride_bytes", "base")

    def __init__(self, count: int, blocklength: int, stride_bytes: int, base: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        super().__init__(count * blocklength * base.size, 0)
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.base = base

    def signature(self) -> Tuple[Hashable, ...]:
        return (
            "hvector",
            self.count,
            self.blocklength,
            self.stride_bytes,
            self.base.signature(),
        )

    def _flatten(self) -> DataLayout:
        child = self.base.flatten().replicate(self.blocklength)
        shifts = np.arange(self.count, dtype=np.int64) * self.stride_bytes
        flat = _tile(child, shifts, extent=0)
        self._extent = _extent_from_blocks(flat.offsets, flat.lengths)
        return DataLayout(flat.offsets, flat.lengths, extent=self._extent, validate=False)

    @property
    def extent(self) -> int:
        if self._extent == 0 and self.count and self.blocklength:
            self.flatten()
        return self._extent


class Indexed(_Derived):
    """``MPI_Type_indexed``: per-block lengths and displacements in
    base-element units (specfem3D's sparse boundary gathers)."""

    __slots__ = ("blocklengths", "displacements", "base")

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype,
    ):
        bl = np.asarray(blocklengths, dtype=np.int64)
        dp = np.asarray(displacements, dtype=np.int64)
        if bl.shape != dp.shape or bl.ndim != 1:
            raise DatatypeError("blocklengths/displacements must be equal-length 1-D")
        if np.any(bl < 0):
            raise DatatypeError("blocklengths must be non-negative")
        super().__init__(int(bl.sum()) * base.size, 0)
        self.blocklengths = bl
        self.displacements = dp
        self.base = base

    def signature(self) -> Tuple[Hashable, ...]:
        return (
            "indexed",
            self.blocklengths.tobytes(),
            self.displacements.tobytes(),
            self.base.signature(),
        )

    def _flatten(self) -> DataLayout:
        base_flat = self.base.flatten()
        ext = self.base.extent
        parts_off = []
        parts_len = []
        if base_flat.is_contiguous and ext == self.base.size:
            # Fast path (all paper workloads): each indexed block is one
            # dense run of blocklength * size bytes.
            keep = self.blocklengths > 0
            parts_off.append(self.displacements[keep] * ext)
            parts_len.append(self.blocklengths[keep] * self.base.size)
        else:
            for blen, disp in zip(self.blocklengths, self.displacements):
                if blen == 0:
                    continue
                rep = base_flat.replicate(int(blen))
                parts_off.append(rep.offsets + int(disp) * ext)
                parts_len.append(rep.lengths)
        if parts_off:
            offsets = np.concatenate(parts_off)
            lengths = np.concatenate(parts_len)
            order = np.argsort(offsets, kind="stable")
            offsets, lengths = offsets[order], lengths[order]
        else:
            offsets = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        self._extent = _extent_from_blocks(offsets, lengths)
        return DataLayout(offsets, lengths, extent=self._extent)

    @property
    def extent(self) -> int:
        if self._extent == 0 and self._size:
            self.flatten()
        return self._extent


class HIndexed(Indexed):
    """``MPI_Type_create_hindexed``: displacements in **bytes**."""

    __slots__ = ()

    def signature(self) -> Tuple[Hashable, ...]:
        return (
            "hindexed",
            self.blocklengths.tobytes(),
            self.displacements.tobytes(),
            self.base.signature(),
        )

    def _flatten(self) -> DataLayout:
        base_flat = self.base.flatten()
        parts_off = []
        parts_len = []
        if base_flat.is_contiguous and self.base.extent == self.base.size:
            keep = self.blocklengths > 0
            parts_off.append(self.displacements[keep])
            parts_len.append(self.blocklengths[keep] * self.base.size)
        else:
            for blen, disp in zip(self.blocklengths, self.displacements):
                if blen == 0:
                    continue
                rep = base_flat.replicate(int(blen))
                parts_off.append(rep.offsets + int(disp))
                parts_len.append(rep.lengths)
        if parts_off:
            offsets = np.concatenate(parts_off)
            lengths = np.concatenate(parts_len)
            order = np.argsort(offsets, kind="stable")
            offsets, lengths = offsets[order], lengths[order]
        else:
            offsets = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        self._extent = _extent_from_blocks(offsets, lengths)
        return DataLayout(offsets, lengths, extent=self._extent)


class IndexedBlock(Indexed):
    """``MPI_Type_create_indexed_block``: one shared block length."""

    __slots__ = ()

    def __init__(self, blocklength: int, displacements: Sequence[int], base: Datatype):
        dp = np.asarray(displacements, dtype=np.int64)
        super().__init__(np.full(len(dp), blocklength, dtype=np.int64), dp, base)

    def signature(self) -> Tuple[Hashable, ...]:
        blen = int(self.blocklengths[0]) if len(self.blocklengths) else 0
        return ("indexed_block", blen, self.displacements.tobytes(), self.base.signature())


class Struct(_Derived):
    """``MPI_Type_create_struct``: heterogeneous children at byte
    displacements (specfem3D_cm's struct-on-indexed layout)."""

    __slots__ = ("blocklengths", "displacements", "types")

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        types: Sequence[Datatype],
    ):
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise DatatypeError("struct argument lists must have equal length")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("blocklengths must be non-negative")
        size = sum(b * t.size for b, t in zip(blocklengths, types))
        super().__init__(size, 0)
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements = tuple(int(d) for d in displacements)
        self.types = tuple(types)

    def signature(self) -> Tuple[Hashable, ...]:
        return (
            "struct",
            self.blocklengths,
            self.displacements,
            tuple(t.signature() for t in self.types),
        )

    def _flatten(self) -> DataLayout:
        parts_off = []
        parts_len = []
        for blen, disp, child in zip(self.blocklengths, self.displacements, self.types):
            if blen == 0:
                continue
            rep = child.flatten().replicate(blen)
            if rep.num_blocks == 0:
                continue
            parts_off.append(rep.offsets + disp)
            parts_len.append(rep.lengths)
        if parts_off:
            offsets = np.concatenate(parts_off)
            lengths = np.concatenate(parts_len)
            order = np.argsort(offsets, kind="stable")
            offsets, lengths = offsets[order], lengths[order]
        else:
            offsets = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        self._extent = _extent_from_blocks(offsets, lengths)
        return DataLayout(offsets, lengths, extent=self._extent)

    @property
    def extent(self) -> int:
        if self._extent == 0 and self._size:
            self.flatten()
        return self._extent


class Subarray(_Derived):
    """``MPI_Type_create_subarray``: an n-D sub-box of an n-D array.

    The canonical halo-face datatype.  ``order`` is ``"C"`` (row-major,
    last dimension contiguous — the MPI default for C programs) or
    ``"F"``.  Extent is the whole array, as the MPI standard requires.
    """

    __slots__ = ("sizes", "subsizes", "starts", "order", "base")

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
        order: str = "C",
    ):
        if not (len(sizes) == len(subsizes) == len(starts)) or not sizes:
            raise DatatypeError("sizes/subsizes/starts must be equal-length, non-empty")
        for d, (n, s, o) in enumerate(zip(sizes, subsizes, starts)):
            if n <= 0 or s < 0 or o < 0 or o + s > n:
                raise DatatypeError(
                    f"dimension {d}: invalid sub-box ({s} at {o} within {n})"
                )
        if order not in ("C", "F"):
            raise DatatypeError(f"order must be 'C' or 'F', got {order!r}")
        nelems = int(np.prod([s for s in subsizes])) if subsizes else 0
        super().__init__(nelems * base.size, int(np.prod(sizes)) * base.extent)
        self.sizes = tuple(int(x) for x in sizes)
        self.subsizes = tuple(int(x) for x in subsizes)
        self.starts = tuple(int(x) for x in starts)
        self.order = order
        self.base = base

    def signature(self) -> Tuple[Hashable, ...]:
        return (
            "subarray",
            self.sizes,
            self.subsizes,
            self.starts,
            self.order,
            self.base.signature(),
        )

    def _flatten(self) -> DataLayout:
        # Work in the canonical C layout (last dim contiguous); F order
        # is the same problem with dimensions reversed.
        sizes = self.sizes if self.order == "C" else self.sizes[::-1]
        subsizes = self.subsizes if self.order == "C" else self.subsizes[::-1]
        starts = self.starts if self.order == "C" else self.starts[::-1]
        ext = self.base.extent
        if 0 in subsizes:
            return DataLayout([], [], extent=self._extent, validate=False)

        # Element strides per dimension (in elements of base).
        strides = np.ones(len(sizes), dtype=np.int64)
        for d in range(len(sizes) - 2, -1, -1):
            strides[d] = strides[d + 1] * sizes[d + 1]

        # One contiguous run per combination of the outer dimensions.
        outer_axes = [
            np.arange(starts[d], starts[d] + subsizes[d], dtype=np.int64)
            for d in range(len(sizes) - 1)
        ]
        if outer_axes:
            grids = np.meshgrid(*outer_axes, indexing="ij")
            elem_offsets = sum(
                g.ravel() * strides[d] for d, g in enumerate(grids)
            ) + starts[-1] * strides[-1]
        else:
            elem_offsets = np.array([starts[-1]], dtype=np.int64)
        elem_offsets = np.sort(np.asarray(elem_offsets, dtype=np.int64))
        run_elems = subsizes[-1]

        base_flat = self.base.flatten()
        if base_flat.is_contiguous and ext == self.base.size:
            offsets = elem_offsets * ext
            lengths = np.full(len(offsets), run_elems * self.base.size, dtype=np.int64)
            return DataLayout(offsets, lengths, extent=self._extent)
        child = base_flat.replicate(run_elems)
        return _tile(child, elem_offsets * ext, extent=self._extent)


class Resized(_Derived):
    """``MPI_Type_create_resized``: override lb/extent of ``base``.

    Used to build nested-vector MILC layouts where the inner vector must
    repeat at a stride different from its natural extent.
    """

    __slots__ = ("base", "lb")

    def __init__(self, base: Datatype, lb: int, extent: int):
        if extent < 0:
            raise DatatypeError(f"extent must be non-negative, got {extent}")
        super().__init__(base.size, extent)
        self.base = base
        self.lb = int(lb)

    def signature(self) -> Tuple[Hashable, ...]:
        return ("resized", self.lb, self._extent, self.base.signature())

    def _flatten(self) -> DataLayout:
        # MPI semantics: resizing moves the lb/ub markers only; the
        # typemap displacements are untouched.  Only the extent (the
        # replication stride) changes.
        flat = self.base.flatten()
        return DataLayout(flat.offsets, flat.lengths, extent=self._extent, validate=False)
