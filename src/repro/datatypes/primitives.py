"""Predefined (basic) MPI datatypes.

Each predefined type is a single contiguous run of bytes with a NumPy
dtype attached for the functional data plane.  The module-level
constants (``BYTE``, ``INT``, ``FLOAT``, ``DOUBLE``, ...) mirror the MPI
predefined handles used by the paper's workloads: specfem3D uses
``FLOAT``/``DOUBLE`` indexed types, MILC packs ``DOUBLE_COMPLEX``-like
su3 matrices (we model them as pairs of doubles), NAS_MG uses
``DOUBLE`` vectors.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from .base import Datatype
from .layout import DataLayout

__all__ = [
    "Primitive",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "PREDEFINED",
]


class Primitive(Datatype):
    """A predefined MPI datatype: one dense block of ``nbytes``."""

    __slots__ = ("name", "nbytes", "np_dtype")

    def __init__(self, name: str, nbytes: int, np_dtype: np.dtype):
        super().__init__()
        if nbytes <= 0:
            raise ValueError(f"primitive {name!r} must have positive size")
        self.name = name
        self.nbytes = int(nbytes)
        self.np_dtype = np.dtype(np_dtype)
        if self.np_dtype.itemsize != self.nbytes:
            raise ValueError(
                f"numpy dtype {np_dtype} itemsize {self.np_dtype.itemsize} "
                f"!= declared size {nbytes}"
            )

    @property
    def size(self) -> int:
        return self.nbytes

    @property
    def extent(self) -> int:
        return self.nbytes

    def signature(self) -> Tuple[Hashable, ...]:
        return ("prim", self.name, self.nbytes)

    def _flatten(self) -> DataLayout:
        return DataLayout.contiguous(self.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MPI_{self.name.upper()}>"


BYTE = Primitive("byte", 1, np.uint8)
CHAR = Primitive("char", 1, np.int8)
SHORT = Primitive("short", 2, np.int16)
INT = Primitive("int", 4, np.int32)
LONG = Primitive("long", 8, np.int64)
FLOAT = Primitive("float", 4, np.float32)
DOUBLE = Primitive("double", 8, np.float64)
COMPLEX = Primitive("complex", 8, np.complex64)
DOUBLE_COMPLEX = Primitive("double_complex", 16, np.complex128)

#: Name → handle map of every predefined type.
PREDEFINED = {
    t.name: t
    for t in (BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, COMPLEX, DOUBLE_COMPLEX)
}
