"""Flattened data layouts: the unit the whole system operates on.

An MPI derived datatype, however deeply nested, ultimately describes a
sequence of ``(byte offset, byte length)`` blocks relative to a base
address — the "flattened" representation of Träff et al.'s *flattening
on the fly* and the entry format of the datatype layout cache of
Chu et al. [24], both of which this reproduction implements.

:class:`DataLayout` stores the blocks as two NumPy ``int64`` vectors and
provides:

* vectorized *gather-index* construction (one flat index array that
  pulls every payload byte out of the strided source in a single NumPy
  fancy-indexing operation — this is our "GPU pack kernel" data plane),
* replication across a ``count`` of datatype instances separated by the
  type extent,
* coalescing of adjacent blocks (what a good flattener does to vector
  types with ``blocklength == stride``),
* the block-shape statistics (count, min/mean block size) that the GPU
  kernel cost model uses to price strided memory access.

Layouts are immutable after construction; the gather index is built
lazily and cached, which is exactly the economics of the paper's layout
cache: flattening and index construction are paid once per committed
datatype, not once per message.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DataLayout", "coalesce_blocks"]


def coalesce_blocks(
    offsets: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge blocks that are adjacent in memory.

    Blocks must already be sorted by offset and non-overlapping (MPI
    typemaps used for packing satisfy both).  Returns new arrays; inputs
    are not modified.
    """
    if len(offsets) == 0:
        return offsets.copy(), lengths.copy()
    # A block starts a new run unless it begins exactly where the
    # previous one ended.
    ends = offsets + lengths
    new_run = np.empty(len(offsets), dtype=bool)
    new_run[0] = True
    np.not_equal(offsets[1:], ends[:-1], out=new_run[1:])
    run_ids = np.cumsum(new_run) - 1
    n_runs = int(run_ids[-1]) + 1
    out_offsets = offsets[new_run]
    out_lengths = np.zeros(n_runs, dtype=np.int64)
    np.add.at(out_lengths, run_ids, lengths)
    return out_offsets, out_lengths


class DataLayout:
    """An immutable flattened ``(offsets, lengths)`` block list.

    Parameters
    ----------
    offsets, lengths:
        Parallel sequences of byte offsets and byte lengths.  Must be
        the same length; lengths must be positive; blocks must be sorted
        by offset and non-overlapping.
    extent:
        The datatype extent in bytes (stride between consecutive
        instances when ``count > 1`` is packed).  Defaults to the span
        of the blocks.
    coalesce:
        Merge adjacent blocks during construction (default True).
    validate:
        Check sortedness / non-overlap (default True; property tests
        rely on these errors firing).
    """

    __slots__ = (
        "offsets",
        "lengths",
        "extent",
        "_gather_index",
        "_shifted_index",
        "_size",
        "_min_block",
        "_max_block",
        "_mean_block",
    )

    #: cap on cached base-offset-shifted gather indexes per layout; a
    #: layout is reused with a handful of offsets (per-rank windows), so
    #: a tiny cache captures them all without unbounded growth
    _SHIFT_CACHE_LIMIT = 16

    def __init__(
        self,
        offsets: Sequence[int] | np.ndarray,
        lengths: Sequence[int] | np.ndarray,
        extent: Optional[int] = None,
        *,
        coalesce: bool = True,
        validate: bool = True,
    ):
        off = np.asarray(offsets, dtype=np.int64)
        lng = np.asarray(lengths, dtype=np.int64)
        if off.ndim != 1 or lng.ndim != 1:
            raise ValueError("offsets and lengths must be one-dimensional")
        if off.shape != lng.shape:
            raise ValueError(
                f"offsets ({off.shape}) and lengths ({lng.shape}) differ in length"
            )
        if validate and len(off):
            if np.any(lng <= 0):
                raise ValueError("all block lengths must be positive")
            ends = off[:-1] + lng[:-1]
            if np.any(off[1:] < ends):
                raise ValueError("blocks must be sorted by offset and non-overlapping")
        if coalesce:
            off, lng = coalesce_blocks(off, lng)
        self.offsets: np.ndarray = off
        self.lengths: np.ndarray = lng
        if extent is None:
            extent = int(off[-1] + lng[-1] - min(0, int(off[0]))) if len(off) else 0
        self.extent = int(extent)
        self._gather_index: Optional[np.ndarray] = None
        self._shifted_index: Optional[dict] = None
        self._size: Optional[int] = None
        self._min_block: Optional[int] = None
        self._max_block: Optional[int] = None
        self._mean_block: Optional[float] = None

    # -- shape statistics ---------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of contiguous blocks."""
        return len(self.offsets)

    @property
    def size(self) -> int:
        """Total payload bytes (sum of block lengths).

        Cached: the GPU cost model reads the shape statistics on every
        priced operation, and layouts are immutable, so each NumPy
        reduction is paid once per layout rather than once per message.
        """
        value = self._size
        if value is None:
            value = self._size = int(self.lengths.sum()) if len(self.lengths) else 0
        return value

    @property
    def span(self) -> int:
        """Bytes from the first block's start to the last block's end."""
        if not len(self.offsets):
            return 0
        return int(self.offsets[-1] + self.lengths[-1] - self.offsets[0])

    @property
    def min_block(self) -> int:
        """Smallest block length in bytes (0 for an empty layout)."""
        value = self._min_block
        if value is None:
            value = self._min_block = int(self.lengths.min()) if len(self.lengths) else 0
        return value

    @property
    def max_block(self) -> int:
        """Largest block length in bytes (0 for an empty layout)."""
        value = self._max_block
        if value is None:
            value = self._max_block = int(self.lengths.max()) if len(self.lengths) else 0
        return value

    @property
    def mean_block(self) -> float:
        """Mean block length in bytes (0.0 for an empty layout)."""
        value = self._mean_block
        if value is None:
            value = self._mean_block = (
                float(self.lengths.mean()) if len(self.lengths) else 0.0
            )
        return value

    @property
    def is_contiguous(self) -> bool:
        """True when the layout is a single block starting at offset 0."""
        return self.num_blocks == 1 and int(self.offsets[0]) == 0

    @property
    def density(self) -> float:
        """Payload bytes divided by spanned bytes (1.0 = fully dense)."""
        span = self.span
        return self.size / span if span else 1.0

    # -- derivation -----------------------------------------------------------
    def replicate(self, count: int) -> "DataLayout":
        """Layout of ``count`` consecutive instances, ``extent`` apart.

        This is how ``pack(buf, datatype, count)`` sees memory.  The
        result's extent is ``count * extent``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 1:
            return self
        if count == 0 or self.num_blocks == 0:
            return DataLayout([], [], extent=self.extent * count, validate=False)
        steps = (np.arange(count, dtype=np.int64) * self.extent)[:, None]
        offsets = (self.offsets[None, :] + steps).ravel()
        lengths = np.broadcast_to(self.lengths, (count, self.num_blocks)).ravel()
        return DataLayout(
            offsets,
            lengths,
            extent=self.extent * count,
            # Replication of a valid layout with extent >= span stays
            # valid; skip the O(n) re-check but keep coalescing (two
            # instances of a dense layout may touch).
            validate=self.extent < self.span,
        )

    def shifted(self, delta: int) -> "DataLayout":
        """Layout with every offset moved by ``delta`` bytes."""
        return DataLayout(
            self.offsets + int(delta), self.lengths, extent=self.extent,
            coalesce=False, validate=False,
        )

    def slice_blocks(self, start: int, stop: int) -> "DataLayout":
        """Sub-layout containing blocks ``[start, stop)`` (no re-basing)."""
        return DataLayout(
            self.offsets[start:stop],
            self.lengths[start:stop],
            extent=self.extent,
            coalesce=False,
            validate=False,
        )

    # -- the data plane -------------------------------------------------------
    def gather_index(self, base_offset: int = 0) -> np.ndarray:
        """Flat ``int64`` byte-index array selecting every payload byte.

        ``source[layout.gather_index()]`` *is* the pack operation and
        ``dest[layout.gather_index()] = packed`` the unpack operation.
        Built once and cached (the layout-cache economics of [24]).

        A nonzero ``base_offset`` shifts every index (``MPI_Pack``'s
        buffer argument); shifted copies are cached per offset (up to
        ``_SHIFT_CACHE_LIMIT`` distinct offsets) so repeated windowed
        packs stop allocating a fresh index array per message.

        The returned array is shared cache state — callers must treat
        it as read-only.
        """
        index = self._gather_index
        if index is None:
            total = self.size
            if total == 0:
                index = np.empty(0, dtype=np.int64)
            else:
                # Vectorized expansion of blocks into per-byte indices:
                # for block b: offsets[b] + (0 .. lengths[b]-1).
                starts = np.repeat(self.offsets, self.lengths)
                within = np.arange(total, dtype=np.int64)
                block_base = np.repeat(
                    np.concatenate(([0], np.cumsum(self.lengths)[:-1])), self.lengths
                )
                index = starts + (within - block_base)
            self._gather_index = index
        if base_offset == 0:
            return index
        cache = self._shifted_index
        if cache is None:
            cache = self._shifted_index = {}
        shifted = cache.get(base_offset)
        if shifted is None:
            shifted = index + base_offset
            if len(cache) < self._SHIFT_CACHE_LIMIT:
                cache[base_offset] = shifted
        return shifted

    # -- identity ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataLayout):
            return NotImplemented
        return (
            self.extent == other.extent
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
        )

    def __hash__(self) -> int:
        return hash((self.extent, self.offsets.tobytes(), self.lengths.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataLayout(blocks={self.num_blocks}, size={self.size}, "
            f"extent={self.extent}, mean_block={self.mean_block:.1f})"
        )

    @staticmethod
    def from_blocks(blocks: Iterable[Tuple[int, int]], extent: Optional[int] = None) -> "DataLayout":
        """Build from an iterable of ``(offset, length)`` pairs."""
        pairs = sorted(blocks)
        if pairs:
            offsets, lengths = zip(*pairs)
        else:
            offsets, lengths = (), ()
        return DataLayout(list(offsets), list(lengths), extent=extent)

    @staticmethod
    def contiguous(nbytes: int) -> "DataLayout":
        """A single dense block of ``nbytes`` at offset 0."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return DataLayout([], [], extent=0, validate=False)
        return DataLayout([0], [nbytes], extent=nbytes, validate=False)
