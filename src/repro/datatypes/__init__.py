"""MPI derived-datatype engine.

Constructors, flattening ("flattening on the fly"), layout caching, and
the byte-exact reference pack/unpack that every scheme's data plane
funnels through.
"""

from .base import Datatype, DatatypeError
from .cache import CacheStats, LayoutCache
from .constructors import (
    Contiguous,
    HIndexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    Vector,
)
from .introspect import describe, envelope
from .layout import DataLayout, coalesce_blocks
from .pack import Packer, as_byte_view, pack_bytes, unpack_bytes
from .primitives import (
    BYTE,
    CHAR,
    COMPLEX,
    DOUBLE,
    DOUBLE_COMPLEX,
    FLOAT,
    INT,
    LONG,
    PREDEFINED,
    SHORT,
    Primitive,
)

__all__ = [
    "Datatype",
    "DatatypeError",
    "DataLayout",
    "coalesce_blocks",
    "describe",
    "envelope",
    "LayoutCache",
    "CacheStats",
    "Primitive",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "HIndexed",
    "IndexedBlock",
    "Struct",
    "Subarray",
    "Resized",
    "pack_bytes",
    "Packer",
    "unpack_bytes",
    "as_byte_view",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "PREDEFINED",
]
