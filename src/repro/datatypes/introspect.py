"""Datatype introspection: envelopes and tree rendering.

MPI exposes ``MPI_Type_get_envelope`` / ``MPI_Type_get_contents`` so
tools can decode how a derived type was constructed.  This module
provides the equivalent for our handles:

* :func:`envelope` — the combiner name plus the constructor arguments
  of one level (counts, strides, displacements, child handles);
* :func:`describe` — a human-readable tree of the whole construction,
  annotated with per-level size/extent and the flattened block shape,
  used by debugging sessions and the test suite's error messages.

Example::

    >>> from repro.datatypes import Vector, DOUBLE, describe
    >>> print(describe(Vector(3, 2, 5, DOUBLE)))
    vector(count=3, blocklength=2, stride=5)  [size=48B extent=96B]
    └─ double  [size=8B]
       flattened: 3 blocks, mean 16 B, density 0.60
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .base import Datatype
from .constructors import (
    Contiguous,
    HIndexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    Vector,
)
from .primitives import Primitive

__all__ = ["envelope", "describe"]


def envelope(datatype: Datatype) -> Tuple[str, Dict[str, Any]]:
    """One construction level: ``(combiner, arguments)``.

    Child datatypes appear in the arguments under ``base`` or
    ``types``; recurse with further :func:`envelope` calls, exactly
    like chained ``MPI_Type_get_contents``.
    """
    if isinstance(datatype, Primitive):
        return "named", {"name": datatype.name, "size": datatype.nbytes}
    if isinstance(datatype, Contiguous):
        return "contiguous", {"count": datatype.count, "base": datatype.base}
    if isinstance(datatype, Vector):
        return "vector", {
            "count": datatype.count,
            "blocklength": datatype.blocklength,
            "stride": datatype.stride,
            "base": datatype.base,
        }
    if isinstance(datatype, Hvector):
        return "hvector", {
            "count": datatype.count,
            "blocklength": datatype.blocklength,
            "stride_bytes": datatype.stride_bytes,
            "base": datatype.base,
        }
    if isinstance(datatype, IndexedBlock):
        return "indexed_block", {
            "blocklength": int(datatype.blocklengths[0]) if len(datatype.blocklengths) else 0,
            "displacements": datatype.displacements.tolist(),
            "base": datatype.base,
        }
    if isinstance(datatype, HIndexed):
        return "hindexed", {
            "blocklengths": datatype.blocklengths.tolist(),
            "displacements": datatype.displacements.tolist(),
            "base": datatype.base,
        }
    if isinstance(datatype, Indexed):
        return "indexed", {
            "blocklengths": datatype.blocklengths.tolist(),
            "displacements": datatype.displacements.tolist(),
            "base": datatype.base,
        }
    if isinstance(datatype, Struct):
        return "struct", {
            "blocklengths": list(datatype.blocklengths),
            "displacements": list(datatype.displacements),
            "types": list(datatype.types),
        }
    if isinstance(datatype, Subarray):
        return "subarray", {
            "sizes": list(datatype.sizes),
            "subsizes": list(datatype.subsizes),
            "starts": list(datatype.starts),
            "order": datatype.order,
            "base": datatype.base,
        }
    if isinstance(datatype, Resized):
        return "resized", {
            "lb": datatype.lb,
            "extent": datatype.extent,
            "base": datatype.base,
        }
    raise TypeError(f"unknown datatype class {type(datatype).__name__}")


def _args_text(combiner: str, args: Dict[str, Any]) -> str:
    shown = []
    for key, value in args.items():
        if isinstance(value, Datatype) or key in ("base", "types"):
            continue
        if isinstance(value, list) and len(value) > 6:
            value = f"[{value[0]}, {value[1]}, ... x{len(value)}]"
        shown.append(f"{key}={value}")
    return f"{combiner}({', '.join(shown)})"


def describe(datatype: Datatype, *, _depth: int = 0, _prefix: str = "") -> str:
    """Render the construction tree with sizes and flattened shape."""
    combiner, args = envelope(datatype)
    if combiner == "named":
        head = f"{args['name']}  [size={args['size']}B]"
    else:
        head = (
            f"{_args_text(combiner, args)}  "
            f"[size={datatype.size}B extent={datatype.extent}B]"
        )
    lines = [head]

    children = []
    if "base" in args:
        children = [args["base"]]
    elif "types" in args:
        children = list(dict.fromkeys(args["types"]))  # unique, ordered
    for i, child in enumerate(children):
        last = i == len(children) - 1
        branch = "└─ " if last else "├─ "
        cont = "   " if last else "│  "
        sub = describe(child, _depth=_depth + 1)
        sub_lines = sub.splitlines()
        lines.append(_prefix + branch + sub_lines[0])
        lines.extend(_prefix + cont + line for line in sub_lines[1:])

    if _depth == 0:
        flat = datatype.flatten()
        lines.append(
            f"   flattened: {flat.num_blocks} blocks, "
            f"mean {flat.mean_block:.0f} B, density {flat.density:.2f}"
        )
    return "\n".join(lines)
