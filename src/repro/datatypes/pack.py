"""Reference pack/unpack: the functional data plane.

These are the byte-exact operations every packing scheme in the
reproduction ultimately performs — the simulated GPU kernels, the
hybrid scheme's host copy loops, and the naive per-block copies all
funnel through these two functions, so a single correctness property
("pack then unpack is the identity on the selected bytes") covers the
entire data plane.

Buffers are 1-D ``uint8`` NumPy arrays (raw device or host memory).
The hot path is one fancy-indexing gather/scatter using the layout's
cached flat index — the vectorized-NumPy idiom the HPC guides
recommend over Python-level block loops.
"""

from __future__ import annotations

import numpy as np

from .layout import DataLayout

__all__ = ["pack_bytes", "unpack_bytes", "as_byte_view", "Packer"]


def as_byte_view(array: np.ndarray) -> np.ndarray:
    """Reinterpret any contiguous array as a flat ``uint8`` view."""
    if not array.flags["C_CONTIGUOUS"]:
        raise ValueError("buffer must be C-contiguous to view as bytes")
    return array.view(np.uint8).reshape(-1)


def _check(buffer: np.ndarray, layout: DataLayout, base_offset: int, what: str) -> None:
    if buffer.dtype != np.uint8 or buffer.ndim != 1:
        raise TypeError(f"{what} buffer must be a 1-D uint8 array")
    if layout.num_blocks == 0:
        return
    lo = int(layout.offsets[0]) + base_offset
    hi = int(layout.offsets[-1] + layout.lengths[-1]) + base_offset
    if lo < 0 or hi > len(buffer):
        raise IndexError(
            f"layout [{lo}, {hi}) exceeds {what} buffer of {len(buffer)} bytes"
        )


def pack_bytes(
    source: np.ndarray,
    layout: DataLayout,
    packed: np.ndarray | None = None,
    base_offset: int = 0,
) -> np.ndarray:
    """Gather the layout's bytes from ``source`` into a dense buffer.

    ``packed`` may be a preallocated output (its first ``layout.size``
    bytes are written); otherwise a new array is returned.
    ``base_offset`` shifts the layout within ``source`` (the buffer
    argument of ``MPI_Pack``).
    """
    _check(source, layout, base_offset, "source")
    index = layout.gather_index(base_offset)
    if packed is None:
        return source[index]
    if packed.dtype != np.uint8 or packed.ndim != 1:
        raise TypeError("packed buffer must be a 1-D uint8 array")
    if len(packed) < layout.size:
        raise IndexError(
            f"packed buffer of {len(packed)} bytes cannot hold {layout.size}"
        )
    np.take(source, index, out=packed[: layout.size])
    return packed


def unpack_bytes(
    packed: np.ndarray,
    layout: DataLayout,
    dest: np.ndarray,
    base_offset: int = 0,
) -> np.ndarray:
    """Scatter a dense buffer back into ``dest`` at the layout's blocks.

    Inverse of :func:`pack_bytes`; returns ``dest``.
    """
    _check(dest, layout, base_offset, "dest")
    if packed.dtype != np.uint8 or packed.ndim != 1:
        raise TypeError("packed buffer must be a 1-D uint8 array")
    if len(packed) < layout.size:
        raise IndexError(
            f"packed buffer of {len(packed)} bytes is shorter than {layout.size}"
        )
    index = layout.gather_index(base_offset)
    dest[index] = packed[: layout.size]
    return dest


class Packer:
    """Incremental pack/unpack with MPI's ``position`` semantics.

    ``MPI_Pack`` lets callers append several datatypes into one staging
    buffer, threading a byte *position* through the calls; ``MPI_Unpack``
    consumes the buffer the same way.  :class:`Packer` captures that
    protocol::

        packer = Packer(staging)
        packer.pack(field_a, layout_a)
        packer.pack(field_b, layout_b)          # appended after a
        assert packer.position == layout_a.size + layout_b.size

        reader = Packer(staging)
        reader.unpack(layout_a, out_a)
        reader.unpack(layout_b, out_b)

    The same object can interleave pack and unpack (MPI allows it; the
    position always advances by the consumed type's size).
    """

    def __init__(self, buffer: np.ndarray, position: int = 0):
        if buffer.dtype != np.uint8 or buffer.ndim != 1:
            raise TypeError("Packer buffer must be a 1-D uint8 array")
        if not 0 <= position <= len(buffer):
            raise ValueError(f"position {position} outside buffer of {len(buffer)}")
        self.buffer = buffer
        self.position = position

    @property
    def remaining(self) -> int:
        """Bytes left after the current position."""
        return len(self.buffer) - self.position

    def pack(self, source: np.ndarray, layout: DataLayout, base_offset: int = 0) -> int:
        """Append one datatype instance; returns the new position."""
        if layout.size > self.remaining:
            raise IndexError(
                f"packing {layout.size} B at position {self.position} "
                f"overflows buffer of {len(self.buffer)} B"
            )
        pack_bytes(
            source, layout,
            self.buffer[self.position : self.position + layout.size],
            base_offset=base_offset,
        )
        self.position += layout.size
        return self.position

    def unpack(self, layout: DataLayout, dest: np.ndarray, base_offset: int = 0) -> int:
        """Consume one datatype instance; returns the new position."""
        if layout.size > self.remaining:
            raise IndexError(
                f"unpacking {layout.size} B at position {self.position} "
                f"exceeds buffer of {len(self.buffer)} B"
            )
        unpack_bytes(
            self.buffer[self.position : self.position + layout.size],
            layout, dest, base_offset=base_offset,
        )
        self.position += layout.size
        return self.position
