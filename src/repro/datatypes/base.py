"""Datatype base class and commit semantics.

A :class:`Datatype` mirrors an MPI datatype handle: it has a *size*
(payload bytes per instance), an *extent* (stride between consecutive
instances), a structural *signature* (used as the layout-cache key, per
the caching scheme of Chu et al. [24]), and can be *flattened* into a
:class:`~repro.datatypes.layout.DataLayout`.

Like MPI, a type must be committed before use in communication; in this
reproduction :meth:`Datatype.commit` is where flattening happens and
where the result enters the process-wide layout cache, so that per-
message datatype handling is a cache lookup rather than a tree walk —
the exact property the paper's framework assumes ("retrieves the cached
data layout", Section IV-B1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Tuple

from .layout import DataLayout

__all__ = ["Datatype", "DatatypeError"]


class DatatypeError(ValueError):
    """Raised for invalid datatype construction or misuse."""


class Datatype(ABC):
    """Abstract MPI-like datatype.

    Subclasses implement :meth:`_flatten` (one instance, displacements
    relative to the instance base address) and :meth:`signature`.
    """

    __slots__ = ("_committed", "_flat")

    def __init__(self) -> None:
        self._committed = False
        self._flat: Optional[DataLayout] = None

    # -- metrics -------------------------------------------------------------
    @property
    @abstractmethod
    def size(self) -> int:
        """Payload bytes in one instance of the type."""

    @property
    @abstractmethod
    def extent(self) -> int:
        """Stride in bytes between consecutive instances."""

    @abstractmethod
    def signature(self) -> Tuple[Hashable, ...]:
        """Hashable structural identity (the layout-cache key)."""

    @abstractmethod
    def _flatten(self) -> DataLayout:
        """Compute the flattened layout of a single instance."""

    # -- commit / flatten ------------------------------------------------------
    @property
    def committed(self) -> bool:
        """Whether :meth:`commit` has been called."""
        return self._committed

    def commit(self, cache: Optional["LayoutCache"] = None) -> "Datatype":
        """Flatten the type and (optionally) insert it into ``cache``.

        Idempotent, returns ``self`` for chaining — mirrors
        ``MPI_Type_commit``.
        """
        if self._flat is None:
            self._flat = self._flatten()
        self._committed = True
        if cache is not None:
            cache.insert(self.signature(), self._flat)
        return self

    def flatten(self) -> DataLayout:
        """The flattened single-instance layout (commits on demand)."""
        if self._flat is None:
            self.commit()
        assert self._flat is not None
        return self._flat

    def layout(self, count: int = 1) -> DataLayout:
        """Flattened layout of ``count`` consecutive instances."""
        if count < 0:
            raise DatatypeError(f"count must be non-negative, got {count}")
        return self.flatten().replicate(count)

    # -- identity ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} size={self.size} extent={self.extent}"
            f"{' committed' if self._committed else ''}>"
        )


# Imported late to avoid a cycle: cache stores layouts keyed by signatures.
