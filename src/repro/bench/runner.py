"""Experiment runner: the §V-A measurement methodology.

One *experiment* is: a system (Lassen/ABCI), a scheme, a workload spec,
and a buffer count ``nbuffers``.  Each iteration performs the paper's
bulk exchange — every rank issues ``nbuffers`` nonblocking sends *and*
``nbuffers`` nonblocking receives of the workload datatype with its
peer (Fig. 8's "32 continuous MPI_Isend/MPI_Irecv operations" is
``nbuffers=16``), then calls ``waitall``.  Latency is the time from
first issue to the last rank's completion.

The paper averages 500 iterations after 50 warm-up iterations; the
simulation is deterministic, so the defaults are smaller, but the
warm-up still matters — it populates the datatype layout cache, so
steady-state iterations measure cache-hit behaviour exactly as the real
runtime does.

Every iteration also verifies byte-exactness of all delivered buffers
against a NumPy reference (something the original hardware experiments
could not do inline), so the performance harness doubles as an
end-to-end correctness check.

Passing ``faults=FaultPlan(...)`` runs the same exchange on an
imperfect fabric/GPU: the harness attaches the plan to the simulator,
keeps the byte-exactness check on, and aggregates every recovery action
(link retransmits, control watchdog fires, scheduler ladder steps) into
a :class:`RecoveryReport` — the chaos-sweep evidence that faults cost
time, never correctness.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from ..config import (
    ExperimentConfig,
    FaultsCfg,
    HarnessCfg,
    NoiseCfg,
    ProtocolCfg,
    SchemeCfg,
    SystemCfg,
    WorkloadCfg,
)
from ..datatypes.layout import DataLayout
from ..mpi.communicator import Runtime
from ..net.systems import SystemConfig
from ..net.topology import Cluster
from ..obs.metrics import MetricsSnapshot
from ..obs.observer import Observer
from ..schemes.base import PackingScheme
from ..sim.engine import Simulator
from ..sim.faults import FaultPlan
from ..sim.noise import NoiseModel
from ..sim.trace import Category
from ..workloads.base import WorkloadSpec

__all__ = ["ExperimentResult", "RecoveryReport", "run_bulk_exchange"]

SchemeFactory = Callable[..., PackingScheme]

#: sentinel distinguishing "keyword not passed" from an explicit value
#: in the legacy deprecation shim
_UNSET: object = object()


@dataclass
class RecoveryReport:
    """Everything the system did to survive an injected fault plan."""

    #: injected fault events by kind (:meth:`FaultStats.as_dict`)
    injected: Dict[str, int] = field(default_factory=dict)
    #: data transfers retransmitted by links, summed over the cluster
    link_retransmits: int = 0
    #: simulated seconds lost to failed transfer attempts + backoff
    link_fault_delay: float = 0.0
    #: RTS packets re-sent by sender control watchdogs
    rts_retransmits: int = 0
    #: CTS offers repeated after a duplicate RTS found the CTS lost
    cts_resends: int = 0
    #: scheduler ladder rung ①: same-batch relaunches
    relaunches: int = 0
    #: scheduler ladder rung ②: batch halvings
    batch_splits: int = 0
    #: scheduler ladder rung ③: degraded launch-and-wait requests
    sync_fallbacks: int = 0
    #: per-operation kernel launches retried by the schemes themselves
    launch_retries: int = 0
    #: straggler relaunches issued by completion-deadline watchdogs
    deadline_relaunches: int = 0
    #: enqueues pushed onto the negative-UID fallback path
    ring_fallbacks: int = 0

    @classmethod
    def from_metrics(
        cls, snapshot: MetricsSnapshot, injected: Dict[str, int]
    ) -> "RecoveryReport":
        """Build the report from a telemetry snapshot.

        Every recovery counter is incremented at exactly one code site,
        which updates the legacy per-object counter *and* the metrics
        registry together — so reading the registry here is the same
        numbers as the old scatter-gather over links, runtime, and
        schemes, from one source of truth (:mod:`repro.obs`).
        ``snapshot.total`` sums across label sets (per-link, per-scheme).
        """
        return cls(
            injected=dict(injected),
            link_retransmits=int(snapshot.total("link_retransmits_total")),
            link_fault_delay=snapshot.total("link_fault_delay_seconds_total"),
            rts_retransmits=int(snapshot.total("rts_retransmits_total")),
            cts_resends=int(snapshot.total("cts_resends_total")),
            relaunches=int(snapshot.total("sched_relaunches_total")),
            batch_splits=int(snapshot.total("sched_batch_splits_total")),
            sync_fallbacks=int(snapshot.total("sched_sync_fallbacks_total")),
            launch_retries=int(snapshot.total("scheme_launch_retries_total")),
            deadline_relaunches=int(
                snapshot.total("sched_deadline_relaunches_total")
            ),
            ring_fallbacks=int(snapshot.total("sched_ring_fallbacks_total")),
        )

    @property
    def total_injected(self) -> int:
        """Total fault events the plan injected."""
        return sum(self.injected.values())

    @property
    def total_recoveries(self) -> int:
        """Total recovery actions taken across all layers."""
        return (
            self.link_retransmits
            + self.rts_retransmits
            + self.cts_resends
            + self.relaunches
            + self.batch_splits
            + self.sync_fallbacks
            + self.launch_retries
            + self.deadline_relaunches
            + self.ring_fallbacks
        )

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        injected = ", ".join(
            f"{k}={v}" for k, v in self.injected.items() if v
        ) or "none"
        lines = [
            f"injected: {injected}",
            f"recovered: link retransmits={self.link_retransmits} "
            f"(+{self.link_fault_delay * 1e6:.1f}us), "
            f"rts retransmits={self.rts_retransmits}, "
            f"cts resends={self.cts_resends}",
            f"scheduler: relaunches={self.relaunches}, "
            f"splits={self.batch_splits}, "
            f"sync fallbacks={self.sync_fallbacks}, "
            f"deadline relaunches={self.deadline_relaunches}, "
            f"ring fallbacks={self.ring_fallbacks}, "
            f"scheme launch retries={self.launch_retries}",
        ]
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment."""

    scheme: str
    workload: str
    system: str
    nbuffers: int
    dim: int
    #: per-iteration end-to-end latencies, seconds (post-warm-up)
    latencies: List[float] = field(default_factory=list)
    #: per-category totals averaged over iterations and ranks, seconds
    breakdown: Dict[Category, float] = field(default_factory=dict)
    #: scheduler statistics of rank 0 (fusion runs only)
    scheduler_stats: Optional[object] = None
    #: fault-injection recovery summary (fault runs only)
    recovery: Optional[RecoveryReport] = None
    #: frozen telemetry counters (runs with an observer attached only)
    metrics: Optional[MetricsSnapshot] = None
    #: message payload bytes (one buffer)
    message_bytes: int = 0

    @property
    def mean_latency(self) -> float:
        """Mean post-warm-up latency in seconds."""
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    @property
    def min_latency(self) -> float:
        """Fastest iteration in seconds."""
        return float(np.min(self.latencies)) if self.latencies else float("nan")

    def speedup_over(self, other: "ExperimentResult") -> float:
        """How much faster this result is than ``other`` (>1 = faster)."""
        return other.mean_latency / self.mean_latency


def _fill_random(buffers, rng: np.random.Generator) -> None:
    for buf in buffers:
        buf.data[:] = rng.integers(0, 256, buf.nbytes, dtype=np.uint8)


def run_bulk_exchange(
    system: Union[ExperimentConfig, SystemConfig],
    scheme_factory: Optional[SchemeFactory] = None,
    spec: Optional[WorkloadSpec] = None,
    *,
    nbuffers: Any = _UNSET,
    iterations: Any = _UNSET,
    warmup: Any = _UNSET,
    verify: Any = _UNSET,
    data_plane: Any = _UNSET,
    rendezvous_protocol: Any = _UNSET,
    eager_threshold: Any = _UNSET,
    layout_cache_enabled: Any = _UNSET,
    seed: Any = _UNSET,
    noise: Any = _UNSET,
    faults: Any = _UNSET,
    obs: Optional[Observer] = None,
) -> ExperimentResult:
    """Run one experiment and return its measurements.

    The single entry point of the config plane::

        run_bulk_exchange(ExperimentConfig(...), obs=...)

    resolves everything — system, workload, scheme factory, protocol,
    noise, faults — from the one validated config.  The historical
    ``run_bulk_exchange(system, scheme_factory, spec, **kwargs)``
    signature survives as a deprecation shim that folds the loose
    arguments into an :class:`~repro.config.ExperimentConfig` (gaining
    its validation) before running; no knob is read from anywhere else.

    ``data_plane=False`` prices every operation but moves no bytes —
    identical timing, used for multi-megabyte sweeps where the NumPy
    copies would dominate harness wall time.  ``noise`` / ``faults``
    attach an execution-noise model and a fault-injection plan; with
    faults the result carries a :class:`RecoveryReport`.

    ``obs`` attaches a live :class:`~repro.obs.Observer`: the result
    then carries a frozen :class:`~repro.obs.MetricsSnapshot` and, when
    the observer's recorder is enabled, the per-rank cost-bucket traces
    are absorbed onto its event stream (one track per rank).
    Observation never consumes simulated time, so latencies are
    identical with or without it.  Fault runs build their
    :class:`RecoveryReport` from these metrics; an internal observer is
    created when none is passed.
    """
    legacy = {
        "nbuffers": nbuffers,
        "iterations": iterations,
        "warmup": warmup,
        "verify": verify,
        "data_plane": data_plane,
        "rendezvous_protocol": rendezvous_protocol,
        "eager_threshold": eager_threshold,
        "layout_cache_enabled": layout_cache_enabled,
        "seed": seed,
        "noise": noise,
        "faults": faults,
    }
    if isinstance(system, ExperimentConfig):
        passed = sorted(k for k, v in legacy.items() if v is not _UNSET)
        if scheme_factory is not None or spec is not None or passed:
            raise TypeError(
                "run_bulk_exchange(config) takes every knob from the config; "
                f"unexpected extra arguments: {passed or 'scheme_factory/spec'}"
            )
        return _run_experiment(system, obs=obs)

    warnings.warn(
        "run_bulk_exchange(system, scheme_factory, spec, **kwargs) is "
        "deprecated; pass one repro.config.ExperimentConfig instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if scheme_factory is None or spec is None:
        raise TypeError(
            "legacy run_bulk_exchange needs (system, scheme_factory, spec)"
        )
    cfg, live_noise, live_faults = _legacy_config(system, spec, legacy)
    return _run_experiment(
        cfg,
        obs=obs,
        system=system,
        scheme_factory=scheme_factory,
        workload=spec,
        noise=live_noise,
        faults=live_faults,
    )


def _legacy_config(
    system: SystemConfig, spec: WorkloadSpec, legacy: Dict[str, Any]
) -> tuple:
    """Fold the legacy keyword vocabulary into an ExperimentConfig.

    Returns ``(cfg, noise, faults)`` — the live noise/fault objects are
    threaded through by identity so callers keep their stats views.
    """

    def pick(name: str, default: Any) -> Any:
        value = legacy[name]
        return default if value is _UNSET else value

    noise = pick("noise", None)
    faults = pick("faults", None)
    import dataclasses as _dc

    noise_cfg = (
        NoiseCfg(cv=noise.cv, seed=noise.seed) if noise is not None else NoiseCfg()
    )
    faults_cfg = (
        FaultsCfg(spec=_dc.asdict(faults.spec), seed=faults.seed)
        if faults is not None
        else FaultsCfg()
    )
    cfg = ExperimentConfig(
        system=SystemCfg(name=getattr(system, "name", "custom")),
        workload=WorkloadCfg(
            name=spec.name, dim=spec.dim, nbuffers=pick("nbuffers", 16)
        ),
        scheme=SchemeCfg(),
        protocol=ProtocolCfg(
            rendezvous=pick("rendezvous_protocol", "rput"),
            eager_threshold=pick("eager_threshold", None),
            layout_cache_enabled=pick("layout_cache_enabled", True),
        ),
        noise=noise_cfg,
        faults=faults_cfg,
        harness=HarnessCfg(
            iterations=pick("iterations", 5),
            warmup=pick("warmup", 1),
            verify=pick("verify", True),
            data_plane=pick("data_plane", True),
            seed=pick("seed", 42),
        ),
    )
    return cfg, noise, faults


def _run_experiment(
    cfg: ExperimentConfig,
    *,
    obs: Optional[Observer] = None,
    system: Optional[SystemConfig] = None,
    scheme_factory: Optional[SchemeFactory] = None,
    workload: Optional[WorkloadSpec] = None,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
) -> ExperimentResult:
    """Execute one configured experiment.

    The config is the single source of truth; the optional live-object
    arguments exist for the legacy shim, which already holds resolved
    instances (and must keep their identity — e.g. the caller's
    ``FaultPlan.stats``).  The config path resolves everything here.
    """
    if system is None:
        system = cfg.system.resolve()
    if workload is None:
        workload = cfg.workload.resolve()
    if scheme_factory is None:
        from ..schemes import make_scheme_factory

        scheme_factory = make_scheme_factory(cfg.scheme)
    if noise is None:
        noise = cfg.noise.build(cfg.harness.seed)
    if faults is None:
        faults = cfg.faults.build(cfg.harness.seed)
    if obs is None:
        obs = cfg.obs.build()
    spec = workload
    nbuffers = cfg.workload.nbuffers
    iterations = cfg.harness.iterations
    warmup = cfg.harness.warmup
    verify = cfg.harness.verify
    data_plane = cfg.harness.data_plane
    total_ranks = cfg.system.nodes * cfg.system.ranks_per_node
    if total_ranks != 2:
        raise ValueError(
            f"the bulk-exchange program needs exactly 2 ranks, got "
            f"{total_ranks} (system.nodes * system.ranks_per_node)"
        )

    if obs is None and faults is not None:
        # The recovery report is metrics-backed; fault runs always
        # carry an observer even when the caller did not ask for one.
        # Counters only — no event stream the caller never asked for.
        from ..obs.recorder import NullRecorder

        obs = Observer(recorder=NullRecorder())
    sim = Simulator()
    sim.noise = noise
    sim.faults = faults
    if obs is not None:
        sim.obs = obs
    cluster = Cluster(
        sim,
        system,
        nodes=cfg.system.nodes,
        ranks_per_node=cfg.system.ranks_per_node,
        functional=data_plane,
    )
    runtime = Runtime(sim, cluster, scheme_factory, protocol=cfg.protocol)
    rng = np.random.default_rng(cfg.harness.seed)
    layout = spec.datatype.flatten().replicate(spec.count)
    buf_bytes = spec.buffer_bytes()

    ranks = [runtime.rank(0), runtime.rank(1)]
    send_bufs = {
        r.rank_id: [r.device.alloc(buf_bytes) for _ in range(nbuffers)] for r in ranks
    }
    recv_bufs = {
        r.rank_id: [r.device.alloc(buf_bytes) for _ in range(nbuffers)] for r in ranks
    }

    result = ExperimentResult(
        scheme="",
        workload=spec.name,
        system=system.name,
        nbuffers=nbuffers,
        dim=spec.dim,
        message_bytes=spec.message_bytes,
    )
    result.scheme = ranks[0].scheme.name

    total_iters = warmup + iterations
    finish_times: Dict[int, float] = {}

    def rank_program(rank, peer: int):
        for it in range(total_iters):
            iter_start = sim.now
            if it == warmup:
                # Steady state begins: clear accumulated trace costs.
                rank.trace.clear()
            reqs = []
            for i in range(nbuffers):
                reqs.append(
                    rank.irecv(
                        recv_bufs[rank.rank_id][i], spec.datatype, spec.count,
                        peer, tag=i,
                    )
                )
            for i in range(nbuffers):
                sreq = yield from rank.isend(
                    send_bufs[rank.rank_id][i], spec.datatype, spec.count,
                    peer, tag=i,
                )
                reqs.append(sreq)
            yield from rank.waitall(reqs)
            if it >= warmup and rank.rank_id == 0:
                result.latencies.append(sim.now - iter_start)
            # Barrier between iterations so both ranks start together.
            yield from _barrier(rank, peer, tag=10_000 + it)
        finish_times[rank.rank_id] = sim.now

    def _barrier(rank, peer: int, tag: int):
        token = rank.device.alloc(8)
        rreq = rank.irecv(token, DataLayout.contiguous(8), 1, peer, tag=tag)
        sreq = yield from rank.isend(token, DataLayout.contiguous(8), 1, peer, tag=tag)
        yield from rank.waitall([rreq, sreq])
        token.free()

    if data_plane:
        _fill_random(send_bufs[0] + send_bufs[1], rng)
    else:
        verify = False
    procs = [
        sim.process(rank_program(ranks[0], 1), name="rank0"),
        sim.process(rank_program(ranks[1], 0), name="rank1"),
    ]
    run_started = time.perf_counter()
    sim.run(sim.all_of(procs))
    if obs is not None and obs.enabled:
        # Host-side engine telemetry (wall clock, not simulated time —
        # the virtual timeline is untouched by observation, DESIGN §6).
        run_wall = time.perf_counter() - run_started
        obs.count("engine_events_total", sim.events_processed)
        obs.count("engine_wall_seconds_total", run_wall)
        obs.gauge_set(
            "engine_events_per_second",
            sim.events_processed / run_wall if run_wall > 0 else 0.0,
        )

    if verify:
        idx = layout.gather_index()
        for me, peer in ((0, 1), (1, 0)):
            for sbuf, rbuf in zip(send_bufs[peer], recv_bufs[me]):
                if not np.array_equal(rbuf.data[idx], sbuf.data[idx]):
                    raise AssertionError(
                        f"data corruption: {result.scheme} on {spec.name} "
                        f"(rank {me}, {spec.summary()})"
                    )

    # Per-category totals: average over ranks, then per iteration.
    per_rank = [r.trace.breakdown() for r in ranks]
    breakdown = {
        cat: sum(b[cat] for b in per_rank) / len(per_rank) / iterations
        for cat in Category
    }
    # Observed communication: the residual of the mean latency.
    accounted = sum(v for c, v in breakdown.items() if c is not Category.COMM)
    breakdown[Category.COMM] = max(0.0, result.mean_latency - accounted)
    result.breakdown = breakdown

    scheme0 = ranks[0].scheme
    if hasattr(scheme0, "scheduler"):
        result.scheduler_stats = scheme0.scheduler.stats

    if obs is not None:
        if obs.recorder.enabled:
            for r in ranks:
                obs.recorder.absorb_trace(
                    f"{result.scheme}/rank{r.rank_id}", r.trace
                )
        result.metrics = obs.snapshot()
        if faults is not None:
            result.recovery = RecoveryReport.from_metrics(
                result.metrics, faults.stats.as_dict()
            )
    return result
