"""Benchmark harness: experiment runner, sweep engine, report formatting."""

from .figures import FIGURES, FigurePlan, FigureRun, run_figure
from .report import (
    format_breakdown_table,
    format_latency_table,
    format_speedup_table,
    speedup_matrix,
)
from .runner import ExperimentResult, RecoveryReport, run_bulk_exchange
from .sweep import (
    ExperimentSpec,
    ResultCache,
    SweepError,
    SweepResult,
    SweepRun,
    SweepStats,
    code_salt,
    run_sweep,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "FIGURES",
    "FigurePlan",
    "FigureRun",
    "RecoveryReport",
    "ResultCache",
    "SweepError",
    "SweepResult",
    "SweepRun",
    "SweepStats",
    "code_salt",
    "run_bulk_exchange",
    "run_figure",
    "run_sweep",
    "format_latency_table",
    "format_breakdown_table",
    "format_speedup_table",
    "speedup_matrix",
]
