"""Benchmark harness: experiment runner + report formatting."""

from .report import (
    format_breakdown_table,
    format_latency_table,
    format_speedup_table,
    speedup_matrix,
)
from .runner import ExperimentResult, RecoveryReport, run_bulk_exchange

__all__ = [
    "ExperimentResult",
    "RecoveryReport",
    "run_bulk_exchange",
    "format_latency_table",
    "format_breakdown_table",
    "format_speedup_table",
    "speedup_matrix",
]
