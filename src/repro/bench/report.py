"""Report formatting: print the paper's rows and series.

Helpers that turn :class:`~repro.bench.runner.ExperimentResult` grids
into the text tables the benchmark targets emit — one per paper figure.
All latencies print in microseconds (the unit of Figs. 8–13);
normalized comparisons (Fig. 14) print as speedup factors.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.trace import Category
from .runner import ExperimentResult

__all__ = [
    "format_latency_table",
    "format_breakdown_table",
    "format_speedup_table",
    "speedup_matrix",
]

_US = 1e6


def format_latency_table(
    results: Dict[str, Dict[int, ExperimentResult]],
    *,
    title: str,
    column_label: str = "dim",
    baseline: Optional[str] = None,
) -> str:
    """Grid of mean latencies: rows = schemes, columns = sweep values.

    ``results[scheme][column]``.  When ``baseline`` is given, a final
    row reports the best-case speedup of each scheme over it.
    """
    schemes = list(results.keys())
    columns = sorted({c for per in results.values() for c in per})
    width = max(12, max((len(s) for s in schemes), default=0) + 2)
    lines = [title, "=" * len(title)]
    header = f"{'scheme':<{width}}" + "".join(
        f"{column_label}={c:<12}" for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scheme in schemes:
        cells = []
        for c in columns:
            r = results[scheme].get(c)
            cells.append(f"{r.mean_latency * _US:>10.2f}us  " if r else f"{'--':>12}")
        lines.append(f"{scheme:<{width}}" + "".join(cells))
    if baseline and baseline in results:
        lines.append("-" * len(header))
        for scheme in schemes:
            if scheme == baseline:
                continue
            ratios = []
            for c in columns:
                r, b = results[scheme].get(c), results[baseline].get(c)
                if r and b:
                    ratios.append(b.mean_latency / r.mean_latency)
            if ratios:
                lines.append(
                    f"{scheme:<{width}}speedup over {baseline}: "
                    f"max {max(ratios):.1f}x, min {min(ratios):.1f}x"
                )
    return "\n".join(lines)


def format_breakdown_table(
    results: Sequence[ExperimentResult], *, title: str
) -> str:
    """Fig. 11-style table: one row per scheme, one column per bucket."""
    cats = [Category.PACK, Category.LAUNCH, Category.SCHED, Category.SYNC, Category.COMM]
    width = max(16, max((len(r.scheme) for r in results), default=0) + 2)
    lines = [title, "=" * len(title)]
    header = f"{'scheme':<{width}}" + "".join(f"{c.value:>12}" for c in cats) + f"{'total':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for r in results:
        cells = "".join(f"{r.breakdown.get(c, 0.0) * _US:>10.2f}us" for c in cats)
        lines.append(f"{r.scheme:<{width}}{cells}{r.mean_latency * _US:>10.2f}us")
    return "\n".join(lines)


def speedup_matrix(
    results: Dict[str, Dict[int, ExperimentResult]], reference: str
) -> Dict[str, Dict[int, float]]:
    """Per-column speedup of every scheme relative to ``reference``.

    The Fig. 14 normalization ("Normalized to SpectrumMPI; higher is
    better").
    """
    out: Dict[str, Dict[int, float]] = {}
    ref = results.get(reference, {})
    for scheme, per in results.items():
        out[scheme] = {
            c: ref[c].mean_latency / r.mean_latency
            for c, r in per.items()
            if c in ref
        }
    return out


def format_speedup_table(
    results: Dict[str, Dict[int, ExperimentResult]],
    reference: str,
    *,
    title: str,
    column_label: str = "dim",
) -> str:
    """Fig. 14-style normalized table (higher is better)."""
    matrix = speedup_matrix(results, reference)
    columns = sorted({c for per in matrix.values() for c in per})
    width = max(16, max((len(s) for s in matrix), default=0) + 2)
    lines = [title, "=" * len(title)]
    header = f"{'scheme':<{width}}" + "".join(f"{column_label}={c:<12}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for scheme, per in matrix.items():
        cells = "".join(
            f"{per[c]:>10.2f}x  " if c in per else f"{'--':>12}" for c in columns
        )
        lines.append(f"{scheme:<{width}}{cells}")
    return "\n".join(lines)
