"""Canonical parameter grids of the paper's eight evaluation figures.

One authoritative expansion per figure (Figs. 1, 8–14), shared by the
``repro sweep --figure`` CLI and the ``benchmarks/test_fig*.py``
drivers, so CI and local runs always sweep the same plane:

* a :class:`FigurePlan` expands into independent
  :class:`~repro.bench.sweep.ExperimentSpec` shards;
* figures with a *tuning* phase (Figs. 12/13 pick the per-workload best
  fusion threshold from a small sweep) expand in two stages — the
  tuning shards run (and cache) first, then the main grid is generated
  from their outcome;
* :func:`run_figure` executes both stages through
  :func:`~repro.bench.sweep.run_sweep` and assembles the versioned
  ``BENCH_<experiment>.json`` document.

Fig. 1 is not a bulk-exchange grid — it tabulates launch-overhead
cost-model constants — so it rides along as a single ``kind="table"``
shard whose builder lives in :data:`TABLE_BUILDERS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..config import ExperimentConfig
from ..obs.artifact import experiment_artifact
from ..obs.metrics import MetricsRegistry
from .sweep import (
    ExperimentSpec,
    ResultCache,
    SweepResult,
    SweepStats,
    run_sweep,
)

__all__ = [
    "FIGURES",
    "FIG09_SCHEMES",
    "FIG11_SCHEMES",
    "FIG12_SCHEMES",
    "FIG14_SCHEMES",
    "FigurePlan",
    "FigureRun",
    "TABLE_BUILDERS",
    "run_figure",
    "fig08_views",
    "fig09_results",
    "fig10_results",
    "fig11_results",
    "fig12_tables",
    "fig13_lassen_views",
    "fig14_grids",
]

KiB = 1024

#: benchmark-wide measurement settings (the paper uses 500 iters /
#: 50 warm-up on hardware; the simulator is deterministic so steady
#: state needs only a couple of iterations past the cache-warming one)
ITERATIONS = 2
WARMUP = 1

# -- Fig. 8 --------------------------------------------------------------------
FIG08_THRESHOLDS = [16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
                    1024 * KiB, 2048 * KiB, 4096 * KiB]
FIG08_DIMS = [500, 2000, 4000]  # ~18 KB / 70 KB / 140 KB per message

# -- Figs. 9/10 ----------------------------------------------------------------
BULK_NBUFFERS = [1, 2, 4, 8, 16]
FIG09_DIM = 1000
FIG09_SCHEMES = ["GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed"]
FIG10_DIM = 16       # ~96 KB messages
FIG10_DIM_SMALL = 4  # ~1.5 KB messages: hybrid's GDRCopy sweet spot

# -- Fig. 11 -------------------------------------------------------------------
FIG11_SCHEMES = ["GPU-Sync", "GPU-Async", "Proposed"]
FIG11_DIM = 16
FIG11_NBUF = 16

# -- Figs. 12/13 ---------------------------------------------------------------
FIG12_SWEEPS: Dict[str, List[int]] = {
    "specfem3D_oc": [500, 1000, 2000, 4000, 8000],
    "specfem3D_cm": [250, 500, 1000, 2000, 4000],
    "MILC": [2, 4, 8, 16, 32],
    "NAS_MG": [32, 64, 128, 256],
}
TUNE_CANDIDATES = [128 * KiB, 256 * KiB, 512 * KiB]
FIG12_SCHEMES = [
    "GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed", "Proposed-Tuned",
]
#: Lassen shards Fig. 13 re-uses for its cross-system claims
FIG13_LASSEN_DIMS = FIG12_SWEEPS["specfem3D_cm"][:2]

# -- Fig. 14 -------------------------------------------------------------------
FIG14_CASES: Dict[str, List[int]] = {
    "specfem3D_cm": [250, 1000],  # sparse
    "MILC": [16, 32],             # dense
}
FIG14_SCHEMES = ["SpectrumMPI", "OpenMPI", "MVAPICH2-GDR", "Proposed"]


#: the declarative base config every figure shard starts from; each
#: grid point is ``FIG_BASE.with_overrides({...})`` with only the axes
#: that figure sweeps
FIG_BASE = ExperimentConfig.default().with_overrides(
    {
        "harness.iterations": ITERATIONS,
        "harness.warmup": WARMUP,
        "harness.data_plane": False,
    }
)


def _spec(
    experiment: str, key: str, overrides: Mapping[str, Any]
) -> ExperimentSpec:
    """One grid point: the figure base config + dotted-path overrides."""
    return ExperimentSpec.from_config(
        experiment, key, FIG_BASE.with_overrides(overrides)
    )


def _scheme_overrides(
    scheme: str, tuned_threshold: Optional[int] = None
) -> Dict[str, Any]:
    """Config overrides reconstructing one of the figure schemes by name."""
    if scheme == "Proposed-Tuned":
        if tuned_threshold is None:
            raise ValueError("Proposed-Tuned needs a tuned threshold")
        return {
            "scheme.name": "Proposed-Tuned",
            "scheme.label": "Proposed-Tuned",
            "scheme.fusion.threshold_bytes": tuned_threshold,
        }
    return {"scheme.name": scheme}


# -- Fig. 1 table --------------------------------------------------------------


def _fig01_table() -> Dict[str, Dict[str, float]]:
    """Launch overhead vs pack-kernel time across GPU generations."""
    from ..gpu import ARCHITECTURES, kernel_compute_time
    from ..workloads import WORKLOADS

    specs = {
        "Specfem3D": WORKLOADS["specfem3D_cm"](2000),
        "MILC": WORKLOADS["MILC"](16),
    }
    data: Dict[str, Dict[str, float]] = {}
    for arch_name, arch in ARCHITECTURES.items():
        entry: Dict[str, float] = {"launch": arch.kernel_launch_overhead}
        for wl, spec in specs.items():
            lay = spec.datatype.flatten().replicate(spec.count)
            entry[wl] = kernel_compute_time(
                arch, lay.size, lay.num_blocks, lay.mean_block
            )
        data[arch_name] = entry
    return data


#: registered ``kind="table"`` shard builders (name → zero-arg callable)
TABLE_BUILDERS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "fig01_launch_overhead": _fig01_table,
}


# -- plans ---------------------------------------------------------------------

TuningPhase = Callable[[], List[ExperimentSpec]]
ExpandPhase = Callable[[Mapping[str, SweepResult]], List[ExperimentSpec]]


def _no_tuning() -> List[ExperimentSpec]:
    return []


@dataclass(frozen=True)
class FigurePlan:
    """How one figure's grid expands into sweep shards."""

    figure: str
    experiment: str
    expand: ExpandPhase
    tuning: TuningPhase = _no_tuning


def _fig01_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    return [
        ExperimentSpec(
            experiment="fig01_launch_overhead",
            key="table",
            kind="table",
            table="fig01_launch_overhead",
        )
    ]


def _fig08_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    return [
        _spec(
            "fig08_threshold",
            f"thr={threshold // KiB}KB/dim={dim}",
            {
                "scheme.name": "Proposed",
                "scheme.fusion.threshold_bytes": threshold,
                "workload.dim": dim,
            },
        )
        for dim in FIG08_DIMS
        for threshold in FIG08_THRESHOLDS
    ]


def _fig09_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    return [
        _spec(
            "fig09_bulk_sparse",
            f"{scheme}/nbuf={nbuf}",
            {
                "scheme.name": scheme,
                "workload.dim": FIG09_DIM,
                "workload.nbuffers": nbuf,
            },
        )
        for scheme in FIG09_SCHEMES
        for nbuf in BULK_NBUFFERS
    ]


def _fig10_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    specs = [
        _spec(
            "fig10_bulk_dense",
            f"{scheme}/nbuf={nbuf}",
            {
                "scheme.name": scheme,
                "workload.name": "MILC",
                "workload.dim": FIG10_DIM,
                "workload.nbuffers": nbuf,
            },
        )
        for scheme in FIG09_SCHEMES
        for nbuf in BULK_NBUFFERS
    ]
    specs.extend(
        _spec(
            "fig10_bulk_dense",
            f"dim={FIG10_DIM_SMALL}/{scheme}/nbuf={nbuf}",
            {
                "scheme.name": scheme,
                "workload.name": "MILC",
                "workload.dim": FIG10_DIM_SMALL,
                "workload.nbuffers": nbuf,
            },
        )
        for scheme in FIG09_SCHEMES
        for nbuf in BULK_NBUFFERS
    )
    return specs


def _fig11_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    specs = []
    for scheme in FIG11_SCHEMES:
        overrides = {
            "scheme.name": scheme,
            "system.name": "ABCI",
            "workload.name": "MILC",
            "workload.dim": FIG11_DIM,
            "workload.nbuffers": FIG11_NBUF,
        }
        if scheme == "Proposed":
            overrides["scheme.fusion.threshold_bytes"] = 512 * KiB
        specs.append(_spec("fig11_breakdown", scheme, overrides))
    return specs


def _tuning_key(workload: str, threshold: int) -> str:
    return f"tune/{workload}/thr={threshold // KiB}KB"


def _figure12_tuning(experiment: str, system: str) -> List[ExperimentSpec]:
    specs = []
    for workload, dims in FIG12_SWEEPS.items():
        mid = dims[len(dims) // 2]
        for threshold in TUNE_CANDIDATES:
            specs.append(
                _spec(
                    experiment,
                    _tuning_key(workload, threshold),
                    {
                        "scheme.name": "Proposed",
                        "scheme.fusion.threshold_bytes": threshold,
                        "system.name": system,
                        "workload.name": workload,
                        "workload.dim": mid,
                    },
                )
            )
    return specs


def tuned_thresholds(tuning: Mapping[str, SweepResult]) -> Dict[str, int]:
    """Per-workload best threshold from the tuning-phase results.

    Ties go to the earliest candidate, exactly like the serial tuning
    loop the drivers used to run.
    """
    best: Dict[str, int] = {}
    for workload in FIG12_SWEEPS:
        best_thr, best_lat = TUNE_CANDIDATES[0], float("inf")
        for threshold in TUNE_CANDIDATES:
            lat = tuning[_tuning_key(workload, threshold)].mean_latency
            if lat < best_lat:
                best_thr, best_lat = threshold, lat
        best[workload] = best_thr
    return best


def _figure12_grid(
    experiment: str, system: str, tuning: Mapping[str, SweepResult]
) -> List[ExperimentSpec]:
    tuned = tuned_thresholds(tuning)
    specs = []
    for workload, dims in FIG12_SWEEPS.items():
        for scheme in FIG12_SCHEMES:
            for dim in dims:
                specs.append(
                    _spec(
                        experiment,
                        f"{workload}/{scheme}/dim={dim}",
                        {
                            "system.name": system,
                            "workload.name": workload,
                            "workload.dim": dim,
                            **_scheme_overrides(scheme, tuned[workload]),
                        },
                    )
                )
    return specs


def _fig13_expand(tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    specs = _figure12_grid("fig13", "ABCI", tuning)
    # Cross-system comparison shards (Lassen) for the §V-C claims:
    # the sparse-layout win over GPU-Sync must *grow* on ABCI, and
    # GPU-Async must recover relative to GPU-Sync.
    for scheme in ("GPU-Sync", "Proposed"):
        for dim in FIG13_LASSEN_DIMS:
            specs.append(
                _spec(
                    "fig13",
                    f"lassen/{scheme}/dim={dim}",
                    {
                        "scheme.name": scheme,
                        "system.name": "Lassen",
                        "workload.name": "specfem3D_cm",
                        "workload.dim": dim,
                    },
                )
            )
    for scheme in ("GPU-Sync", "GPU-Async"):
        specs.append(
            _spec(
                "fig13",
                f"lassen_milc/{scheme}/dim=16",
                {
                    "scheme.name": scheme,
                    "system.name": "Lassen",
                    "workload.name": "MILC",
                    "workload.dim": 16,
                },
            )
        )
    return specs


def _fig14_expand(_tuning: Mapping[str, SweepResult]) -> List[ExperimentSpec]:
    return [
        _spec(
            "fig14_production",
            f"{workload}/{scheme}/dim={dim}",
            {
                "scheme.name": scheme,
                "workload.name": workload,
                "workload.dim": dim,
            },
        )
        for workload, dims in FIG14_CASES.items()
        for scheme in FIG14_SCHEMES
        for dim in dims
    ]


#: figure id → plan, the full §V evaluation plane
FIGURES: Dict[str, FigurePlan] = {
    "fig01": FigurePlan("fig01", "fig01_launch_overhead", _fig01_expand),
    "fig08": FigurePlan("fig08", "fig08_threshold", _fig08_expand),
    "fig09": FigurePlan("fig09", "fig09_bulk_sparse", _fig09_expand),
    "fig10": FigurePlan("fig10", "fig10_bulk_dense", _fig10_expand),
    "fig11": FigurePlan("fig11", "fig11_breakdown", _fig11_expand),
    "fig12": FigurePlan(
        "fig12", "fig12",
        lambda tuning: _figure12_grid("fig12", "Lassen", tuning),
        lambda: _figure12_tuning("fig12", "Lassen"),
    ),
    "fig13": FigurePlan(
        "fig13", "fig13",
        _fig13_expand,
        lambda: _figure12_tuning("fig13", "ABCI"),
    ),
    "fig14": FigurePlan("fig14", "fig14_production", _fig14_expand),
}


@dataclass
class FigureRun:
    """Executed figure: merged entries plus shard accounting."""

    figure: str
    experiment: str
    #: main-grid entries in expansion order (tuning shards excluded)
    entries: List[Dict[str, Any]] = field(default_factory=list)
    cached_flags: List[bool] = field(default_factory=list)
    #: tuning-phase views (empty for single-phase figures)
    tuning: Dict[str, SweepResult] = field(default_factory=dict)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def views(self) -> Dict[str, SweepResult]:
        """Entry key → result view over the main grid."""
        return {
            str(entry["key"]): SweepResult(entry, cached=cached)
            for entry, cached in zip(self.entries, self.cached_flags)
        }

    def artifact_doc(self) -> Dict[str, Any]:
        """The versioned ``BENCH_<experiment>.json`` document."""
        if len(self.entries) == 1 and self.entries[0].get("kind") == "table":
            return experiment_artifact(
                self.experiment, (), data=self.entries[0]["data"]
            )
        return experiment_artifact(self.experiment, self.entries)


def run_figure(
    figure: str | FigurePlan,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    salt: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> FigureRun:
    """Expand and execute one figure's full grid through the sweep engine.

    Two-phase figures run their tuning shards first (cached like any
    other shard), then expand the main grid from the tuning outcome.
    """
    plan = FIGURES[figure] if isinstance(figure, str) else figure
    stats = SweepStats()
    tuning_views: Dict[str, SweepResult] = {}
    tuning_specs = plan.tuning()
    if tuning_specs:
        tuning_run = run_sweep(
            tuning_specs, jobs=jobs, cache=cache, salt=salt, registry=registry
        )
        stats.add(tuning_run.stats)
        tuning_views = tuning_run.views
    grid_run = run_sweep(
        plan.expand(tuning_views), jobs=jobs, cache=cache, salt=salt,
        registry=registry,
    )
    stats.add(grid_run.stats)
    return FigureRun(
        figure=plan.figure,
        experiment=plan.experiment,
        entries=grid_run.entries,
        cached_flags=grid_run.cached_flags,
        tuning=tuning_views,
        stats=stats,
    )


# -- driver-shaped view helpers ------------------------------------------------


def fig08_views(views: Mapping[str, SweepResult]) -> Dict[int, Dict[int, SweepResult]]:
    """``grid[dim][threshold]`` over the Fig. 8 sweep."""
    return {
        dim: {
            thr: views[f"thr={thr // KiB}KB/dim={dim}"]
            for thr in FIG08_THRESHOLDS
        }
        for dim in FIG08_DIMS
    }


def _bulk_grid(
    views: Mapping[str, SweepResult], prefix: str = ""
) -> Dict[str, Dict[int, SweepResult]]:
    return {
        scheme: {
            nbuf: views[f"{prefix}{scheme}/nbuf={nbuf}"]
            for nbuf in BULK_NBUFFERS
        }
        for scheme in FIG09_SCHEMES
    }


def fig09_results(views: Mapping[str, SweepResult]) -> Dict[str, Dict[int, SweepResult]]:
    """``results[scheme][nbuf]`` for the Fig. 9 bulk-sparse sweep."""
    return _bulk_grid(views)


def fig10_results(
    views: Mapping[str, SweepResult],
) -> Tuple[Dict[str, Dict[int, SweepResult]], Dict[str, Dict[int, SweepResult]]]:
    """``(big, small)`` bulk-dense grids of Fig. 10."""
    return _bulk_grid(views), _bulk_grid(views, prefix=f"dim={FIG10_DIM_SMALL}/")


def fig11_results(views: Mapping[str, SweepResult]) -> Dict[str, SweepResult]:
    """``results[scheme]`` for the Fig. 11 breakdown."""
    return {scheme: views[scheme] for scheme in FIG11_SCHEMES}


def fig12_tables(
    views: Mapping[str, SweepResult],
) -> Dict[str, Dict[str, Dict[int, SweepResult]]]:
    """``tables[workload][scheme][dim]`` for Figs. 12/13."""
    return {
        workload: {
            scheme: {
                dim: views[f"{workload}/{scheme}/dim={dim}"]
                for dim in dims
            }
            for scheme in FIG12_SCHEMES
        }
        for workload, dims in FIG12_SWEEPS.items()
    }


def fig13_lassen_views(
    views: Mapping[str, SweepResult],
) -> Tuple[Dict[str, Dict[int, SweepResult]], Dict[str, Dict[int, SweepResult]]]:
    """The Lassen comparison grids embedded in the Fig. 13 sweep."""
    sparse = {
        scheme: {
            dim: views[f"lassen/{scheme}/dim={dim}"]
            for dim in FIG13_LASSEN_DIMS
        }
        for scheme in ("GPU-Sync", "Proposed")
    }
    milc = {
        scheme: {16: views[f"lassen_milc/{scheme}/dim=16"]}
        for scheme in ("GPU-Sync", "GPU-Async")
    }
    return sparse, milc


def fig14_grids(
    views: Mapping[str, SweepResult],
) -> Dict[str, Dict[str, Dict[int, SweepResult]]]:
    """``grids[workload][scheme][dim]`` for Fig. 14."""
    return {
        workload: {
            scheme: {
                dim: views[f"{workload}/{scheme}/dim={dim}"]
                for dim in dims
            }
            for scheme in FIG14_SCHEMES
        }
        for workload, dims in FIG14_CASES.items()
    }
