"""Sharded parallel sweep engine with content-addressed result caching.

The paper's evaluation (§V, Figs. 8–14) is a grid of hundreds of
(system, scheme, workload, nbuffers) experiments.  Every grid point is
an *independent, seed-deterministic* simulation, which makes the sweep
plane embarrassingly parallel and perfectly cacheable:

* an :class:`ExperimentSpec` names one grid point by value — strings
  and numbers only, no live :class:`~repro.sim.engine.Simulator` /
  :class:`~repro.net.systems.SystemConfig` /
  :class:`~repro.workloads.base.WorkloadSpec` objects — so a shard can
  be pickled into a ``multiprocessing`` spawn worker and rebuilt there
  from the registries;
* :func:`run_sweep` fans the shards of a sweep across a worker pool and
  returns serialized artifact entries in spec order, so a parallel run
  merges into a ``BENCH_<experiment>.json`` byte-identical to a serial
  one;
* a :class:`ResultCache` stores each shard's entry in a
  content-addressed on-disk file keyed by ``sha256(spec, salt)`` where
  the default salt is a hash of the ``repro`` source tree
  (:func:`code_salt`) — unchanged grid points are never re-run, and any
  code change invalidates every cached shard at once;
* cache hits / executed shards / worker counts are recorded through a
  :class:`~repro.obs.MetricsRegistry` (metric names in
  :data:`repro.obs.METRIC_CATALOG`), so the speedup is itself
  observable.

Entries are plain dicts in the :data:`repro.obs.SCHEMA` artifact-entry
shape; :class:`SweepResult` wraps one entry back into the duck-typed
``ExperimentResult`` interface (``mean_latency``, ``breakdown[Category]``,
``scheduler_stats`` …) that the report formatters and the figure shape
assertions consume.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import ExperimentConfig, HarnessCfg, ProtocolCfg, SchemeCfg, SystemCfg, WorkloadCfg
from ..obs.artifact import result_entry
from ..obs.metrics import MetricsRegistry
from ..sim.trace import Category

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_SCHEMA_VERSION",
    "ExperimentSpec",
    "ResultCache",
    "SweepError",
    "SweepResult",
    "SweepRun",
    "SweepStats",
    "code_salt",
    "run_sweep",
    "scheme_factory_for",
]

CACHE_SCHEMA = "repro.obs/sweep-cache"
#: version 2: cache documents embed the spec's nested ``cfg`` tree
#: (the config plane) instead of the old flat field dict
CACHE_SCHEMA_VERSION = 2


class SweepError(RuntimeError):
    """A shard failed inside a sweep (locally or in a worker process)."""

    def __init__(self, message: str, failures: Sequence[Tuple[str, str]] = ()):
        super().__init__(message)
        #: (shard key, traceback text) for every failed shard
        self.failures: List[Tuple[str, str]] = list(failures)


#: legacy flat-dict spec vocabulary (pre-config-plane cache documents
#: and ``from_dict`` compatibility)
_LEGACY_SPEC_FIELDS = (
    "experiment",
    "key",
    "kind",
    "system",
    "scheme",
    "workload",
    "dim",
    "nbuffers",
    "config",
    "iterations",
    "warmup",
    "data_plane",
    "rendezvous_protocol",
    "seed",
    "table",
)


@dataclass(frozen=True, init=False)
class ExperimentSpec:
    """One independent, seed-deterministic shard of a sweep.

    A spec is an :class:`~repro.config.ExperimentConfig` plus sweep
    identity (``experiment``/``key``/``kind``/``table``).  Everything
    is by-value and picklable: systems, schemes, and workloads are
    named inside the config, and :meth:`run_result` rebuilds the live
    objects from the registries inside whichever process runs the
    shard.

    The historical flat keyword vocabulary (``scheme=``, ``dim=``,
    ``config={...}`` with scheme-constructor overrides exactly as
    artifact entries record them) still constructs a spec — it folds
    into the config tree — and read-only properties expose the same
    flat view.
    """

    experiment: str
    key: str
    kind: str
    table: str
    cfg: ExperimentConfig

    def __init__(
        self,
        experiment: str,
        key: str,
        kind: str = "exchange",
        table: str = "",
        cfg: Optional[ExperimentConfig] = None,
        *,
        system: str = "Lassen",
        scheme: str = "Proposed",
        workload: str = "specfem3D_cm",
        dim: int = 1000,
        nbuffers: int = 16,
        config: Optional[Mapping[str, Any]] = None,
        iterations: int = 2,
        warmup: int = 1,
        data_plane: bool = False,
        rendezvous_protocol: str = "rput",
        seed: int = 42,
    ):
        if cfg is None:
            cfg = ExperimentConfig(
                system=SystemCfg(name=system),
                workload=WorkloadCfg(name=workload, dim=dim, nbuffers=nbuffers),
                scheme=SchemeCfg.from_overrides(scheme, config or {}),
                protocol=ProtocolCfg(rendezvous=rendezvous_protocol),
                harness=HarnessCfg(
                    iterations=iterations,
                    warmup=warmup,
                    data_plane=data_plane,
                    seed=seed,
                ),
            )
        object.__setattr__(self, "experiment", experiment)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "cfg", cfg)

    @classmethod
    def from_config(
        cls,
        experiment: str,
        key: str,
        cfg: ExperimentConfig,
        *,
        kind: str = "exchange",
        table: str = "",
    ) -> "ExperimentSpec":
        """The config-plane constructor."""
        return cls(experiment, key, kind, table, cfg)

    # -- flat legacy view --------------------------------------------------
    @property
    def system(self) -> str:
        return self.cfg.system.name

    @property
    def scheme(self) -> str:
        return self.cfg.scheme.name

    @property
    def workload(self) -> str:
        return self.cfg.workload.name

    @property
    def dim(self) -> int:
        return self.cfg.workload.dim

    @property
    def nbuffers(self) -> int:
        return self.cfg.workload.nbuffers

    @property
    def config(self) -> Dict[str, Any]:
        """Scheme-constructor overrides, in artifact-entry vocabulary."""
        return self.cfg.scheme.overrides_dict()

    @property
    def iterations(self) -> int:
        return self.cfg.harness.iterations

    @property
    def warmup(self) -> int:
        return self.cfg.harness.warmup

    @property
    def data_plane(self) -> bool:
        return self.cfg.harness.data_plane

    @property
    def rendezvous_protocol(self) -> str:
        return self.cfg.protocol.rendezvous

    @property
    def seed(self) -> int:
        return self.cfg.harness.seed

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable key order, JSON-safe)."""
        return {
            "experiment": self.experiment,
            "key": self.key,
            "kind": self.kind,
            "table": self.table,
            "cfg": self.cfg.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or from the
        pre-config-plane flat shape)."""
        if "cfg" in data:
            return cls(
                experiment=str(data["experiment"]),
                key=str(data["key"]),
                kind=str(data.get("kind", "exchange")),
                table=str(data.get("table", "")),
                cfg=ExperimentConfig.from_dict(data["cfg"]),
            )
        known = {f: data[f] for f in _LEGACY_SPEC_FIELDS if f in data}
        return cls(**known)

    @classmethod
    def from_entry(
        cls, experiment: str, entry: Mapping[str, Any]
    ) -> "ExperimentSpec":
        """Spec that reproduces a stored artifact entry.

        The inverse of :meth:`run_entry` — how the regression gate
        re-runs a baseline measurement.
        """
        run = dict(entry.get("run", {}))
        return cls(
            experiment=experiment,
            key=str(entry["key"]),
            system=str(entry["system"]),
            scheme=str(entry["scheme"]),
            workload=str(entry["workload"]),
            dim=int(entry["dim"]),
            nbuffers=int(entry["nbuffers"]),
            config=dict(entry.get("config", {})),
            iterations=int(run.get("iterations", 2)),
            warmup=int(run.get("warmup", 1)),
            data_plane=bool(run.get("data_plane", False)),
            rendezvous_protocol=str(run.get("rendezvous_protocol", "rput")),
            seed=int(run.get("seed", 42)),
        )

    def cache_key(self, salt: str) -> str:
        """Content address of this shard under a code-version salt.

        Derives from the config's canonical
        :meth:`~repro.config.ExperimentConfig.content_hash` plus the
        sweep identity — ``PYTHONHASHSEED``-independent by
        construction.
        """
        digest = hashlib.sha256()
        for part in (salt, self.experiment, self.key, self.kind, self.table):
            digest.update(part.encode())
            digest.update(b"\0")
        digest.update(self.cfg.content_hash().encode())
        return digest.hexdigest()

    # -- execution ---------------------------------------------------------
    def run_params(self) -> Dict[str, Any]:
        """The ``run`` block recorded into the artifact entry."""
        return {
            "iterations": self.iterations,
            "warmup": self.warmup,
            "data_plane": self.data_plane,
            "rendezvous_protocol": self.rendezvous_protocol,
            "seed": self.seed,
        }

    def run_result(self, obs: Any = None) -> Any:
        """Run the shard; returns the live ``ExperimentResult``."""
        if self.kind != "exchange":
            raise ValueError(
                f"spec {self.key!r} has kind {self.kind!r}; only 'exchange' "
                "shards produce an ExperimentResult"
            )
        from .runner import run_bulk_exchange

        return run_bulk_exchange(self.cfg, obs=obs)

    def run_entry(self) -> Dict[str, Any]:
        """Run the shard; returns its serialized artifact entry."""
        if self.kind == "table":
            from .figures import TABLE_BUILDERS

            data = TABLE_BUILDERS[self.table]()
            return {"key": self.key, "kind": "table", "data": data}
        result = self.run_result()
        return result_entry(
            result,
            key=self.key,
            config=self.config or None,
            run=self.run_params(),
        )


def scheme_factory_for(scheme: str, config: Mapping[str, Any]):
    """Rebuild a ``factory(site, trace)`` from a scheme name + overrides.

    Thin wrapper over :func:`repro.schemes.make_scheme_factory`: the
    legacy ``config`` block (``threshold_bytes`` / ``capacity`` /
    policy knobs / ``name``) folds into a
    :class:`~repro.config.SchemeCfg`, so a worker process reproduces
    the serial run's scheme byte for byte.
    """
    from ..schemes import make_scheme_factory

    return make_scheme_factory(SchemeCfg.from_overrides(scheme, config or {}))


@functools.lru_cache(maxsize=1)
def code_salt() -> str:
    """Hash of the ``repro`` source tree: the default cache salt.

    Any edit to any module under ``src/repro`` changes the salt, which
    changes every shard's content address — a stale cache can never
    serve results produced by different code.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class ResultCache:
    """Content-addressed on-disk store of serialized shard entries.

    One JSON file per shard, named by :meth:`ExperimentSpec.cache_key`.
    Writes are atomic (temp file + rename) so parallel workers and
    concurrent sweeps can share a directory; unreadable or mismatched
    files are treated as misses, never as errors.
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, spec: ExperimentSpec, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``digest``, or ``None`` on any mismatch."""
        path = self._path(digest)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            doc.get("schema") != CACHE_SCHEMA
            or doc.get("version") != CACHE_SCHEMA_VERSION
            or doc.get("spec") != spec.to_dict()
        ):
            return None
        entry = doc.get("entry")
        return dict(entry) if isinstance(entry, dict) else None

    def put(self, spec: ExperimentSpec, digest: str, entry: Mapping[str, Any]) -> None:
        """Store one shard's entry under its content address."""
        doc = {
            "schema": CACHE_SCHEMA,
            "version": CACHE_SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "entry": dict(entry),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self._path(digest))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached shard; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


class SweepResult:
    """``ExperimentResult``-shaped view over a serialized artifact entry.

    What the figure drivers' shape assertions and the report formatters
    consume after a sweep: latencies, the Fig. 11 cost breakdown keyed
    by :class:`~repro.sim.trace.Category`, and the scheduler stats —
    all reconstructed from the entry dict.
    """

    def __init__(self, entry: Mapping[str, Any], *, cached: bool = False):
        self.entry: Dict[str, Any] = dict(entry)
        #: True when this shard was served from the result cache
        self.cached = cached

    # -- identity ----------------------------------------------------------
    @property
    def scheme(self) -> str:
        return str(self.entry.get("scheme", ""))

    @property
    def workload(self) -> str:
        return str(self.entry.get("workload", ""))

    @property
    def system(self) -> str:
        return str(self.entry.get("system", ""))

    @property
    def nbuffers(self) -> int:
        return int(self.entry.get("nbuffers", 0))

    @property
    def dim(self) -> int:
        return int(self.entry.get("dim", 0))

    @property
    def message_bytes(self) -> int:
        return int(self.entry.get("message_bytes", 0))

    # -- measurements ------------------------------------------------------
    @property
    def latencies(self) -> List[float]:
        return [float(v) for v in self.entry.get("latencies", [])]

    @property
    def mean_latency(self) -> float:
        return float(self.entry.get("mean_latency", float("nan")))

    @property
    def min_latency(self) -> float:
        return float(self.entry.get("min_latency", float("nan")))

    @property
    def breakdown(self) -> Dict[Category, float]:
        raw = self.entry.get("breakdown", {})
        return {Category(name): float(value) for name, value in raw.items()}

    @property
    def scheduler_stats(self) -> Optional[SimpleNamespace]:
        stats = self.entry.get("scheduler")
        return SimpleNamespace(**stats) if stats is not None else None

    @property
    def data(self) -> Optional[Dict[str, Any]]:
        """Payload of a ``kind="table"`` shard (``None`` for exchanges)."""
        payload = self.entry.get("data")
        return dict(payload) if payload is not None else None

    def speedup_over(self, other: "SweepResult") -> float:
        """How much faster this result is than ``other`` (>1 = faster)."""
        return other.mean_latency / self.mean_latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepResult({self.entry.get('key')!r}, cached={self.cached})"


@dataclass
class SweepStats:
    """Shard accounting of one sweep (or one multi-phase figure run)."""

    shards: int = 0
    #: shards served from the result cache
    hits: int = 0
    #: shards actually executed
    ran: int = 0
    failures: int = 0
    jobs: int = 1
    #: host wall-clock seconds spent inside :func:`run_sweep`
    wall_seconds: float = 0.0

    def add(self, other: "SweepStats") -> None:
        """Fold another phase's accounting into this one."""
        self.shards += other.shards
        self.hits += other.hits
        self.ran += other.ran
        self.failures += other.failures
        self.jobs = max(self.jobs, other.jobs)
        self.wall_seconds += other.wall_seconds


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` call."""

    #: serialized entries, in spec order (the artifact merge order)
    entries: List[Dict[str, Any]] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)
    #: per-entry cache provenance, parallel to ``entries``
    cached_flags: List[bool] = field(default_factory=list)

    @property
    def views(self) -> Dict[str, SweepResult]:
        """Entry key → :class:`SweepResult` view."""
        return {
            str(entry["key"]): SweepResult(entry, cached=cached)
            for entry, cached in zip(self.entries, self.cached_flags)
        }


def _run_spec_payload(spec_dict: Mapping[str, Any]) -> Tuple[str, Dict[str, Any] | str]:
    """Worker-side shard execution (module-level: spawn-picklable).

    Returns ``("ok", entry)`` or ``("error", traceback_text)`` — worker
    exceptions travel back as text so the parent can surface the shard
    key alongside the remote stack.
    """
    try:
        spec = ExperimentSpec.from_dict(spec_dict)
        return ("ok", spec.run_entry())
    except Exception:
        return ("error", traceback.format_exc())


def _sweep_metric(registry: Optional[MetricsRegistry], name: str, labelnames=()):
    if registry is None:
        return None
    from ..obs.observer import METRIC_CATALOG

    kind, help_, names, _buckets = METRIC_CATALOG.get(
        name, ("counter", "", tuple(labelnames), None)
    )
    if kind == "gauge":
        return registry.gauge(name, help_, names)
    return registry.counter(name, help_, names)


def run_sweep(
    specs: Sequence[ExperimentSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    salt: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> SweepRun:
    """Execute a list of shards, in parallel, through the result cache.

    Shards found in ``cache`` (same spec, same ``salt``) are served
    without running; the rest execute on a ``jobs``-wide spawn pool
    (``jobs <= 1`` runs them in-process).  Entries come back in spec
    order regardless of completion order, so a parallel sweep merges
    into the same artifact as a serial one.  Any shard failure raises
    :class:`SweepError` carrying every failed key and its worker
    traceback.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    keys = [spec.key for spec in specs]
    if len(keys) != len(set(keys)):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate shard keys in sweep: {dupes}")

    started = time.monotonic()
    effective_salt = salt if salt is not None else code_salt()
    entries: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    cached_flags = [False] * len(specs)
    misses: List[int] = []
    digests: List[Optional[str]] = [None] * len(specs)

    for i, spec in enumerate(specs):
        if cache is not None:
            digests[i] = spec.cache_key(effective_salt)
            hit = cache.get(spec, digests[i])
            if hit is not None:
                entries[i] = hit
                cached_flags[i] = True
                continue
        misses.append(i)

    stats = SweepStats(
        shards=len(specs),
        hits=len(specs) - len(misses),
        jobs=max(1, min(jobs, len(misses)) if misses else 1),
    )
    failures: List[Tuple[str, str]] = []

    if misses:
        if jobs > 1 and len(misses) > 1:
            ctx = multiprocessing.get_context("spawn")
            payloads = [specs[i].to_dict() for i in misses]
            with ctx.Pool(processes=stats.jobs) as pool:
                outcomes = pool.map(_run_spec_payload, payloads, chunksize=1)
        else:
            outcomes = [_run_spec_payload(specs[i].to_dict()) for i in misses]
        for i, (status, payload) in zip(misses, outcomes):
            if status == "ok":
                assert isinstance(payload, dict)
                entries[i] = payload
                stats.ran += 1
                if cache is not None and digests[i] is not None:
                    cache.put(specs[i], digests[i], payload)
            else:
                failures.append((specs[i].key, str(payload)))
                stats.failures += 1

    stats.wall_seconds = time.monotonic() - started

    shards_total = _sweep_metric(registry, "sweep_shards_total", ("outcome",))
    if shards_total is not None:
        shards_total.labels(outcome="hit").inc(stats.hits)
        shards_total.labels(outcome="run").inc(stats.ran)
    failures_total = _sweep_metric(registry, "sweep_failures_total")
    if failures_total is not None:
        failures_total.labels().inc(stats.failures)
    jobs_gauge = _sweep_metric(registry, "sweep_jobs")
    if jobs_gauge is not None:
        jobs_gauge.labels().set(stats.jobs)
    wall_total = _sweep_metric(registry, "sweep_wall_seconds_total")
    if wall_total is not None:
        wall_total.labels().inc(stats.wall_seconds)

    if failures:
        detail = "\n\n".join(
            f"shard {key!r}:\n{tb.rstrip()}" for key, tb in failures
        )
        raise SweepError(
            f"{len(failures)} of {len(specs)} shards failed "
            f"({', '.join(k for k, _ in failures)}):\n{detail}",
            failures,
        )

    final_entries = [e for e in entries if e is not None]
    assert len(final_entries) == len(specs)
    return SweepRun(entries=final_entries, stats=stats, cached_flags=cached_flags)
