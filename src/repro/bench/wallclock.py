"""Wall-clock microbenchmarks of the simulation engine.

Every other benchmark in this repo measures *virtual* time; this module
measures the host — how fast the DES kernel drains its calendar, what a
full figure sweep costs in real seconds, and how many bytes the hot
path allocates.  The numbers feed the committed
``BENCH_wallclock.json`` artifact that the CI wall-clock smoke job
gates on (generous tolerance: runners are noisy, engines regressing 2x
are not).

Suite layout (the ``data`` section of the artifact):

* ``engine`` — pure-kernel microbenchmarks (events/sec): a
  ``yield sim.timeout(dt)`` chain (the dominant pattern of every
  simulated transfer), a two-process :class:`~repro.sim.resources.Store`
  ping-pong (the message-queue pattern), and an ``AllOf`` fan-in (the
  ``waitall`` pattern).
* ``figures`` — end-to-end wall seconds for selected figure sweeps run
  serially and uncached through :func:`repro.bench.figures.run_figure`.
* ``allocations`` — ``tracemalloc``-measured bytes allocated per event
  on the timeout-chain hot path.

Use ``repro wallclock`` to (re)generate the artifact and
``repro wallclock --check`` to gate against a committed baseline;
``repro profile`` wraps ``cProfile`` around the same workloads.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Dict, List, Optional, Sequence

from ..obs.artifact import experiment_artifact
from ..sim.engine import Simulator, fastpath_enabled
from ..sim.resources import Store

__all__ = [
    "EXPERIMENT",
    "DEFAULT_FIGURES",
    "bench_timeout_chain",
    "bench_store_pingpong",
    "bench_allof_fanin",
    "bench_engine",
    "bench_figures",
    "bench_allocations",
    "wallclock_artifact",
    "compare_wallclock",
]

#: artifact experiment name -> ``BENCH_wallclock.json``
EXPERIMENT = "wallclock"

#: figures timed by default: one cheap smoke figure plus the two
#: large-grid sweeps the tentpole targeted
DEFAULT_FIGURES: Sequence[str] = ("fig09", "fig12", "fig13")


def _timed(events: int, wall: float) -> Dict[str, float]:
    return {
        "events": float(events),
        "wall_seconds": wall,
        "events_per_second": events / wall if wall > 0 else 0.0,
    }


def bench_timeout_chain(n: int = 200_000) -> Dict[str, float]:
    """The dominant pattern: one process yielding ``n`` timeouts."""
    sim = Simulator()

    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1e-6)

    sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return _timed(sim.events_processed, time.perf_counter() - start)


def bench_store_pingpong(n: int = 100_000) -> Dict[str, float]:
    """Two processes exchanging ``n`` messages through two stores."""
    sim = Simulator()
    a, b = Store(sim), Store(sim)

    def ping():
        for _ in range(n):
            a.put(1)
            yield b.get()

    def pong():
        for _ in range(n):
            yield a.get()
            b.put(1)

    sim.process(ping())
    sim.process(pong())
    start = time.perf_counter()
    sim.run()
    return _timed(sim.events_processed, time.perf_counter() - start)


def bench_allof_fanin(rounds: int = 2_000, width: int = 50) -> Dict[str, float]:
    """``waitall`` pattern: AllOf over ``width`` timeouts, ``rounds`` times."""
    sim = Simulator()

    def proc():
        for _ in range(rounds):
            yield sim.all_of([sim.timeout(1e-6) for _ in range(width)])

    sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return _timed(sim.events_processed, time.perf_counter() - start)


def bench_engine(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Run the engine microbenchmark suite (``scale`` shrinks CI runs)."""
    return {
        "timeout_chain": bench_timeout_chain(max(1_000, int(200_000 * scale))),
        "store_pingpong": bench_store_pingpong(max(1_000, int(100_000 * scale))),
        "allof_fanin": bench_allof_fanin(max(100, int(2_000 * scale))),
    }


def bench_figures(figures: Sequence[str] = DEFAULT_FIGURES) -> Dict[str, Dict[str, float]]:
    """Serial, uncached wall time of each figure's full sweep."""
    from .figures import run_figure  # deferred: imports the whole model stack

    out: Dict[str, Dict[str, float]] = {}
    for figure in figures:
        start = time.perf_counter()
        run = run_figure(figure, jobs=1, cache=None)
        wall = time.perf_counter() - start
        out[figure] = {
            "wall_seconds": wall,
            "shards": float(run.stats.shards),
        }
    return out


def bench_allocations(n: int = 50_000) -> Dict[str, float]:
    """Bytes allocated per event on the timeout-chain hot path.

    ``tracemalloc`` slows execution an order of magnitude, so this is a
    memory measurement only — throughput numbers come from
    :func:`bench_timeout_chain`.
    """
    sim = Simulator()

    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1e-6)

    sim.process(proc())
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    sim.run()
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    events = sim.events_processed or 1
    return {
        "events": float(events),
        "net_bytes": float(after - before),
        "peak_bytes": float(peak),
        "peak_bytes_per_event": peak / events,
    }


def wallclock_artifact(
    *,
    scale: float = 1.0,
    figures: Sequence[str] = DEFAULT_FIGURES,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned ``BENCH_wallclock.json`` document."""
    data: Dict[str, Any] = {
        "engine": bench_engine(scale=scale),
        "figures": bench_figures(figures) if figures else {},
        "allocations": bench_allocations(max(1_000, int(50_000 * scale))),
    }
    doc_meta: Dict[str, Any] = {"fastpath": fastpath_enabled(), "scale": scale}
    if meta:
        doc_meta.update(meta)
    return experiment_artifact(EXPERIMENT, (), data=data, meta=doc_meta)


def compare_wallclock(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    tolerance: float = 0.30,
) -> List[str]:
    """Regressions of ``candidate`` vs ``baseline``; empty list = pass.

    Engine benchmarks gate on events/sec (lower is worse), figure
    sweeps on wall seconds (higher is worse).  Sections present in only
    one artifact are skipped — the smoke job may time fewer figures
    than the committed baseline records.
    """
    problems: List[str] = []
    base = baseline.get("data", {})
    cand = candidate.get("data", {})
    for name, b in base.get("engine", {}).items():
        c = cand.get("engine", {}).get(name)
        if c is None:
            continue
        floor = b["events_per_second"] * (1.0 - tolerance)
        if c["events_per_second"] < floor:
            problems.append(
                f"engine.{name}: {c['events_per_second']:,.0f} events/s "
                f"< floor {floor:,.0f} "
                f"(baseline {b['events_per_second']:,.0f}, tol {tolerance:.0%})"
            )
    for name, b in base.get("figures", {}).items():
        c = cand.get("figures", {}).get(name)
        if c is None:
            continue
        ceiling = b["wall_seconds"] * (1.0 + tolerance)
        if c["wall_seconds"] > ceiling:
            problems.append(
                f"figures.{name}: {c['wall_seconds']:.2f}s wall "
                f"> ceiling {ceiling:.2f}s "
                f"(baseline {b['wall_seconds']:.2f}s, tol {tolerance:.0%})"
            )
    return problems
