"""NAS_MG workload: plain-vector *dense* layout (multigrid faces).

The NAS MG benchmark solves a 3-D Poisson problem with a multigrid
V-cycle; its ``comm3`` routine exchanges the six faces of each rank's
``nx × ny × nz`` double-precision sub-grid.  ddtbench [32] expresses
the non-contiguous faces as ``MPI_Type_vector``:

* the **y-face** (exchanged along the y axis): ``nz`` blocks of ``nx``
  doubles, strided by a full xy-plane — the layout generated here;
* the x-face would be the fully-strided worst case and the z-face is
  contiguous; the paper's NAS series uses the vector face.

For dimension size ``n`` (cubic grid) this yields ``n`` blocks of
``8·n`` bytes: few, large blocks — the *dense/large* regime where the
proposed design's win over CPU-GPU-Hybrid grows with size
(Fig. 12d: 1.4–5.8×, up to 80× over GPU-Async)."""

from __future__ import annotations

from ..datatypes.constructors import Vector
from ..datatypes.primitives import DOUBLE
from .base import WorkloadSpec, register_workload

__all__ = ["nas_mg_face"]


@register_workload("NAS_MG")
def nas_mg_face(dim: int) -> WorkloadSpec:
    """The y-face of an ``n^3`` double grid: ``n`` runs of ``n`` doubles."""
    if dim < 2:
        raise ValueError(f"NAS_MG grid dimension must be >= 2, got {dim}")
    datatype = Vector(dim, dim, dim * dim, DOUBLE).commit()
    return WorkloadSpec(
        name="NAS_MG",
        layout_class="dense",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"y-face of {dim}^3 DOUBLE grid: {dim} runs of {8 * dim} B (vector)",
    )
