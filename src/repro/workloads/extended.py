"""Extended ddtbench workloads (the paper's future work, §VII).

The paper evaluates four representative layouts and plans to "evaluate
the proposed designs with more application workloads".  This module
adds the remaining major ddtbench [32] micro-application patterns:

* **WRF** (weather forecasting): the x-z boundary plane of a 3-D
  struct-of-arrays domain — ddtbench models it with nested
  ``MPI_Type_create_subarray`` over several float fields.  Dense-ish,
  medium blocks.
* **NAS_LU_x** (LU solver, x-direction face): ``MPI_Type_vector`` with
  *tiny* block lengths (one 5-variable point per run) — sparse-leaning
  despite coming from a dense solver.
* **NAS_LU_y** (y-direction face): contiguous rows of 5-variable
  points — fully dense, few large blocks.
* **FFT2D**: the classic transpose exchange — a vector of single
  complex columns, the most strided dense pattern there is.
* **LAMMPS_full** (molecular dynamics): an indexed exchange of
  per-atom property tuples at scattered atom indices — sparse, like
  specfem but with larger (56-byte) blocks.

All register into :data:`repro.workloads.WORKLOADS`, so the benchmark
harness and the extended-workloads benchmark sweep them exactly like
the paper's four.
"""

from __future__ import annotations

import numpy as np

from ..datatypes.constructors import Contiguous, Hvector, Indexed, Struct, Subarray, Vector
from ..datatypes.primitives import COMPLEX, DOUBLE, FLOAT
from .base import WorkloadSpec, register_workload
from .specfem3d import boundary_displacements

__all__ = ["wrf_xz_plane", "nas_lu_x", "nas_lu_y", "fft2d_transpose", "lammps_full"]


@register_workload("WRF")
def wrf_xz_plane(dim: int) -> WorkloadSpec:
    """WRF x-z boundary plane: subarrays over four float fields.

    The local domain is ``(dim, dim, dim)`` floats per field (z, y, x,
    C order); the exchanged plane is the ``y = dim-1`` slab, two cells
    deep.  Four fields (u, v, w, t) live back to back, modelled as a
    struct of four shifted subarrays — ddtbench's
    ``wrf_sa``/``wrf_vec`` family.
    """
    if dim < 4:
        raise ValueError(f"WRF domain dimension must be >= 4, got {dim}")
    depth = 2
    field = Subarray(
        (dim, dim, dim), (dim, depth, dim), (0, dim - depth, 0), FLOAT
    )
    field_bytes = dim * dim * dim * 4
    datatype = Struct(
        [1, 1, 1, 1],
        [0, field_bytes, 2 * field_bytes, 3 * field_bytes],
        [field, field, field, field],
    ).commit()
    return WorkloadSpec(
        name="WRF",
        layout_class="dense",
        datatype=datatype,
        count=1,
        dim=dim,
        description=(
            f"x-z plane ({depth} deep) of four {dim}^3 FLOAT fields "
            "(struct of subarrays)"
        ),
    )


@register_workload("NAS_LU_x")
def nas_lu_x(dim: int) -> WorkloadSpec:
    """NAS LU x-face: one 5-variable point per strided run.

    The LU solver carries 5 solution variables per grid point; the
    x-direction face exchanges one point per row — ``dim^2`` runs of
    just 20 bytes.  A dense-application layout with sparse-like block
    structure (the reason LU's datatype path is notoriously slow).
    """
    if dim < 2:
        raise ValueError(f"NAS_LU grid dimension must be >= 2, got {dim}")
    point = Contiguous(5, FLOAT)
    point_bytes = 5 * 4
    # One z-plane's face column: one point per y value.
    column = Vector(dim, 1, dim, point)
    # One column per z-plane, strided by a full plane of points.
    face = Hvector(dim, 1, dim * dim * point_bytes, column)
    # dim^2 runs, 20 B each.
    datatype = face.commit()
    return WorkloadSpec(
        name="NAS_LU_x",
        layout_class="sparse",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"{dim * dim} single 5-FLOAT points (nested vector)",
    )


@register_workload("NAS_LU_y")
def nas_lu_y(dim: int) -> WorkloadSpec:
    """NAS LU y-face: contiguous rows of 5-variable points."""
    if dim < 2:
        raise ValueError(f"NAS_LU grid dimension must be >= 2, got {dim}")
    point = Contiguous(5, FLOAT)
    datatype = Vector(dim, dim, dim * dim, point).commit()
    return WorkloadSpec(
        name="NAS_LU_y",
        layout_class="dense",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"{dim} rows of {dim} 5-FLOAT points (vector)",
    )


@register_workload("FFT2D")
def fft2d_transpose(dim: int) -> WorkloadSpec:
    """FFT2D transpose: a block of single-complex columns.

    Each rank sends one column block of its ``dim x dim`` complex
    matrix per peer — ``dim`` runs of a handful of complex values
    strided by a full row.  The canonical worst-case vector.
    """
    if dim < 2:
        raise ValueError(f"FFT matrix dimension must be >= 2, got {dim}")
    cols = max(1, dim // 16)  # column-block width for a 16-rank job
    datatype = Vector(dim, cols, dim, COMPLEX).commit()
    return WorkloadSpec(
        name="FFT2D",
        layout_class="dense",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"{dim} runs of {cols} COMPLEX (matrix-transpose vector)",
    )


@register_workload("LAMMPS_full")
def lammps_full(dim: int, seed: int = 4321) -> WorkloadSpec:
    """LAMMPS ``full`` pair style: scattered per-atom property tuples.

    Ghost-atom exchange gathers, per boundary atom, a 7-double tuple
    (position, velocity, charge) from the scattered atom arrays —
    ``MPI_Type_indexed`` with 56-byte blocks at ``dim`` random atom
    indices.
    """
    if dim < 1:
        raise ValueError(f"need at least one boundary atom, got {dim}")
    disp = boundary_displacements(dim, field_elems=4 * dim, seed=seed)
    datatype = Indexed(
        np.full(dim, 7, dtype=np.int64), disp * 7, DOUBLE
    ).commit()
    return WorkloadSpec(
        name="LAMMPS_full",
        layout_class="sparse",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"{dim} scattered 7-DOUBLE atom tuples (MPI indexed)",
    )
