"""Workload generators: the application kernels of §V-A.

ddtbench-derived datatype layouts (specfem3D_oc/_cm, MILC, NAS_MG) and
Comb-style multi-dimensional halo-exchange schedules.
"""

from .base import WORKLOADS, WorkloadSpec, register_workload
from .extended import (
    fft2d_transpose,
    lammps_full,
    nas_lu_x,
    nas_lu_y,
    wrf_xz_plane,
)
from .halo import HaloNeighbor, HaloSchedule, halo_2d, halo_3d
from .milc import milc_su3_zdown
from .nas_mg import nas_mg_face
from .specfem3d import boundary_displacements, specfem3d_cm, specfem3d_oc

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "register_workload",
    "specfem3d_oc",
    "specfem3d_cm",
    "boundary_displacements",
    "milc_su3_zdown",
    "nas_mg_face",
    "HaloSchedule",
    "HaloNeighbor",
    "halo_2d",
    "halo_3d",
    "wrf_xz_plane",
    "nas_lu_x",
    "nas_lu_y",
    "fft2d_transpose",
    "lammps_full",
]
