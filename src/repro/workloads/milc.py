"""MILC workload: nested-vector *dense* layout (su3_zdown face).

MILC simulates lattice QCD on a 4-D space-time lattice; each site
carries an su3 vector (3 complex single-precision values = 24 bytes).
Sending the z-down face of a local ``L^4`` lattice means one contiguous
run of su3 vectors per (z excluded) lattice line — which ddtbench [32]
expresses as a **nested vector**: an outer ``MPI_Type_vector`` over an
inner vector over a contiguous su3 element.

For dimension size ``L`` the face holds ``L^3`` sites in ``L^2``
contiguous runs of ``L`` sites (``24·L`` bytes each): hundreds of
blocks of hundreds of bytes — the paper's *dense* class, where block
sizes are large enough that packing approaches peak bandwidth and the
CPU-driven hybrid path can compete.
"""

from __future__ import annotations

from ..datatypes.constructors import Contiguous, Hvector, Vector
from ..datatypes.primitives import FLOAT
from .base import WorkloadSpec, register_workload

__all__ = ["milc_su3_zdown", "SU3_VECTOR_FLOATS"]

#: floats per su3 vector (3 complex values)
SU3_VECTOR_FLOATS = 6


@register_workload("MILC")
def milc_su3_zdown(dim: int) -> WorkloadSpec:
    """The su3_zdown face exchange of a ``dim^4`` local lattice.

    Layout: site = 24 B su3 vector; a face line is ``dim`` consecutive
    sites; lines repeat every ``dim^2`` sites (the z stride); the outer
    vector spans the remaining two dimensions (``dim^2`` lines).
    """
    if dim < 2:
        raise ValueError(f"MILC lattice dimension must be >= 2, got {dim}")
    su3 = Contiguous(SU3_VECTOR_FLOATS, FLOAT)
    su3_bytes = SU3_VECTOR_FLOATS * 4
    # Inner vector: one t-slab's worth of face lines — `dim` runs of
    # `dim` sites, one per y value, strided by a full z-column of runs.
    slab = Vector(dim, dim, dim * dim, su3)
    # Outer: `dim` such slabs, one per t value, strided by the full
    # `dim^3`-site t-slab (byte stride, hence hvector).
    face = Hvector(dim, 1, dim * dim * dim * su3_bytes, slab)
    datatype = face.commit()
    return WorkloadSpec(
        name="MILC",
        layout_class="dense",
        datatype=datatype,
        count=1,
        dim=dim,
        description=(
            f"su3_zdown face: {dim * dim} runs of {dim} su3 vectors "
            f"({SU3_VECTOR_FLOATS * 4 * dim} B each), nested vector"
        ),
    )
