"""Multi-dimensional halo-exchange schedules (Fig. 3 / LLNL Comb [33]).

Scientific codes decompose an ``n``-D domain across ranks and exchange
ghost regions with their neighbors every step.  This module builds the
datatype schedule for one rank's exchange:

* :func:`halo_2d` — the paper's Fig. 3: four neighbors, the east/west
  boundary *columns* non-contiguous (vector), north/south rows
  contiguous;
* :func:`halo_3d` — Comb-style 3-D decomposition: 6 face neighbors, or
  the full 26 (faces + 12 edges + 8 corners) when ``corners=True`` —
  "a typical 3D domain decomposition would involve 27 boundary data to
  be exchanged" (§V-C counts the rank itself).

Each :class:`HaloNeighbor` carries matched *send* (interior boundary)
and *recv* (ghost shell) :class:`~repro.datatypes.constructors.Subarray`
types over the same local array geometry, so a symmetric exchange
between two ranks running the same schedule is byte-exact — the
integration tests rely on this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..datatypes.base import Datatype
from ..datatypes.constructors import Subarray
from ..datatypes.primitives import DOUBLE, Primitive

__all__ = ["HaloNeighbor", "HaloSchedule", "halo_2d", "halo_3d"]


@dataclass(frozen=True)
class HaloNeighbor:
    """One neighbor's exchange datatypes."""

    #: offset of the neighbor in grid coordinates, e.g. (0, +1)
    direction: Tuple[int, ...]
    #: datatype selecting the interior cells to send toward ``direction``
    send_type: Datatype
    #: datatype selecting the ghost cells receiving from ``direction``
    recv_type: Datatype

    @property
    def nbytes(self) -> int:
        """Payload bytes exchanged with this neighbor."""
        return self.send_type.size


@dataclass(frozen=True)
class HaloSchedule:
    """A rank's complete halo exchange."""

    #: local array shape including ghost shells
    shape: Tuple[int, ...]
    ghost: int
    neighbors: Tuple[HaloNeighbor, ...]
    base: Primitive

    @property
    def array_bytes(self) -> int:
        """Bytes of the local array (allocation size)."""
        return int(np.prod(self.shape)) * self.base.extent

    @property
    def total_bytes(self) -> int:
        """Payload bytes over all neighbors (one direction)."""
        return sum(n.nbytes for n in self.neighbors)


def _box_for(
    shape: Tuple[int, ...], ghost: int, direction: Tuple[int, ...], send: bool
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Sub-box (subsizes, starts) for one direction's send/recv region.

    For the send side the box covers interior cells adjacent to the
    ghost shell in that direction; for the recv side it covers the
    ghost shell itself.
    """
    subsizes: List[int] = []
    starts: List[int] = []
    for extent_d, step in zip(shape, direction):
        interior = extent_d - 2 * ghost
        if step == 0:
            subsizes.append(interior)
            starts.append(ghost)
        elif step < 0:
            subsizes.append(ghost)
            starts.append(ghost if send else 0)
        else:
            subsizes.append(ghost)
            starts.append(extent_d - 2 * ghost if send else extent_d - ghost)
    return tuple(subsizes), tuple(starts)


def _build_schedule(
    interior: Tuple[int, ...], ghost: int, corners: bool, base: Primitive
) -> HaloSchedule:
    ndim = len(interior)
    if ghost < 1:
        raise ValueError(f"ghost width must be >= 1, got {ghost}")
    if any(n < ghost for n in interior):
        raise ValueError(f"interior {interior} smaller than ghost width {ghost}")
    shape = tuple(n + 2 * ghost for n in interior)
    neighbors: List[HaloNeighbor] = []
    for direction in itertools.product((-1, 0, 1), repeat=ndim):
        if all(d == 0 for d in direction):
            continue
        if not corners and sum(abs(d) for d in direction) != 1:
            continue
        send_sub, send_start = _box_for(shape, ghost, direction, send=True)
        recv_sub, recv_start = _box_for(shape, ghost, direction, send=False)
        neighbors.append(
            HaloNeighbor(
                direction=direction,
                send_type=Subarray(shape, send_sub, send_start, base).commit(),
                recv_type=Subarray(shape, recv_sub, recv_start, base).commit(),
            )
        )
    return HaloSchedule(shape=shape, ghost=ghost, neighbors=tuple(neighbors), base=base)


def halo_2d(
    interior: Tuple[int, int], ghost: int = 1, base: Primitive = DOUBLE,
    corners: bool = False,
) -> HaloSchedule:
    """The Fig. 3 exchange: a 2-D grid's 4 (or 8) neighbors."""
    if len(interior) != 2:
        raise ValueError("halo_2d needs a 2-tuple interior shape")
    return _build_schedule(tuple(interior), ghost, corners, base)


def halo_3d(
    interior: Tuple[int, int, int], ghost: int = 1, base: Primitive = DOUBLE,
    corners: bool = True,
) -> HaloSchedule:
    """Comb-style 3-D exchange: 6 faces, plus edges/corners by default
    (26 neighbors — the §V-C "27 boundary data" counting the center)."""
    if len(interior) != 3:
        raise ValueError("halo_3d needs a 3-tuple interior shape")
    return _build_schedule(tuple(interior), ghost, corners, base)
