"""Workload specifications: the application kernels of §V-A.

The paper evaluates four representative datatype layouts, re-implemented
from the ddtbench micro-application suite [32] and the LLNL Comb 3-D
halo kernel [33]:

=============  ==================  =======  =============================
Workload       MPI constructor     Class    Application domain
=============  ==================  =======  =============================
specfem3D_oc   indexed             sparse   Geophysics (seismic wave)
specfem3D_cm   struct-on-indexed   sparse   Geophysics (coupled fields)
MILC           nested vector       dense    Lattice QCD (su3_zdown face)
NAS_MG         vector              dense    Fluid dynamics (MG faces)
=============  ==================  =======  =============================

*Sparse* means "more than thousands of small blocks", *dense* "less than
thousand[s] of blocks" (§V-A).  Each generator takes a *dimension size*
(the x-axis of Figs. 9–13) and returns a :class:`WorkloadSpec` carrying
the committed datatype plus the buffer geometry a benchmark needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict


from ..datatypes.base import Datatype

__all__ = ["WorkloadSpec", "WORKLOADS", "register_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload instance."""

    name: str
    #: "sparse" or "dense" (the paper's taxonomy)
    layout_class: str
    #: committed datatype of one message
    datatype: Datatype
    #: datatype instances per message (MPI count argument)
    count: int
    #: the dimension-size parameter this instance was built from
    dim: int
    description: str = ""

    @property
    def message_bytes(self) -> int:
        """Payload bytes of one message."""
        return self.datatype.size * self.count

    @property
    def num_blocks(self) -> int:
        """Contiguous blocks in one message's layout."""
        return self.datatype.flatten().replicate(self.count).num_blocks

    def buffer_bytes(self) -> int:
        """Device bytes needed to hold one message's source/target."""
        layout = self.datatype.flatten().replicate(self.count)
        if layout.num_blocks == 0:
            return 0
        return int(layout.offsets[-1] + layout.lengths[-1])

    def summary(self) -> str:
        """One-line description for benchmark output."""
        layout = self.datatype.flatten().replicate(self.count)
        return (
            f"{self.name}(dim={self.dim}): {self.layout_class}, "
            f"{layout.num_blocks} blocks, {layout.size} B, "
            f"mean block {layout.mean_block:.0f} B"
        )


WorkloadFactory = Callable[[int], WorkloadSpec]

#: name → factory(dim) registry used by the benchmark harness.
WORKLOADS: Dict[str, WorkloadFactory] = {}


def register_workload(name: str) -> Callable[[WorkloadFactory], WorkloadFactory]:
    """Decorator adding a factory to :data:`WORKLOADS`."""

    def wrap(factory: WorkloadFactory) -> WorkloadFactory:
        WORKLOADS[name] = factory
        return factory

    return wrap
