"""SPECFEM3D workloads: the paper's *sparse* layouts.

SPECFEM3D_GLOBE simulates global seismic wave propagation with spectral
elements; at a chunk boundary it exchanges the values of the boundary
grid points, which sit scattered through the field arrays.  ddtbench
[32] distills two datatype patterns from it:

* **specfem3D_oc** (outer core): a single scalar field — one
  ``MPI_Type_indexed`` over ``float`` with unit block lengths at
  boundary-point offsets: *thousands of 4-byte blocks*.
* **specfem3D_cm** (crust-mantle): a 3-component (x, y, z) displacement
  field — the paper calls it *struct-on-indexed*: a struct whose
  members are indexed types, one per component array.  The blocks are
  12 bytes (3 floats) but there are thousands of them.

Both are the adversarial case for per-block processing: enormous block
counts with tiny blocks, where GPU packing kernels are fast but launch
overhead and per-block driver work dominate.

Boundary-point offsets are generated with a seeded RNG (sorted unique
positions within a field array ~4× larger than the boundary), so every
run of a given ``dim`` uses the identical layout.
"""

from __future__ import annotations

import numpy as np

from ..datatypes.constructors import Indexed, Struct
from ..datatypes.primitives import FLOAT
from .base import WorkloadSpec, register_workload

__all__ = ["specfem3d_oc", "specfem3d_cm", "boundary_displacements"]


def boundary_displacements(
    num_points: int, field_elems: int, seed: int = 1234
) -> np.ndarray:
    """Sorted unique boundary-point element offsets within a field array.

    ``num_points`` scattered positions drawn from ``field_elems`` slots;
    consecutive positions are never adjacent (each point is its own
    block), matching the scattered boundary sets of the real code.
    """
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    if field_elems < 2 * num_points:
        raise ValueError(
            f"field of {field_elems} elements cannot hold {num_points} "
            "non-adjacent boundary points"
        )
    rng = np.random.default_rng(seed)
    # Draw from the even positions only: any two chosen points are at
    # least 2 elements apart, so no two blocks ever touch/coalesce.
    candidates = field_elems // 2
    positions = np.sort(rng.choice(candidates, size=num_points, replace=False)) * 2
    return positions.astype(np.int64)


@register_workload("specfem3D_oc")
def specfem3d_oc(dim: int, seed: int = 1234) -> WorkloadSpec:
    """Outer-core workload: indexed float, ``dim`` single-element blocks."""
    disp = boundary_displacements(dim, field_elems=4 * dim, seed=seed)
    datatype = Indexed(np.ones(dim, dtype=np.int64), disp, FLOAT).commit()
    return WorkloadSpec(
        name="specfem3D_oc",
        layout_class="sparse",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"{dim} scattered FLOAT points (MPI indexed)",
    )


@register_workload("specfem3D_cm")
def specfem3d_cm(dim: int, seed: int = 1234) -> WorkloadSpec:
    """Crust-mantle workload: struct of three indexed component fields.

    Each of the x/y/z displacement components lives in its own field
    array (modelled as consecutive regions of one allocation); the
    boundary gather pulls ``dim`` 3-float points from each.
    """
    disp = boundary_displacements(dim, field_elems=4 * dim, seed=seed)
    component = Indexed(np.full(dim, 3, dtype=np.int64), disp * 3, FLOAT).commit()
    field_span = component.flatten().span
    # Components are laid out one after another (xx..x yy..y zz..z),
    # 64-byte aligned, as separate arrays of one struct-of-arrays field.
    stride = (field_span + 63) // 64 * 64
    datatype = Struct(
        [1, 1, 1], [0, stride, 2 * stride], [component, component, component]
    ).commit()
    return WorkloadSpec(
        name="specfem3D_cm",
        layout_class="sparse",
        datatype=datatype,
        count=1,
        dim=dim,
        description=f"3x{dim} scattered 3-FLOAT points (struct-on-indexed)",
    )
